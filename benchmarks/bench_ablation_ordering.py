"""Ablation: the OAPT pairwise-scan heuristic vs the exhaustive optimum.

Section V-C replaces the O(2^k * k!) exact recursion with a linear
pairwise scan per subtree.  This bench quantifies what the heuristic gives
up: on small random universes (where the exact optimum is computable) it
reports the cost ratio OAPT/optimal and Quick-Ordering/optimal, and times
both choosers.  DESIGN.md calls this out as the paper's central design
choice; the expected result is OAPT within a few percent of optimal at a
tiny fraction of the cost.
"""

from __future__ import annotations

import random
import statistics

from conftest import emit

from repro.analysis.reporting import render_table
from repro.bdd import BDDManager, Function
from repro.core.atomic import AtomicUniverse
from repro.core.construction import build_oapt, build_optimal, build_quick_ordering
from repro.core.ordering import optimal_subtree_cost
from repro.network.dataplane import LabeledPredicate

INSTANCES = 12
NUM_VARS = 5
NUM_PREDICATES = 6


def random_universe(seed: int) -> AtomicUniverse:
    rng = random.Random(seed)
    mgr = BDDManager(NUM_VARS)
    labeled = []
    for pid in range(NUM_PREDICATES):
        density = rng.uniform(0.2, 0.8)
        fn = Function.false(mgr)
        for point in range(1 << NUM_VARS):
            if rng.random() < density:
                fn = fn | Function.cube(
                    mgr,
                    {
                        i: bool((point >> (NUM_VARS - 1 - i)) & 1)
                        for i in range(NUM_VARS)
                    },
                )
        labeled.append(LabeledPredicate(pid, "forward", "b", f"p{pid}", fn))
    return AtomicUniverse.compute(mgr, labeled)


def test_ablation_oapt_vs_optimal(benchmark):
    oapt_ratios = []
    quick_ratios = []
    for seed in range(INSTANCES):
        universe = random_universe(seed)
        optimal_cost, _ = optimal_subtree_cost(universe)
        if optimal_cost == 0:
            continue
        oapt_cost = sum(build_oapt(universe).leaf_depths().values())
        quick_cost = sum(build_quick_ordering(universe).leaf_depths().values())
        oapt_ratios.append(oapt_cost / optimal_cost)
        quick_ratios.append(quick_cost / optimal_cost)

    emit(
        "ablation_ordering",
        render_table(
            f"Ablation: total leaf depth vs exhaustive optimum "
            f"({len(oapt_ratios)} random instances, {NUM_PREDICATES} predicates)",
            ["method", "mean ratio", "worst ratio"],
            [
                ("OAPT (pairwise scan)",
                 f"{statistics.mean(oapt_ratios):.3f}",
                 f"{max(oapt_ratios):.3f}"),
                ("Quick-Ordering",
                 f"{statistics.mean(quick_ratios):.3f}",
                 f"{max(quick_ratios):.3f}"),
                ("exhaustive optimum", "1.000", "1.000"),
            ],
        ),
    )
    # The heuristic's whole justification: near-optimal, and never worse
    # than the cruder Quick-Ordering on average.
    assert statistics.mean(oapt_ratios) < 1.25
    assert statistics.mean(oapt_ratios) <= statistics.mean(quick_ratios) + 1e-9

    universe = random_universe(0)
    benchmark(lambda: build_oapt(universe))


def test_ablation_exact_cost_blowup(benchmark):
    """The exact recursion's cost explodes with predicate count -- the
    reason the paper needs the heuristic at all."""
    import time

    universe = random_universe(99)
    started = time.perf_counter()
    build_optimal(universe)
    exact_s = time.perf_counter() - started
    started = time.perf_counter()
    build_oapt(universe)
    heuristic_s = time.perf_counter() - started
    emit(
        "ablation_cost",
        render_table(
            "Ablation: construction cost, exact vs heuristic "
            f"({NUM_PREDICATES} predicates)",
            ["method", "time"],
            [
                ("exhaustive F(Q,S)", f"{exact_s * 1e3:.1f} ms"),
                ("OAPT pairwise scan", f"{heuristic_s * 1e3:.1f} ms"),
            ],
        ),
    )
    assert heuristic_s < exact_s
    benchmark(lambda: build_oapt(universe))
