"""Compiled-engine speedup over the interpreted AP Tree (the PR's claim).

Measures stage-1 classification of the Internet2-like trace three ways on
the same OAPT tree:

* interpreted -- :meth:`APTree.classify_many` (pointer-chasing walk with
  per-node BDD evaluation);
* compiled/numpy -- :meth:`CompiledAPTree.classify_batch` on the
  vectorized gather backend (when numpy is importable);
* compiled/stdlib -- the same artifact forced onto the pure-stdlib
  big-integer bit-parallel backend;
* compiled/native -- the C extension's interleaved fused-program
  descent (when the optional extension is built; see
  ``bench_kernel.py`` for its array-path numbers).

Every engine must return identical atom ids for every header -- verified
here, not assumed -- and the speedups must clear the bars the compiled
engine ships with: >= 4x for native, >= 3x for numpy, >= 1.5x for
stdlib.  Results land in
``BENCH_compiled_speedup.json`` at the repo root for machine consumption.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from conftest import emit

from repro.analysis.reporting import format_qps, render_table
from repro.core.compiled import (
    CompiledAPTree,
    NATIVE_BACKEND,
    NUMPY_BACKEND,
    STDLIB_BACKEND,
    available_backends,
)

RESULT_JSON = Path(__file__).parent.parent / "BENCH_compiled_speedup.json"

MIN_SPEEDUP = {NATIVE_BACKEND: 4.0, NUMPY_BACKEND: 3.0, STDLIB_BACKEND: 1.5}
BEST_OF = 5


def _best_qps(run, headers) -> float:
    """Best-of-N throughput; the minimum time is the least-noisy sample."""
    run(headers)  # warmup
    best = min(_timed(run, headers) for _ in range(BEST_OF))
    return len(headers) / best


def _timed(run, headers) -> float:
    started = time.perf_counter()
    run(headers)
    return time.perf_counter() - started


def test_compiled_speedup(i2):
    ds = i2
    tree = ds.classifier.tree
    headers = list(ds.headers)

    expected = tree.classify_many(headers)
    interpreted_qps = _best_qps(tree.classify_many, headers)

    engines: dict[str, dict[str, float]] = {}
    rows = [("interpreted classify_many", format_qps(interpreted_qps), "1.0x")]
    for backend in available_backends():
        compiled = CompiledAPTree.compile(tree, backend=backend)
        started = time.perf_counter()
        CompiledAPTree.compile(tree, backend=backend)
        compile_s = time.perf_counter() - started

        # Identical outputs, checked on the full trace before timing.
        assert compiled.classify_batch(headers) == expected

        qps = _best_qps(compiled.classify_batch, headers)
        speedup = qps / interpreted_qps
        engines[backend] = {
            "qps": qps,
            "speedup": speedup,
            "compile_s": compile_s,
        }
        rows.append(
            (f"compiled ({backend})", format_qps(qps), f"{speedup:.2f}x")
        )
        assert speedup >= MIN_SPEEDUP[backend], (
            f"{backend} backend: {speedup:.2f}x < {MIN_SPEEDUP[backend]}x"
        )

    assert engines, "no compiled backend available"

    stats = ds.classifier.stats()
    payload = {
        "dataset": ds.name,
        "headers": len(headers),
        "predicates": stats.predicates,
        "atoms": stats.atoms,
        "tree_average_depth": round(stats.tree_average_depth, 2),
        "interpreted_qps": interpreted_qps,
        "engines": engines,
        "outputs_identical": True,
        "min_speedup_required": MIN_SPEEDUP,
    }
    RESULT_JSON.write_text(
        json.dumps(payload, indent=2, allow_nan=False) + "\n"
    )

    emit(
        "compiled_speedup",
        render_table(
            f"Compiled engine speedup ({ds.name}, {len(headers)} headers; "
            "identical atom ids verified)",
            ["engine", "throughput", "speedup"],
            rows,
        ),
    )
