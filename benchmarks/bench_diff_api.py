"""Differential queries: diff latency vs churn, what-if under load.

Two questions about the verification API (``repro.diff``):

* **Diff latency vs churn size** -- fork a shadow generation, apply a
  churn burst of N rule updates through the incremental engine, and
  diff it against the base generation.  Measured on both bench
  datasets; the 16-update point is cross-checked against brute-force
  reclassification of sampled headers (every sampled header must fall
  inside a changed region exactly when its queried behavior actually
  differs), and the changed-volume set must be nonzero.
* **What-if under serving load** -- what-if queries answered by a
  :class:`QueryService` while a closed loop of classify traffic runs on
  the same event loop.  Records what-if p50/p99 and the live path's
  latency with and without the concurrent what-ifs; the live p50 must
  not regress beyond a generous machine-bound factor (the heavy BDD
  work runs in the executor on a private replica -- the loop only ever
  pays the snapshot serialization).

Results land in ``BENCH_diff_api.json`` at the repo root; with
``REPRO_OBS_SIDECAR=1`` the run writes
``benchmarks/results/diff_api.obs.json``.
"""

from __future__ import annotations

import asyncio
import json
import random
import time
from pathlib import Path

from conftest import OBS_SIDECARS, emit, emit_obs

from repro.analysis.reporting import render_table
from repro.core.delta import diff_behaviors
from repro.datasets.updates import rule_update_stream
from repro.diff import diff_generations, fork_shadow
from repro.headerspace.fields import format_ipv4
from repro.obs import Recorder
from repro.serve import QueryService

RESULT_JSON = Path(__file__).parent.parent / "BENCH_diff_api.json"

CHURN_SIZES = (4, 16, 64)
QUICK_CHURN_SIZES = (4, 16)
CROSS_CHECK_CHURN = 16
CROSS_CHECK_SAMPLES = 96
WHATIF_QUERIES = 5
QUICK_WHATIF_QUERIES = 2
LOAD_ROUNDS = 300
QUICK_LOAD_ROUNDS = 80
#: Live-path slowdown bar while what-ifs run concurrently.  Generous on
#: purpose: the sweep runs in the executor and only the GIL couples it
#: to the loop, so the bound is machine noise, not a design budget.
MAX_LIVE_SLOWDOWN = 10.0
LIVE_FLOOR_S = 0.05


def _percentile(samples: list[float], q: float) -> float:
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(q * len(ordered)))]


def _churned_shadow(dataset, churn: int, recorder) -> object:
    """Fork the dataset's classifier and apply a churn burst to it."""
    shadow = fork_shadow(dataset.classifier, recorder=recorder)
    rng = random.Random(0)
    for update in rule_update_stream(
        dataset.network, churn, rng, insert_fraction=1.0
    ):
        if update.kind == "insert":
            shadow.insert_rule(update.box, update.rule)
        else:
            shadow.remove_rule(update.box, update.rule)
    return shadow


def _cross_check(before, after, report, ingress: str) -> int:
    """Brute-force agreement: region membership == behavior change."""
    rng = random.Random(3)
    headers = [rng.getrandbits(report.num_vars) for _ in range(CROSS_CHECK_SAMPLES)]
    headers.extend(entry.witness for entry in report.entries)
    for header in headers:
        changed = bool(
            diff_behaviors(
                before.query(header, ingress), after.query(header, ingress)
            )
        )
        in_regions = sum(
            1 for entry in report.entries if entry.region.evaluate(header)
        )
        assert in_regions == (1 if changed else 0), (
            f"header {header:#x}: brute-force changed={changed} but lies "
            f"in {in_regions} reported regions"
        )
    return len(headers)


def test_diff_latency_vs_churn(datasets, quick):
    recorder = Recorder()
    churn_sizes = QUICK_CHURN_SIZES if quick else CHURN_SIZES
    results = []
    rows = []
    for dataset in datasets:
        ingress = sorted(dataset.network.boxes)[0]
        for churn in churn_sizes:
            shadow = _churned_shadow(dataset, churn, recorder)
            started = time.perf_counter()
            report = diff_generations(
                dataset.classifier, shadow, ingress, recorder=recorder
            )
            elapsed = time.perf_counter() - started
            checked = 0
            if churn == CROSS_CHECK_CHURN:
                assert not report.is_empty, (
                    f"{dataset.name}: a {churn}-update churn burst must "
                    "change some packet behavior"
                )
                checked = _cross_check(
                    dataset.classifier, shadow, report, ingress
                )
            results.append(
                {
                    "dataset": dataset.name,
                    "churn": churn,
                    "ingress": ingress,
                    "diff_s": elapsed,
                    "sat_count_s": report.sat_count_s,
                    "atoms_before": report.atoms_before,
                    "atoms_after": report.atoms_after,
                    "pairs_examined": report.pairs_examined,
                    "changed_classes": len(report.entries),
                    "changed_share": report.changed_share(),
                    "cross_checked_headers": checked,
                }
            )
            rows.append(
                (
                    dataset.name,
                    churn,
                    f"{elapsed * 1000:.1f} ms",
                    report.pairs_examined,
                    len(report.entries),
                    f"{report.changed_share():.2e}",
                )
            )
    emit(
        "diff_latency",
        render_table(
            "Generation diff: latency vs churn size",
            ["dataset", "churn", "diff", "pairs", "changed", "share"],
            rows,
        ),
    )

    payload = _load_payload()
    payload["diff_vs_churn"] = results
    payload["cross_check_churn"] = CROSS_CHECK_CHURN
    RESULT_JSON.write_text(json.dumps(payload, indent=2, allow_nan=False) + "\n")

    if OBS_SIDECARS:
        emit_obs("diff_api", recorder)


def _delivered_drop_specs(dataset, ingress: str, count: int) -> list[str]:
    """Drop rules for /24s that currently deliver traffic from ingress.

    Built from the bench trace itself, so each candidate change is
    guaranteed to flip some packet class from delivered to dropped --
    the what-if reports must all come back nonzero.
    """
    layout = dataset.network.layout
    specs: list[str] = []
    seen: set[int] = set()
    for header in dataset.headers:
        prefix = layout.extract(header, "dst_ip") >> 8 << 8
        if prefix in seen:
            continue
        seen.add(prefix)
        if not dataset.classifier.query(header, ingress).delivered_hosts():
            continue
        specs.append(f"{ingress}:dst_ip={format_ipv4(prefix)}/24->drop@99")
        if len(specs) == count:
            break
    assert len(specs) == count, (
        f"trace yields only {len(specs)} delivered /24s from {ingress}"
    )
    return specs


def test_what_if_under_load(i2, stan, quick):
    recorder = Recorder()
    dataset = i2 if quick else stan
    ingress = sorted(dataset.network.boxes)[0]
    headers = list(dataset.headers)
    rounds = QUICK_LOAD_ROUNDS if quick else LOAD_ROUNDS
    whatif_count = QUICK_WHATIF_QUERIES if quick else WHATIF_QUERIES
    specs = _delivered_drop_specs(dataset, ingress, whatif_count)

    async def scenario():
        async with QueryService(
            dataset.classifier, max_delay_s=0, recorder=recorder
        ) as service:
            # Baseline: the live path alone.
            baseline = []
            for index in range(rounds):
                started = time.perf_counter()
                await service.classify(headers[index % len(headers)])
                baseline.append(time.perf_counter() - started)

            # Under load: classify traffic in a background loop while
            # what-if queries run to completion one after another.
            during: list[float] = []
            stop = asyncio.Event()

            async def classify_loop():
                index = 0
                while not stop.is_set():
                    started = time.perf_counter()
                    await service.classify(headers[index % len(headers)])
                    during.append(time.perf_counter() - started)
                    index += 1
                    await asyncio.sleep(0)

            load_task = asyncio.create_task(classify_loop())
            whatif_lat = []
            reports = []
            for spec in specs:
                started = time.perf_counter()
                report = await service.what_if(ingress, add=[spec], limit=5)
                whatif_lat.append(time.perf_counter() - started)
                reports.append(report)
            stop.set()
            await load_task
            return baseline, during, whatif_lat, reports

    baseline, during, whatif_lat, reports = asyncio.run(scenario())

    for report in reports:
        assert report["changed_volume"] > 0
        json.dumps(report, allow_nan=False)  # strict-JSON contract

    base_p50 = _percentile(baseline, 0.50)
    live_p50 = _percentile(during, 0.50)
    live_p99 = _percentile(during, 0.99)
    whatif_p50 = _percentile(whatif_lat, 0.50)
    whatif_p99 = _percentile(whatif_lat, 0.99)
    slowdown = live_p50 / base_p50 if base_p50 > 0 else 1.0

    emit(
        "diff_whatif_load",
        render_table(
            f"What-if under serving load ({dataset.name})",
            ["metric", "value"],
            [
                ("baseline classify p50", f"{base_p50 * 1e6:.0f} us"),
                ("classify p50 under what-ifs", f"{live_p50 * 1e6:.0f} us"),
                ("classify p99 under what-ifs", f"{live_p99 * 1e6:.0f} us"),
                ("what-if p50", f"{whatif_p50 * 1000:.1f} ms"),
                ("what-if p99", f"{whatif_p99 * 1000:.1f} ms"),
                ("live p50 slowdown", f"{slowdown:.2f}x"),
            ],
        ),
    )

    assert live_p50 <= max(MAX_LIVE_SLOWDOWN * base_p50, LIVE_FLOOR_S), (
        f"live classify p50 regressed {slowdown:.1f}x while what-ifs ran "
        f"(baseline {base_p50 * 1e6:.0f} us, under load "
        f"{live_p50 * 1e6:.0f} us)"
    )

    payload = _load_payload()
    payload["whatif_under_load"] = {
        "dataset": dataset.name,
        "ingress": ingress,
        "classify_rounds": rounds,
        "whatif_queries": whatif_count,
        "baseline_classify_p50_s": base_p50,
        "live_classify_p50_s": live_p50,
        "live_classify_p99_s": live_p99,
        "whatif_p50_s": whatif_p50,
        "whatif_p99_s": whatif_p99,
        "live_p50_slowdown": slowdown,
        "max_live_slowdown": MAX_LIVE_SLOWDOWN,
    }
    RESULT_JSON.write_text(json.dumps(payload, indent=2, allow_nan=False) + "\n")

    if OBS_SIDECARS:
        emit_obs("diff_api", recorder)


def _load_payload() -> dict:
    """Both legs write one JSON file; merge instead of clobbering."""
    if RESULT_JSON.exists():
        try:
            return json.loads(RESULT_JSON.read_text())
        except json.JSONDecodeError:
            pass
    return {}
