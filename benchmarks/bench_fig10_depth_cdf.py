"""Fig. 10: cumulative distribution of leaf depths per method.

Paper shape: OAPT's CDF dominates (smaller depths at all percentiles);
for Internet2, 80% of OAPT leaves have depth < 11; Stanford < 21.
"""

from __future__ import annotations

import random

import pytest
from conftest import emit

from repro.analysis.reporting import render_table
from repro.analysis.stats import percentile
from repro.core.construction import best_from_random, build_oapt, build_quick_ordering


@pytest.mark.parametrize("which", ["i2", "stan"])
def test_fig10_depth_cdf(which, i2, stan, benchmark):
    ds = i2 if which == "i2" else stan
    best_tree, _ = best_from_random(ds.universe, trials=15, rng=random.Random(10))
    trees = {
        "Best from Random": best_tree,
        "Quick-Ordering": build_quick_ordering(ds.universe),
        "OAPT": build_oapt(ds.universe),
    }
    depth_lists = {
        name: sorted(tree.leaf_depths().values()) for name, tree in trees.items()
    }
    quantiles = (20, 40, 60, 80, 95, 100)
    rows = [
        (name, *(f"{percentile(depths, q):.0f}" for q in quantiles))
        for name, depths in depth_lists.items()
    ]
    emit(
        f"fig10_{ds.name}",
        render_table(
            f"Fig. 10 ({ds.name}): leaf-depth percentiles per method",
            ["method", *(f"p{q}" for q in quantiles)],
            rows,
        ),
    )

    # OAPT dominates at the upper percentiles (where query cost lives).
    for q in (80, 95, 100):
        assert percentile(depth_lists["OAPT"], q) <= percentile(
            depth_lists["Best from Random"], q
        )

    benchmark(lambda: sorted(trees["OAPT"].leaf_depths().values()))
