"""Fig. 11: overall construction time (atomic predicates + AP Tree).

Paper values: Internet2 -- Quick-Ordering 201.4 ms, OAPT 204.4 ms;
Stanford -- 293.4 ms / 342.8 ms; one Random build is cheapest.  The shape:
Random < Quick-Ordering <= OAPT, all the same order of magnitude, because
atomic-predicate computation dominates and is common to all three.
"""

from __future__ import annotations

import random
import time

import pytest
from conftest import emit

from repro.analysis.reporting import render_table
from repro.core.atomic import AtomicUniverse
from repro.core.construction import build_oapt, build_quick_ordering, build_random


def overall_time(ds, builder) -> float:
    """Atomic predicates + tree build, the paper's 'overall' time."""
    started = time.perf_counter()
    universe = AtomicUniverse.compute(ds.dataplane.manager, ds.dataplane.predicates())
    builder(universe)
    return time.perf_counter() - started


@pytest.mark.parametrize("which", ["i2", "stan"])
def test_fig11_construction_time(which, i2, stan, benchmark):
    ds = i2 if which == "i2" else stan
    rng = random.Random(11)
    times = {
        "Random (one)": overall_time(ds, lambda u: build_random(u, rng)),
        "Quick-Ordering": overall_time(ds, build_quick_ordering),
        "OAPT": overall_time(ds, build_oapt),
    }
    emit(
        f"fig11_{ds.name}",
        render_table(
            f"Fig. 11 ({ds.name}): overall construction time",
            ["method", "time"],
            [(name, f"{seconds * 1e3:.1f} ms") for name, seconds in times.items()],
        ),
    )
    # All three are dominated by the shared atomic-predicate phase: OAPT
    # must stay within a small factor of the cheapest.
    assert times["OAPT"] < times["Random (one)"] * 5

    benchmark.pedantic(
        lambda: overall_time(ds, build_oapt), rounds=2, iterations=1
    )
