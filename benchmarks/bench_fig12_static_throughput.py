"""Fig. 12: query throughput for static networks, all methods.

Paper values (queries/second): Internet2 -- AP Classifier (OAPT) 3.4 M,
Quick-Ordering ~2.2 M, Best-from-Random ~1.7 M, Forwarding Simulation
0.2 M, AP Verifier linear scan lower, Hassel-C (HSA) 6 K.  Stanford --
1.8 M / ~1.35 M / ~1.25 M / 0.16 M / lower / 4.7 K.

Shapes to reproduce: OAPT > Quick-Ordering > Best-from-Random; AP
Classifier an order of magnitude above Forwarding Simulation and PScan;
HSA around three orders of magnitude below AP Classifier.

Absolute numbers here are pure-Python, so everything is uniformly slower
than the paper's C/Java -- the ratios are the result.

The ``engine`` axis re-runs the comparison on the compiled flat-array
engine (batched bit-parallel evaluation): tree methods go through
:class:`~repro.core.compiled.CompiledAPTree`, the scan baselines through
their :meth:`compile`/batch paths.  Forwarding Simulation and HSA have no
batch form and appear only on the interpreted axis.
"""

from __future__ import annotations

import random

import pytest
from conftest import OBS_SIDECARS, emit, emit_obs

from repro.analysis.reporting import format_qps, render_table
from repro.obs import Recorder
from repro.analysis.stats import measure_batch_throughput, measure_throughput
from repro.baselines import (
    APLinearClassifier,
    ForwardingSimulator,
    HsaQuerier,
    PScanIdentifier,
)
from repro.core.compiled import CompiledAPTree, NUMPY_BACKEND, available_backends
from repro.core.construction import best_from_random, build_quick_ordering

HSA_SAMPLE = 60  # HSA is slow enough that a subsample suffices


def _warm_qps(query, headers) -> float:
    """Measure after a warmup pass; keeps method order from biasing results."""
    measure_throughput(query, headers[: max(len(headers) // 4, 1)])
    return measure_throughput(query, headers).qps


def _warm_batch_qps(query_batch, headers) -> float:
    """Batched counterpart of :func:`_warm_qps`."""
    measure_batch_throughput(query_batch, headers[: max(len(headers) // 4, 1)])
    return measure_batch_throughput(query_batch, headers).qps


@pytest.mark.parametrize("engine", ["interpreted", "compiled"])
@pytest.mark.parametrize("which", ["i2", "stan"])
def test_fig12_static_throughput(which, engine, i2, stan, benchmark):
    ds = i2 if which == "i2" else stan
    rng = random.Random(12)
    boxes = sorted(ds.network.boxes)
    ingresses = [rng.choice(boxes) for _ in ds.headers]

    quick_tree = build_quick_ordering(ds.universe)
    bfr_tree, _ = best_from_random(ds.universe, trials=10, rng=rng)
    aplinear = APLinearClassifier(ds.dataplane, ds.universe)
    pscan = PScanIdentifier(ds.dataplane)

    # --- stage-1 classification methods -------------------------------
    if engine == "compiled":
        oapt = CompiledAPTree.compile(ds.classifier.tree)
        oapt_qps = _warm_batch_qps(oapt.classify_batch, ds.headers)
        quick_qps = _warm_batch_qps(
            CompiledAPTree.compile(quick_tree).classify_batch, ds.headers
        )
        bfr_qps = _warm_batch_qps(
            CompiledAPTree.compile(bfr_tree).classify_batch, ds.headers
        )
        aplinear.compile()
        aplinear_qps = _warm_batch_qps(aplinear.classify_batch, ds.headers)
        pscan.compile()
        pscan_qps = _warm_batch_qps(pscan.verdict_bits_batch, ds.headers)
    else:
        oapt_qps = _warm_qps(ds.classifier.tree.classify, ds.headers)
        quick_qps = _warm_qps(quick_tree.classify, ds.headers)
        bfr_qps = _warm_qps(bfr_tree.classify, ds.headers)
        aplinear_qps = _warm_qps(aplinear.classify, ds.headers)
        pscan_qps = _warm_qps(pscan.verdicts, ds.headers)

    rows = [
        ("AP Classifier (OAPT)", format_qps(oapt_qps), "1.0x"),
        ("Quick-Ordering", format_qps(quick_qps), f"{oapt_qps / quick_qps:.1f}x"),
        ("Best from Random", format_qps(bfr_qps), f"{oapt_qps / bfr_qps:.1f}x"),
        ("APLinear (AP Verifier)", format_qps(aplinear_qps), f"{oapt_qps / aplinear_qps:.1f}x"),
        ("PScan", format_qps(pscan_qps), f"{oapt_qps / pscan_qps:.1f}x"),
    ]

    if engine == "interpreted":
        # --- full path-computation methods (no batch form) -------------
        fsim = ForwardingSimulator(ds.dataplane)
        pairs = list(zip(ds.headers, ingresses))
        fsim_qps = len(pairs) / _timed(lambda: [fsim.query(h, b) for h, b in pairs])
        hsa = HsaQuerier(ds.network)
        hsa_pairs = pairs[:HSA_SAMPLE]
        hsa_qps = len(hsa_pairs) / _timed(
            lambda: [hsa.query(h, b) for h, b in hsa_pairs]
        )
        rows.append(
            ("Forwarding Simulation", format_qps(fsim_qps), f"{oapt_qps / fsim_qps:.1f}x")
        )
        rows.append(
            ("HSA (Hassel-style)", format_qps(hsa_qps), f"{oapt_qps / hsa_qps:.0f}x")
        )

    emit(
        f"fig12_{ds.name}_{engine}",
        render_table(
            f"Fig. 12 ({ds.name}, {engine} engine): static query throughput "
            "(speedup = AP Classifier / method)",
            ["method", "throughput", "AP Classifier speedup"],
            rows,
        ),
    )

    if engine == "interpreted":
        assert oapt_qps >= quick_qps * 0.9 >= bfr_qps * 0.8
        assert oapt_qps > pscan_qps * 5
        assert oapt_qps > aplinear_qps * 2
        # HSA's per-query cost scales with the rule count (the paper's
        # ~1000x gap comes from 126K-757K rules); at our reduced rule
        # counts the gap shrinks proportionally but must stay decisive.
        assert oapt_qps > hsa_qps * 5
    elif NUMPY_BACKEND in available_backends():
        # Batched evaluation compresses per-node costs, so the ordering
        # survives with smaller margins: the tree still beats the scans,
        # and shallower trees still win, within timing noise.
        assert oapt_qps > quick_qps * 0.7
        assert oapt_qps > bfr_qps * 0.7
        assert oapt_qps > pscan_qps * 2
        assert oapt_qps > aplinear_qps * 1.5
    else:
        # The stdlib backend's mask propagation costs one pass over the
        # whole flat program regardless of depth, so relative ordering
        # reflects program sizes, not the paper's figure; this leg is a
        # correctness/availability smoke only.
        assert min(oapt_qps, quick_qps, bfr_qps, aplinear_qps, pscan_qps) > 0

    if OBS_SIDECARS:
        # Post-hoc observed replay through the classifier (tree search +
        # BDD manager), after every timed/asserted measurement above.
        recorder = Recorder()
        with recorder.observe(ds.classifier):
            ds.classifier.classify_batch(ds.headers)
        emit_obs(f"fig12_{ds.name}_{engine}", recorder)

    benchmark(lambda: ds.classifier.tree.classify(ds.headers[0]))


def _timed(fn) -> float:
    import time

    started = time.perf_counter()
    fn()
    return time.perf_counter() - started
