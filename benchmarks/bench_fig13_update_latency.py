"""Fig. 13: cumulative distribution of the time to add one predicate.

Paper setup: build an AP Tree from an initial subset of predicates, then
add the remaining predicates one at a time, timing each addition (the
atomic-predicate refinement plus the tree leaf splits).  Internet2 starts
from 40/80/120 predicates; ~80% of additions finish in 2 ms, worst 5-6 ms.
Stanford starts from 100/250/400; >90% finish within 1 ms.

Shape to reproduce: additions are fast (ms scale), latency grows with the
number of live atoms, and the initial predicate count has little effect.
"""

from __future__ import annotations

import random
import time

import pytest
from conftest import emit

from repro.analysis.reporting import render_table
from repro.analysis.stats import percentile
from repro.core.atomic import AtomicUniverse
from repro.core.construction import build_oapt
from repro.core.update import UpdateEngine

ADDITIONS = 30


def addition_latencies(ds, initial: int, rng: random.Random) -> list[float]:
    pool = list(ds.dataplane.predicates())
    rng.shuffle(pool)
    base, extra = pool[:initial], pool[initial : initial + ADDITIONS]
    universe = AtomicUniverse.compute(ds.dataplane.manager, base)
    tree = build_oapt(universe)
    engine = UpdateEngine(universe, tree)
    latencies = []
    for labeled in extra:
        started = time.perf_counter()
        engine.add_predicate(labeled)
        latencies.append(time.perf_counter() - started)
    return latencies


@pytest.mark.parametrize("which", ["i2", "stan"])
def test_fig13_predicate_addition_latency(which, i2, stan, benchmark):
    ds = i2 if which == "i2" else stan
    total = len(ds.dataplane.predicates())
    initial_counts = [
        max(total // 4, 2),
        max(total // 2, 3),
        max(3 * total // 4, 4),
    ]
    rng = random.Random(13)
    rows = []
    all_latencies: dict[int, list[float]] = {}
    for initial in initial_counts:
        latencies = [s * 1e3 for s in addition_latencies(ds, initial, rng)]
        all_latencies[initial] = latencies
        rows.append(
            (
                f"k0={initial}",
                f"{percentile(latencies, 50):.2f} ms",
                f"{percentile(latencies, 80):.2f} ms",
                f"{percentile(latencies, 95):.2f} ms",
                f"{max(latencies):.2f} ms",
            )
        )
    emit(
        f"fig13_{ds.name}",
        render_table(
            f"Fig. 13 ({ds.name}): per-predicate addition latency "
            f"({ADDITIONS} additions per initial size)",
            ["initial predicates", "p50", "p80", "p95", "max"],
            rows,
        ),
    )
    # Real-time regime: the bulk of additions completes in milliseconds
    # even in pure Python (paper: ~2 ms at C/Java speeds).
    for latencies in all_latencies.values():
        assert percentile(latencies, 80) < 250.0

    pool = list(ds.dataplane.predicates())

    def one_addition():
        universe = AtomicUniverse.compute(ds.dataplane.manager, pool[:-1])
        tree = build_oapt(universe)
        UpdateEngine(universe, tree).add_predicate(pool[-1])

    benchmark.pedantic(one_addition, rounds=2, iterations=1)
