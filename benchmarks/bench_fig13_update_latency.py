"""Fig. 13: cumulative distribution of the time to add one predicate.

Paper setup: build an AP Tree from an initial subset of predicates, then
add the remaining predicates one at a time, timing each addition (the
atomic-predicate refinement plus the tree leaf splits).  Internet2 starts
from 40/80/120 predicates; ~80% of additions finish in 2 ms, worst 5-6 ms.
Stanford starts from 100/250/400; >90% finish within 1 ms.

Shape to reproduce: additions are fast (ms scale), latency grows with the
number of live atoms, and the initial predicate count has little effect.

Beyond the paper: the ``engine`` axis runs the same addition stream
through the incremental-maintenance engine (delta refinement + compiled
patches, :mod:`repro.core.incremental`) next to the Section VI-A
tombstone engine, and ``test_fig13_incremental_vs_full_rebuild`` pins the
scoreboard the incremental engine exists for -- churn ops must beat the
Section VI-B full-rebuild path by >=5x on the stanford-like dataset.
Results of that comparison land in ``BENCH_fig13_incremental.json`` at
the repo root.  ``--quick`` trims iteration counts for CI smoke.
"""

from __future__ import annotations

import json
import random
import time
from pathlib import Path

import pytest
from conftest import emit, emit_obs

from repro.analysis.reporting import render_table
from repro.analysis.stats import percentile
from repro.core.atomic import AtomicUniverse
from repro.core.construction import build_oapt
from repro.core.incremental import IncrementalEngine
from repro.core.update import UpdateEngine
from repro.network.dataplane import LabeledPredicate
from repro.obs import Recorder

ADDITIONS = 30
ADDITIONS_QUICK = 8

#: Incremental-vs-rebuild comparison sizing.
CHURN_OPS = 30
CHURN_OPS_QUICK = 6
REBUILD_ROUNDS = 3
REBUILD_ROUNDS_QUICK = 2
SPEEDUP_FLOOR = 5.0

RESULT_JSON = Path(__file__).parent.parent / "BENCH_fig13_incremental.json"

ENGINES = {
    "tombstone": UpdateEngine,
    "incremental": IncrementalEngine,
}


def addition_latencies(
    ds, initial: int, rng: random.Random, engine_cls=UpdateEngine, additions=ADDITIONS
) -> list[float]:
    pool = list(ds.dataplane.predicates())
    rng.shuffle(pool)
    base, extra = pool[:initial], pool[initial : initial + additions]
    universe = AtomicUniverse.compute(ds.dataplane.manager, base)
    tree = build_oapt(universe)
    engine = engine_cls(universe, tree)
    latencies = []
    for labeled in extra:
        started = time.perf_counter()
        engine.add_predicate(labeled)
        latencies.append(time.perf_counter() - started)
    return latencies


@pytest.mark.parametrize("engine_name", sorted(ENGINES))
@pytest.mark.parametrize("which", ["i2", "stan"])
def test_fig13_predicate_addition_latency(
    which, engine_name, i2, stan, benchmark, quick
):
    ds = i2 if which == "i2" else stan
    engine_cls = ENGINES[engine_name]
    additions = ADDITIONS_QUICK if quick else ADDITIONS
    total = len(ds.dataplane.predicates())
    initial_counts = [
        max(total // 4, 2),
        max(total // 2, 3),
        max(3 * total // 4, 4),
    ]
    if quick:
        initial_counts = initial_counts[1:2]
    rng = random.Random(13)
    rows = []
    all_latencies: dict[int, list[float]] = {}
    for initial in initial_counts:
        latencies = [
            s * 1e3
            for s in addition_latencies(
                ds, initial, rng, engine_cls=engine_cls, additions=additions
            )
        ]
        all_latencies[initial] = latencies
        rows.append(
            (
                f"k0={initial}",
                f"{percentile(latencies, 50):.2f} ms",
                f"{percentile(latencies, 80):.2f} ms",
                f"{percentile(latencies, 95):.2f} ms",
                f"{max(latencies):.2f} ms",
            )
        )
    suffix = "" if engine_name == "tombstone" else f"_{engine_name}"
    emit(
        f"fig13_{ds.name}{suffix}",
        render_table(
            f"Fig. 13 ({ds.name}, {engine_name} engine): per-predicate "
            f"addition latency ({additions} additions per initial size)",
            ["initial predicates", "p50", "p80", "p95", "max"],
            rows,
        ),
    )
    # Real-time regime: the bulk of additions completes in milliseconds
    # even in pure Python (paper: ~2 ms at C/Java speeds).
    for latencies in all_latencies.values():
        assert percentile(latencies, 80) < 250.0

    pool = list(ds.dataplane.predicates())

    def one_addition():
        universe = AtomicUniverse.compute(ds.dataplane.manager, pool[:-1])
        tree = build_oapt(universe)
        engine_cls(universe, tree).add_predicate(pool[-1])

    benchmark.pedantic(one_addition, rounds=1 if quick else 2, iterations=1)


def test_fig13_incremental_vs_full_rebuild(stan, quick):
    """Churn ops through the incremental engine vs Section VI-B rebuilds.

    One churn op = remove one live predicate (merge + splice + patch)
    then re-add it under a fresh pid (refine + split + patch) -- the
    steady-state cost of keeping the partition minimal.  The baseline is
    what the removal *used* to cost once staleness forced it: a full
    ``AtomicUniverse.compute`` plus tree build over the live predicates.
    """
    ops = CHURN_OPS_QUICK if quick else CHURN_OPS
    rounds = REBUILD_ROUNDS_QUICK if quick else REBUILD_ROUNDS
    pool = list(stan.dataplane.predicates())
    universe = AtomicUniverse.compute(stan.dataplane.manager, pool)
    tree = build_oapt(universe)
    recorder = Recorder()
    engine = IncrementalEngine(universe, tree, recorder=recorder)
    live = {labeled.pid: labeled for labeled in pool}
    next_pid = max(live) + 1
    rng = random.Random(31)

    op_latencies: list[float] = []
    for _ in range(ops):
        victim = live.pop(rng.choice(sorted(live)))
        started = time.perf_counter()
        engine.remove_predicate(victim.pid)
        op_latencies.append(time.perf_counter() - started)
        relabeled = LabeledPredicate(
            next_pid, victim.kind, victim.box, victim.port, victim.fn
        )
        next_pid += 1
        started = time.perf_counter()
        engine.add_predicate(relabeled)
        op_latencies.append(time.perf_counter() - started)
        live[relabeled.pid] = relabeled

    rebuild_latencies: list[float] = []
    current = [live[pid] for pid in sorted(live)]
    for _ in range(rounds):
        started = time.perf_counter()
        rebuilt = AtomicUniverse.compute(stan.dataplane.manager, current)
        build_oapt(rebuilt)
        rebuild_latencies.append(time.perf_counter() - started)

    mean_op = sum(op_latencies) / len(op_latencies)
    mean_rebuild = sum(rebuild_latencies) / len(rebuild_latencies)
    speedup = mean_rebuild / mean_op
    rows = [
        (
            "incremental op",
            f"{mean_op * 1e3:.2f} ms",
            f"{percentile([s * 1e3 for s in op_latencies], 95):.2f} ms",
            f"{max(op_latencies) * 1e3:.2f} ms",
        ),
        (
            "full rebuild",
            f"{mean_rebuild * 1e3:.2f} ms",
            "-",
            f"{max(rebuild_latencies) * 1e3:.2f} ms",
        ),
        ("speedup (mean)", f"{speedup:.1f}x", "-", "-"),
    ]
    emit(
        "fig13_incremental_vs_rebuild",
        render_table(
            f"Incremental maintenance vs full rebuild ({stan.name}, "
            f"{ops} remove+re-add ops, {rounds} rebuild rounds)",
            ["path", "mean", "p95", "max"],
            rows,
        ),
    )
    RESULT_JSON.write_text(
        json.dumps(
            {
                "dataset": stan.name,
                "ops": len(op_latencies),
                "mean_op_s": mean_op,
                "mean_rebuild_s": mean_rebuild,
                "speedup": speedup,
                "splices": engine.splices,
                "merges": engine.merges_applied,
                "full_rebuilds": engine.full_rebuilds,
            },
            indent=2,
            allow_nan=False,
        )
        + "\n"
    )
    emit_obs("fig13_incremental", recorder)
    # The scoreboard: maintaining atoms is >=5x cheaper than rebuilding
    # them, and the engine never had to fall back to a rebuild.
    assert engine.full_rebuilds == 0
    assert speedup >= SPEEDUP_FLOOR, (
        f"incremental churn ops only {speedup:.1f}x faster than a full "
        f"rebuild (floor {SPEEDUP_FLOOR}x)"
    )
