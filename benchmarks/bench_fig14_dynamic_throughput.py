"""Fig. 14: query throughput over time for dynamic networks.

Paper setup: initial AP Tree from a random predicate subset; Poisson
add/delete events at 100 or 200 updates/s; reconstruction every 0.4 s;
compare AP Classifier vs APLinear vs PScan.

Shapes to reproduce: AP Classifier an order of magnitude above both
baselines throughout; its throughput decays between reconstructions and
snaps back at each swap; doubling the update rate barely moves the mean.

The ``engine`` axis replays the simulation on the compiled flat-array
engine: every structural update stales the artifact, so the query process
pays an inline recompile before the next cost sample (Section VI-B's
split, with the swap-time compile riding on the reconstruction core).
Compiled cost samples use a larger batch -- the engine's throughput comes
from amortizing work across a batch, and a tiny batch would measure
dispatch overhead instead.
"""

from __future__ import annotations

import random

import pytest
from conftest import OBS_SIDECARS, emit, emit_obs

from repro.analysis.reporting import format_qps, render_series, render_table
from repro.core.compiled import NUMPY_BACKEND, available_backends
from repro.core.reconstruction import DynamicSimulation
from repro.obs import Recorder

DURATION_S = 1.2
BUCKET_S = 0.05


def run_method(
    ds,
    method: str,
    rate: float,
    seed: int,
    engine: str = "interpreted",
    recorder=None,
):
    simulation = DynamicSimulation(
        ds.dataplane.predicates(),
        initial_count=max(len(ds.dataplane.predicates()) // 2, 10),
        method=method,
        reconstruct_interval_s=0.4,
        bucket_s=BUCKET_S,
        rng=random.Random(seed),
        cost_samples=120 if engine == "interpreted" else 600,
        engine=engine,
        recorder=recorder,
    )
    return simulation.run(duration_s=DURATION_S, update_rate_per_s=rate)


@pytest.mark.parametrize("engine", ["interpreted", "compiled"])
@pytest.mark.parametrize("rate", [100, 200])
def test_fig14_dynamic_throughput(rate, engine, i2, benchmark):
    ds = i2
    timelines = {
        method: run_method(ds, method, rate, seed=14, engine=engine)
        for method in ("apclassifier", "aplinear", "pscan")
    }
    means = {
        method: sum(s.throughput_qps for s in samples) / len(samples)
        for method, samples in timelines.items()
    }

    series = [
        (
            f"{s.time_s:.2f}s" + (f" [{s.event}]" if s.event else ""),
            format_qps(s.throughput_qps),
        )
        for s in timelines["apclassifier"]
    ]
    emit(
        f"fig14_rate{rate}_{engine}_timeline",
        render_series(
            f"Fig. 14 ({ds.name}, {rate} updates/s, {engine} engine): "
            "AP Classifier throughput",
            "time", "throughput", series,
        ),
    )
    emit(
        f"fig14_rate{rate}_{engine}_means",
        render_table(
            f"Fig. 14 ({ds.name}, {rate} updates/s, {engine} engine): "
            "mean throughput",
            ["method", "mean throughput", "vs AP Classifier"],
            [
                (m, format_qps(q), f"{means['apclassifier'] / q:.1f}x")
                for m, q in means.items()
            ],
        ),
    )

    # AP Classifier clearly above both baselines.  On the compiled axis
    # every method pays inline recompiles after updates, which hits the
    # scan baselines hardest (their artifacts are the big atom/predicate
    # BDD sets), so the tree's margin persists -- except on the stdlib
    # backend, whose single-pass mask propagation prices methods by flat
    # program size rather than depth; that leg is a smoke run only.
    if engine == "interpreted" or NUMPY_BACKEND in available_backends():
        assert means["apclassifier"] > means["aplinear"] * 3
        assert means["apclassifier"] > means["pscan"] * 3
    else:
        assert min(means.values()) > 0

    # Sawtooth: after each swap, throughput must not be below the level
    # just before the swap (the rebuilt tree is at least as good).
    samples = timelines["apclassifier"]
    for index, sample in enumerate(samples):
        if sample.event == "swap" and 0 < index < len(samples) - 2:
            before = min(s.throughput_qps for s in samples[max(0, index - 3):index])
            after = max(s.throughput_qps for s in samples[index + 1:index + 4])
            assert after > before * 0.7

    if OBS_SIDECARS:
        # One extra observed run, outside the measured/asserted ones
        # above: the recorder mirrors the throughput timeline and counts
        # rebuild/swap events.
        recorder = Recorder()
        run_method(ds, "apclassifier", rate, seed=14, engine=engine,
                   recorder=recorder)
        emit_obs(f"fig14_rate{rate}_{engine}", recorder)

    benchmark.pedantic(
        lambda: run_method(ds, "apclassifier", rate, seed=15, engine=engine),
        rounds=1,
        iterations=1,
    )
