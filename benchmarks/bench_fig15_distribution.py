"""Fig. 15: distribution-aware AP Trees under Pareto traffic.

Paper setup: 10 packet traces per network with per-atom counts drawn from
Pareto(xm=1, alpha=1); compare the distribution-unaware tree against one
rebuilt with measured atom weights.  Paper results: average depth of
queries falls from 10.65 to 8.09 (Internet2) and 16.2 to 11.3 (Stanford);
throughput rises from 4.2 to 5.2 Mqps and 2.4 to 3.2 Mqps.

Shape: weighting reduces the *traffic-weighted* average depth and raises
throughput on every trace.
"""

from __future__ import annotations

import random

import pytest
from conftest import emit

from repro.analysis.reporting import format_qps, render_table
from repro.analysis.stats import measure_throughput
from repro.core.construction import build_oapt
from repro.datasets import pareto_over_atoms

TRACES = 5
TRACE_LEN = 1500


@pytest.mark.parametrize("which", ["i2", "stan"])
def test_fig15_distribution_aware(which, i2, stan, benchmark):
    ds = i2 if which == "i2" else stan
    rng = random.Random(15)
    unaware_tree = ds.classifier.tree

    rows = []
    aware_wins_depth = 0
    throughput_gains = []
    for trace_id in range(TRACES):
        trace = pareto_over_atoms(ds.universe, TRACE_LEN, rng)
        histogram = trace.atom_histogram()
        weights = {atom: float(count) for atom, count in histogram.items()}

        aware_tree = build_oapt(ds.universe, weights=weights)
        unaware_depth = _traffic_depth(unaware_tree, trace)
        aware_depth = _traffic_depth(aware_tree, trace)
        # Warmup both before timing (ordering otherwise biases the race).
        measure_throughput(unaware_tree.classify, trace.headers[:200])
        measure_throughput(aware_tree.classify, trace.headers[:200])
        unaware_qps = measure_throughput(unaware_tree.classify, trace.headers).qps
        aware_qps = measure_throughput(aware_tree.classify, trace.headers).qps

        if aware_depth <= unaware_depth:
            aware_wins_depth += 1
        throughput_gains.append(aware_qps / unaware_qps)
        rows.append(
            (
                f"trace {trace_id}",
                f"{unaware_depth:.2f}",
                f"{aware_depth:.2f}",
                format_qps(unaware_qps),
                format_qps(aware_qps),
            )
        )
    emit(
        f"fig15_{ds.name}",
        render_table(
            f"Fig. 15 ({ds.name}): Pareto traffic, distribution-unaware vs aware",
            ["trace", "unaware depth", "aware depth",
             "unaware throughput", "aware throughput"],
            rows,
        ),
    )

    # Weighted construction must cut the traffic-weighted depth on
    # (nearly) every trace; the throughput gain follows the depth but is
    # noisier in pure Python, so it only needs to hold on average.
    assert aware_wins_depth >= TRACES - 1
    assert sum(throughput_gains) / len(throughput_gains) > 0.95

    trace = pareto_over_atoms(ds.universe, TRACE_LEN, rng)
    weights = {a: float(c) for a, c in trace.atom_histogram().items()}
    benchmark(lambda: build_oapt(ds.universe, weights=weights))


def _traffic_depth(tree, trace) -> float:
    depths = tree.leaf_depths()
    return sum(depths[atom] for atom in trace.atom_ids) / len(trace)
