"""Fig. 4: query throughput vs. average leaf depth over random AP Trees.

The paper builds 100 random-order trees per network and shows throughput
decreasing with average depth; the star (AP Classifier's OAPT tree) beats
every random construction.  We build a smaller ensemble, verify the
negative correlation, and verify the OAPT point dominates.

The ``engine`` axis repeats the sweep on the compiled flat-array engine:
depth still drives cost (one gather iteration per level visited), but
batching compresses per-level overhead, so the compiled axis only asserts
a non-positive trend plus OAPT dominance.
"""

from __future__ import annotations

import random

import pytest
from conftest import OBS_SIDECARS, emit, emit_obs

from repro.analysis.reporting import render_table
from repro.obs import Recorder
from repro.analysis.stats import measure_batch_throughput, measure_throughput, pearson
from repro.core.compiled import CompiledAPTree, NUMPY_BACKEND, available_backends
from repro.core.construction import build_oapt, build_random

TRIALS = 25


def _tree_qps(tree, headers, engine: str) -> float:
    # Warm up, then time: host-load noise otherwise swamps the
    # depth signal for trees measured back to back.
    if engine == "compiled":
        batch = CompiledAPTree.compile(tree).classify_batch
        measure_batch_throughput(batch, headers[:300])
        return measure_batch_throughput(batch, headers).qps
    measure_throughput(tree.classify, headers[:300])
    return measure_throughput(tree.classify, headers).qps


@pytest.mark.parametrize("engine", ["interpreted", "compiled"])
@pytest.mark.parametrize("which", ["i2", "stan"])
def test_fig4_depth_throughput_scatter(which, engine, i2, stan, benchmark):
    ds = i2 if which == "i2" else stan
    rng = random.Random(41)
    depths: list[float] = []
    throughputs: list[float] = []
    for _ in range(TRIALS):
        tree = build_random(ds.universe, rng)
        depths.append(tree.average_depth())
        throughputs.append(_tree_qps(tree, ds.headers, engine))

    oapt_tree = ds.classifier.tree
    oapt_depth = oapt_tree.average_depth()
    oapt_qps = _tree_qps(oapt_tree, ds.headers, engine)

    correlation = pearson(depths, throughputs)
    rows = sorted(zip(depths, throughputs))
    table_rows = [(f"{d:.2f}", f"{q / 1e3:.1f} Kqps") for d, q in rows]
    table_rows.append((f"{oapt_depth:.2f} (OAPT *)", f"{oapt_qps / 1e3:.1f} Kqps"))
    emit(
        f"fig4_{ds.name}_{engine}",
        render_table(
            f"Fig. 4 ({ds.name}, {engine} engine): throughput vs average "
            f"depth over {TRIALS} random trees; Pearson r = {correlation:.3f}",
            ["avg depth", "throughput"],
            table_rows,
        ),
    )

    # The star: OAPT is at least as shallow as every random tree.
    assert oapt_depth <= min(depths) * 1.02
    if engine == "interpreted":
        # The paper's observation: smaller depth -> higher throughput. The
        # correlation is typically -0.85..-0.95 on an idle host; leave
        # slack for timing noise on loaded CI machines.
        assert correlation < -0.35
        assert oapt_qps > sum(throughputs) / len(throughputs)
    elif NUMPY_BACKEND in available_backends():
        # Batching flattens the per-level cost, weakening (not reversing)
        # the depth signal.
        assert correlation < 0.15
        assert oapt_qps > sum(throughputs) / len(throughputs)
    # On the stdlib backend cost tracks flat-program size, not depth, so
    # the depth scatter carries no signal; the table is still emitted.

    if OBS_SIDECARS:
        # Post-hoc observed replay on the OAPT tree -- never during the
        # timed passes above, so the figure numbers stay unbiased.
        recorder = Recorder()
        with recorder.observe_tree(oapt_tree):
            oapt_tree.classify_many(ds.headers)
        emit_obs(f"fig4_{ds.name}_{engine}", recorder)

    benchmark(lambda: build_random(ds.universe, rng))
