"""Fig. 4: query throughput vs. average leaf depth over random AP Trees.

The paper builds 100 random-order trees per network and shows throughput
decreasing with average depth; the star (AP Classifier's OAPT tree) beats
every random construction.  We build a smaller ensemble, verify the
negative correlation, and verify the OAPT point dominates.
"""

from __future__ import annotations

import random

import pytest
from conftest import emit

from repro.analysis.reporting import render_table
from repro.analysis.stats import measure_throughput, pearson
from repro.core.construction import build_oapt, build_random

TRIALS = 25


@pytest.mark.parametrize("which", ["i2", "stan"])
def test_fig4_depth_throughput_scatter(which, i2, stan, benchmark):
    ds = i2 if which == "i2" else stan
    rng = random.Random(41)
    depths: list[float] = []
    throughputs: list[float] = []
    for _ in range(TRIALS):
        tree = build_random(ds.universe, rng)
        depths.append(tree.average_depth())
        # Warm up, then time: host-load noise otherwise swamps the
        # depth signal for trees measured back to back.
        measure_throughput(tree.classify, ds.headers[:300])
        throughputs.append(
            measure_throughput(tree.classify, ds.headers).qps
        )

    oapt_tree = ds.classifier.tree
    oapt_depth = oapt_tree.average_depth()
    measure_throughput(oapt_tree.classify, ds.headers[:300])
    oapt_qps = measure_throughput(oapt_tree.classify, ds.headers).qps

    correlation = pearson(depths, throughputs)
    rows = sorted(zip(depths, throughputs))
    table_rows = [(f"{d:.2f}", f"{q / 1e3:.1f} Kqps") for d, q in rows]
    table_rows.append((f"{oapt_depth:.2f} (OAPT *)", f"{oapt_qps / 1e3:.1f} Kqps"))
    emit(
        f"fig4_{ds.name}",
        render_table(
            f"Fig. 4 ({ds.name}): throughput vs average depth over "
            f"{TRIALS} random trees; Pearson r = {correlation:.3f}",
            ["avg depth", "throughput"],
            table_rows,
        ),
    )

    # The paper's observation: smaller depth -> higher throughput. The
    # correlation is typically -0.85..-0.95 on an idle host; leave slack
    # for timing noise on loaded CI machines.
    assert correlation < -0.35
    # The star: OAPT is at least as shallow as every random tree and
    # faster than the ensemble average.
    assert oapt_depth <= min(depths) * 1.02
    assert oapt_qps > sum(throughputs) / len(throughputs)

    benchmark(lambda: build_random(ds.universe, rng))
