"""Fig. 9: average leaf depth per construction method.

Paper values: Internet2 -- Best-from-Random 16.0, Quick-Ordering 13.0,
OAPT 10.6; Stanford -- 39.0 / 24.2 / 16.9.  The shape to reproduce:
OAPT < Quick-Ordering < Best-from-Random, with OAPT's win larger on the
bigger network.
"""

from __future__ import annotations

import random

import pytest
from conftest import emit

from repro.analysis.reporting import render_table
from repro.core.construction import best_from_random, build_oapt, build_quick_ordering

RANDOM_TRIALS = 25


@pytest.mark.parametrize("which", ["i2", "stan"])
def test_fig9_average_depth(which, i2, stan, benchmark):
    ds = i2 if which == "i2" else stan
    best_tree, _ = best_from_random(
        ds.universe, trials=RANDOM_TRIALS, rng=random.Random(9)
    )
    quick_tree = build_quick_ordering(ds.universe)
    oapt_tree = build_oapt(ds.universe)

    bfr = best_tree.average_depth()
    quick = quick_tree.average_depth()
    oapt = oapt_tree.average_depth()
    emit(
        f"fig9_{ds.name}",
        render_table(
            f"Fig. 9 ({ds.name}): average depth of leaves",
            ["method", "avg depth", "vs Best-from-Random"],
            [
                ("Best from Random", f"{bfr:.2f}", "--"),
                ("Quick-Ordering", f"{quick:.2f}", f"-{(1 - quick / bfr) * 100:.0f}%"),
                ("OAPT", f"{oapt:.2f}", f"-{(1 - oapt / bfr) * 100:.0f}%"),
            ],
        ),
    )
    assert oapt <= quick * 1.01 <= bfr * 1.05

    benchmark(lambda: build_oapt(ds.universe))
