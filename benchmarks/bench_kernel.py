"""Hot-path kernel bench: per-engine QPS, Zipf cache curve, serve QPS.

Three experiments backing the million-QPS hot-path claim:

* **Per-engine batch kernel.**  Stage-1 classification of the session
  traces through every available engine, array-in/array-out
  (:meth:`CompiledAPTree.classify_batch_array` over pre-packed uint64
  words with a reusable ``out`` buffer), against two references: the
  interpreted tree walk and the list-in/list-out numpy path (what
  ``classify_batch`` on a Python list costs -- packing, descent, and the
  ``tolist`` round-trip).  The acceptance bar rides on stanford-like:
  with the native engine built, the word-packed kernel must reach >= 2x
  the list-path numpy throughput.  Identical atom ids are asserted for
  every engine on every header before anything is timed.
* **Zipf hit-rate curve.**  The hot-header :class:`ResultCache` replayed
  over ``zipf_over_headers`` traces across a skew sweep -- the curve
  shows how much of a real (repeat-heavy) stream the cache absorbs at
  each skew, and that a cache smaller than the distinct-header
  population still holds the hot ranks.
* **Serve-integrated QPS.**  Closed-loop serving of the Zipf(1.0) trace
  through :class:`QueryService` with the cache off and on.  With the
  cache on, repeats are answered synchronously at admission -- no
  future, no queue slot, no dispatcher pass -- and the closed-loop QPS
  must exceed the committed ``BENCH_serve_throughput.json`` batched
  number by >= 3x.

Results land in ``BENCH_kernel.json`` at the repo root; with
``REPRO_OBS_SIDECAR=1`` an observed serve run writes
``benchmarks/results/kernel.obs.json``.
"""

from __future__ import annotations

import asyncio
import json
import random
import time
from pathlib import Path

from conftest import OBS_SIDECARS, emit, emit_obs

from repro.analysis.reporting import format_qps, render_series, render_table
from repro.core import kernel
from repro.core.compiled import (
    NUMPY_BACKEND,
    CompiledAPTree,
    available_backends,
)
from repro.datasets import zipf_over_headers
from repro.obs import Recorder
from repro.serve import QueryService, ResultCache

RESULT_JSON = Path(__file__).parent.parent / "BENCH_kernel.json"
SERVE_JSON = Path(__file__).parent.parent / "BENCH_serve_throughput.json"

MIN_NATIVE_SPEEDUP = 2.0
MIN_SERVE_CACHE_SPEEDUP = 3.0
BEST_OF = 5

ZIPF_SWEEP = (0.5, 0.8, 1.0, 1.2, 1.5)
ZIPF_QUERIES = 20_000
ZIPF_DISTINCT = 1024
CACHE_SIZE = 512  # half the distinct population: LRU must hold the hot ranks

SERVE_CLIENTS = 512
SERVE_REQUESTS = 60_000
SERVE_BEST_OF = 3
SERVE_CACHE_SIZE = 4096


def _best_qps(run, n: int) -> float:
    """Best-of-N throughput; the minimum time is the least-noisy sample."""
    run()  # warmup
    best = min(_timed(run) for _ in range(BEST_OF))
    return n / best


def _timed(run) -> float:
    started = time.perf_counter()
    run()
    return time.perf_counter() - started


def engine_qps(ds) -> dict:
    """Array-path QPS for every engine plus the two reference paths."""
    import numpy as np

    tree = ds.classifier.tree
    headers = list(ds.headers)
    expected = tree.classify_many(headers)

    interpreted_qps = _best_qps(lambda: tree.classify_many(headers), len(headers))

    # The list path: what a caller holding Python ints pays end to end
    # (pack + descent + tolist).  This is the pre-kernel numpy interface.
    numpy_tree = CompiledAPTree.compile(tree, backend=NUMPY_BACKEND)
    assert numpy_tree.classify_batch(headers) == expected
    numpy_list_qps = _best_qps(
        lambda: numpy_tree.classify_batch(headers), len(headers)
    )

    # The array path: pre-packed words in, reusable int64 out.  For
    # num_vars <= 64 the packed form IS the header array -- zero copies.
    packed = kernel.pack_headers(headers, numpy_tree.num_vars)
    out = np.empty(len(headers), dtype=np.int64)
    engines: dict[str, dict[str, float]] = {}
    for backend in available_backends():
        compiled = CompiledAPTree.compile(tree, backend=backend)
        if backend == kernel.STDLIB_BACKEND:
            # No array substrate: stdlib batches over big-int lane masks,
            # so its honest cost is the list path it actually serves.
            assert compiled.classify_batch(headers) == expected
            qps = _best_qps(
                lambda c=compiled: c.classify_batch(headers), len(headers)
            )
            path = "list"
        else:
            got = compiled.classify_batch_array(packed)
            assert got.tolist() == expected, f"{backend} diverged on {ds.name}"
            qps = _best_qps(
                lambda c=compiled: c.classify_batch_array(packed, out=out),
                len(headers),
            )
            path = "array"
        engines[backend] = {
            "qps": qps,
            "path": path,
            "vs_interpreted": qps / interpreted_qps,
            "vs_numpy_list": qps / numpy_list_qps,
        }

    return {
        "dataset": ds.name,
        "headers": len(headers),
        "num_vars": numpy_tree.num_vars,
        "interpreted_qps": interpreted_qps,
        "numpy_list_qps": numpy_list_qps,
        "engines": engines,
        "outputs_identical": True,
    }


def zipf_hit_rates(ds) -> list[dict]:
    """Replay the ResultCache over the skew sweep; pure cache dynamics."""
    curve = []
    for s in ZIPF_SWEEP:
        trace = zipf_over_headers(
            ds.universe,
            ZIPF_QUERIES,
            random.Random(23),
            distinct=ZIPF_DISTINCT,
            s=s,
        )
        cache = ResultCache(CACHE_SIZE)
        hits = 0
        for header, atom_id in zip(trace.headers, trace.atom_ids):
            if cache.get(header) is not None:
                hits += 1
            else:
                cache.put(header, atom_id)
        curve.append(
            {
                "s": s,
                "queries": len(trace),
                "distinct": ZIPF_DISTINCT,
                "cache_size": CACHE_SIZE,
                "hit_rate": hits / len(trace),
                "evictions": max(0, len(trace) - hits - CACHE_SIZE),
            }
        )
    return curve


async def closed_loop_qps(service, headers, clients, total_requests) -> float:
    per_client = total_requests // clients

    async def client(offset: int) -> None:
        for index in range(per_client):
            await service.classify(headers[(offset + index) % len(headers)])

    started = time.perf_counter()
    await asyncio.gather(*(client(i * 211) for i in range(clients)))
    return clients * per_client / (time.perf_counter() - started)


async def serve_zipf(classifier, headers, cache_size: int) -> tuple[float, dict]:
    """Best-of-N closed-loop QPS on the Zipf trace; returns cache stats."""
    qps, stats = 0.0, {}
    for _ in range(SERVE_BEST_OF):
        async with QueryService(
            classifier,
            max_batch=SERVE_CLIENTS,
            max_delay_s=0.0002,
            cache_size=cache_size,
        ) as service:
            await closed_loop_qps(service, headers, SERVE_CLIENTS, 5120)
            run_qps = await closed_loop_qps(
                service, headers, SERVE_CLIENTS, SERVE_REQUESTS
            )
            if run_qps > qps:
                qps = run_qps
                counters = service.counters
                stats = {
                    "cache_hits": counters.cache_hits,
                    "cache_misses": counters.cache_misses,
                    "hit_rate": (
                        counters.cache_hits
                        / max(1, counters.cache_hits + counters.cache_misses)
                    ),
                }
    return qps, stats


def run_serve_integrated(ds) -> dict:
    trace = zipf_over_headers(
        ds.universe,
        ZIPF_QUERIES,
        random.Random(23),
        distinct=ZIPF_DISTINCT,
        s=1.0,
    )
    headers = list(trace.headers)
    uncached_qps, _ = asyncio.run(serve_zipf(ds.classifier, headers, 0))
    cached_qps, cache_stats = asyncio.run(
        serve_zipf(ds.classifier, headers, SERVE_CACHE_SIZE)
    )

    # The committed serving bench's batched number is the bar's baseline;
    # fall back to this run's uncached measurement on a fresh checkout.
    if SERVE_JSON.exists():
        reference_qps = json.loads(SERVE_JSON.read_text())["closed_loop"][
            "batched_qps"
        ]
        reference = "BENCH_serve_throughput.json batched_qps"
    else:
        reference_qps = uncached_qps
        reference = "uncached zipf closed loop (serve bench not yet run)"

    return {
        "workload": {"s": 1.0, "distinct": ZIPF_DISTINCT, "queries": ZIPF_QUERIES},
        "clients": SERVE_CLIENTS,
        "cache_size": SERVE_CACHE_SIZE,
        "uncached_qps": uncached_qps,
        "cached_qps": cached_qps,
        "cache": cache_stats,
        "reference": reference,
        "reference_qps": reference_qps,
        "speedup_vs_reference": cached_qps / reference_qps,
    }


def test_kernel_hot_path(i2, stan):
    per_engine = [engine_qps(ds) for ds in (i2, stan)]
    curve = zipf_hit_rates(i2)
    serve = run_serve_integrated(i2)

    rows = []
    for result in per_engine:
        rows.append(
            (
                f"{result['dataset']} numpy (list path)",
                format_qps(result["numpy_list_qps"]),
                "1.0x",
            )
        )
        for backend, data in result["engines"].items():
            rows.append(
                (
                    f"{result['dataset']} {backend} ({data['path']} path)",
                    format_qps(data["qps"]),
                    f"{data['vs_numpy_list']:.2f}x",
                )
            )
    emit(
        "kernel_engines",
        render_table(
            "Batch kernel per engine (array-in/array-out vs numpy list path)",
            ["engine", "throughput", "vs numpy list"],
            rows,
        ),
    )
    emit(
        "kernel_zipf_curve",
        render_series(
            f"Result-cache hit rate vs Zipf skew "
            f"({ZIPF_DISTINCT} distinct headers, cache {CACHE_SIZE})",
            "s",
            "hit rate",
            [(f"{p['s']:.1f}", f"{p['hit_rate'] * 100:.1f}%") for p in curve],
        ),
    )
    emit(
        "kernel_serve",
        render_table(
            f"Serve-integrated Zipf(1.0) closed loop ({SERVE_CLIENTS} clients)",
            ["configuration", "throughput", "vs reference"],
            [
                (
                    "cache off",
                    format_qps(serve["uncached_qps"]),
                    f"{serve['uncached_qps'] / serve['reference_qps']:.2f}x",
                ),
                (
                    f"cache {SERVE_CACHE_SIZE}",
                    format_qps(serve["cached_qps"]),
                    f"{serve['speedup_vs_reference']:.2f}x",
                ),
            ],
        ),
    )

    # Acceptance bar 1: with the native engine built, the word-packed
    # array kernel clears 2x the list-path numpy throughput on
    # stanford-like.  Without a compiler the engine gracefully falls
    # back, so the bar only applies when native is actually available.
    stan_result = per_engine[1]
    native = stan_result["engines"].get(kernel.NATIVE_BACKEND)
    if native is not None:
        assert native["vs_numpy_list"] >= MIN_NATIVE_SPEEDUP, (
            f"native kernel: {native['vs_numpy_list']:.2f}x over numpy list "
            f"path on {stan_result['dataset']} (bar: {MIN_NATIVE_SPEEDUP}x)"
        )

    # Acceptance bar 2: the cached serve path beats the committed batched
    # serving number by 3x on the skewed workload.
    assert serve["speedup_vs_reference"] >= MIN_SERVE_CACHE_SPEEDUP, (
        f"cached serve: {serve['speedup_vs_reference']:.2f}x over "
        f"{serve['reference']} (bar: {MIN_SERVE_CACHE_SPEEDUP}x)"
    )
    # The curve must actually bend: more skew, more hits.
    assert curve[-1]["hit_rate"] > curve[0]["hit_rate"]
    assert serve["cache"]["hit_rate"] > 0.5

    payload = {
        "engines_available": available_backends(),
        "native_available": kernel.native_available(),
        "per_engine": per_engine,
        "zipf_hit_rate_curve": curve,
        "serve_integrated": serve,
        "min_native_speedup_required": MIN_NATIVE_SPEEDUP,
        "min_serve_cache_speedup_required": MIN_SERVE_CACHE_SPEEDUP,
    }
    RESULT_JSON.write_text(json.dumps(payload, indent=2, allow_nan=False) + "\n")

    if OBS_SIDECARS:
        # One observed serve run after the measured sections: the /5
        # snapshot's serve.result_cache section mirrors this bench.
        recorder = Recorder()
        observed = i2.classifier
        trace = zipf_over_headers(
            i2.universe, 2048, random.Random(29), distinct=256, s=1.0
        )
        headers = list(trace.headers)

        async def observed_run() -> None:
            async with QueryService(
                observed,
                max_batch=SERVE_CLIENTS,
                max_delay_s=0.0002,
                cache_size=1024,
                recorder=recorder,
            ) as service:
                await closed_loop_qps(service, headers, 128, 4096)

        asyncio.run(observed_run())
        emit_obs("kernel", recorder)
