"""Comparator study: AP Tree vs MDD classification ([10], ICNP 2014).

The paper could not measure against Inoue et al.'s MDD (closed source) and
argues qualitatively: the MDD answers lookups in a fixed handful of
indexed steps but cannot be updated in real time -- any change rebuilds
it. This bench quantifies that trade with our own MDD implementation over
the same atomic predicates:

* lookup: MDD faster than the AP Tree;
* construction: MDD slower;
* update: AP Tree absorbs a predicate addition incrementally; the MDD
  must rebuild, orders of magnitude slower.
"""

from __future__ import annotations

import random
import time

from conftest import emit

from repro.analysis.reporting import format_qps, render_table
from repro.baselines.mdd import MddClassifier
from repro.core.atomic import AtomicUniverse
from repro.core.construction import build_oapt
from repro.core.update import UpdateEngine


def test_mdd_vs_aptree(i2, benchmark):
    ds = i2
    universe = ds.universe

    started = time.perf_counter()
    mdd = MddClassifier(universe)
    mdd_build_s = time.perf_counter() - started
    started = time.perf_counter()
    tree = build_oapt(universe)
    tree_build_s = time.perf_counter() - started

    headers = ds.headers
    for _ in range(2):  # warm both, then measure
        mdd_started = time.perf_counter()
        for header in headers:
            mdd.classify(header)
        mdd_query_s = time.perf_counter() - mdd_started
        tree_started = time.perf_counter()
        for header in headers:
            tree.classify(header)
        tree_query_s = time.perf_counter() - tree_started

    # Update cost: add one predicate. AP Tree: incremental. MDD: rebuild.
    pool = ds.dataplane.predicates()
    base, extra = pool[:-1], pool[-1]
    update_universe = AtomicUniverse.compute(ds.dataplane.manager, base)
    update_tree = build_oapt(update_universe)
    engine = UpdateEngine(update_universe, update_tree)
    started = time.perf_counter()
    engine.add_predicate(extra)
    tree_update_s = time.perf_counter() - started
    started = time.perf_counter()
    MddClassifier(update_universe)  # the rebuild an MDD needs
    mdd_update_s = time.perf_counter() - started

    emit(
        "mdd_tradeoff",
        render_table(
            f"AP Tree vs MDD over the same atoms ({ds.name})",
            ["metric", "AP Tree (OAPT)", "MDD"],
            [
                (
                    "lookup throughput",
                    format_qps(len(headers) / tree_query_s),
                    format_qps(len(headers) / mdd_query_s),
                ),
                (
                    "construction",
                    f"{tree_build_s * 1e3:.1f} ms",
                    f"{mdd_build_s * 1e3:.1f} ms",
                ),
                (
                    "one predicate update",
                    f"{tree_update_s * 1e3:.2f} ms (incremental)",
                    f"{mdd_update_s * 1e3:.1f} ms (full rebuild)",
                ),
            ],
        ),
    )

    # The paper's qualitative comparison, asserted:
    assert mdd_query_s < tree_query_s  # MDD lookups faster
    assert tree_update_s < mdd_update_s  # AP Tree updates far cheaper

    benchmark(lambda: mdd.classify(headers[0]))
