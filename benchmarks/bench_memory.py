"""Section VII-B: memory usage of all classifier components.

Paper: 4.79 MB (Internet2) / 2.15 MB (Stanford), counting the topology,
predicates, atomic predicates, and the AP Tree -- small enough for cache.
The non-obvious finding is that memory follows BDD node counts, not rule
counts. Our stand-ins land in the same "a few MB" band, with the same
node-count-driven composition.
"""

from __future__ import annotations

from conftest import emit

from repro.analysis.memory import memory_report
from repro.analysis.reporting import render_table


def test_memory_breakdown(datasets, benchmark):
    rows = []
    for ds in datasets:
        report = memory_report(ds.classifier)
        rows.append(
            (
                ds.name,
                report.predicate_bdd_nodes,
                report.atom_bdd_nodes,
                report.tree_nodes,
                report.r_entries,
                f"{report.total_bytes / 1e6:.2f} MB",
            )
        )
    emit(
        "memory_breakdown",
        render_table(
            "Section VII-B: memory usage by component",
            ["network", "predicate BDD nodes", "atom BDD nodes",
             "tree nodes", "R entries", "estimated total"],
            rows,
        ),
    )
    for ds in datasets:
        report = memory_report(ds.classifier)
        # "AP Classifier uses very small memory and can be stored in
        # cache": single-digit MB at most.
        assert report.total_bytes < 32 * 1024 * 1024

    ds = datasets[0]
    benchmark(lambda: memory_report(ds.classifier))
