"""Incremental HSA (NetPlumber) vs recompute-from-scratch HSA.

Section II positions NetPlumber as the way to keep header-space results
fresh in real time. This bench quantifies the claim on our stack: after a
rule insertion, NetPlumber touches only the pipes around the new rule,
while plain HSA pays a full transfer-function rebuild plus a fresh
propagation. AP Classifier's own update (atom refinement + leaf splits)
is shown alongside as the paper's alternative.
"""

from __future__ import annotations

import random
import time

from conftest import emit

from repro.analysis.reporting import render_table
from repro.baselines import HsaQuerier, NetPlumber
from repro.core.classifier import APClassifier
from repro.datasets import internet2_like
from repro.headerspace.fields import parse_ipv4
from repro.headerspace.wildcard import WildcardSet
from repro.network.rules import ForwardingRule, Match

UPDATES = 8


def test_incremental_vs_recompute(benchmark):
    network = internet2_like(prefixes_per_router=4, te_fraction=0.0)
    netplumber = NetPlumber(network)
    classifier = APClassifier.build(network)
    rng = random.Random(30)
    boxes = sorted(network.boxes)

    updates = []
    for index in range(UPDATES):
        box = rng.choice(boxes)
        ports = network.box(box).table.out_ports()
        updates.append(
            (
                box,
                ForwardingRule(
                    Match.prefix(
                        "dst_ip",
                        parse_ipv4(f"10.{index + 1}.{rng.randrange(1, 250)}.0"),
                        24,
                    ),
                    (rng.choice(ports),),
                    priority=24,
                ),
            )
        )

    # NetPlumber: incremental graph maintenance + probe-style re-query.
    started = time.perf_counter()
    for box, rule in updates:
        network.box(box).table.add(rule)
        netplumber.insert_rule(box, rule)
        netplumber.reach_region(WildcardSet.full(32), box)
    np_per_update = (time.perf_counter() - started) / len(updates)

    # Roll the network back for a fair second run.
    for box, rule in updates:
        network.box(box).table.remove(rule)

    # Plain HSA: rebuild the querier each time (it has no update path).
    started = time.perf_counter()
    for box, rule in updates:
        network.box(box).table.add(rule)
        querier = HsaQuerier(network)
        querier.reach_region(WildcardSet.full(32), box)
    hsa_per_update = (time.perf_counter() - started) / len(updates)
    for box, rule in updates:
        network.box(box).table.remove(rule)

    # AP Classifier: the paper's incremental update (no global re-query
    # needed; affected classes can be re-checked selectively).
    started = time.perf_counter()
    for box, rule in updates:
        classifier.insert_rule(box, rule)
        for atom_id in classifier.atoms_matching(rule.match):
            classifier.behavior_of_atom(atom_id, box)
    ap_per_update = (time.perf_counter() - started) / len(updates)

    emit(
        "netplumber_incremental",
        render_table(
            "Per-update cost: incremental structures vs recompute "
            f"({UPDATES} rule inserts, internet2-like)",
            ["approach", "per update"],
            [
                ("HSA, rebuilt per update", f"{hsa_per_update * 1e3:.1f} ms"),
                ("NetPlumber, incremental", f"{np_per_update * 1e3:.1f} ms"),
                ("AP Classifier, incremental", f"{ap_per_update * 1e3:.2f} ms"),
            ],
        ),
    )
    # The §II claim this bench pins down: incremental plumbing-graph
    # maintenance beats recomputing HSA per update. The AP Classifier row
    # is informational here -- its update cost is asserted separately in
    # bench_fig13 (structure maintenance) and bench_update_verification
    # (affected-flow re-query); the three approaches re-verify different
    # scopes, so cross-asserting their order is not meaningful.
    assert np_per_update < hsa_per_update

    rule_box, rule = updates[0]
    def one_netplumber_cycle():
        network.box(rule_box).table.add(rule)
        netplumber.insert_rule(rule_box, rule)
        network.box(rule_box).table.remove(rule)
        netplumber.remove_rule(rule_box, rule)

    benchmark.pedantic(one_netplumber_cycle, rounds=3, iterations=1)
