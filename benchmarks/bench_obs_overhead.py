"""Overhead budget for the instrumentation layer (no-op recorder).

The observability layer's contract is that an *unattached* recorder is
free: every instrumented hot path reads ``self.recorder`` once up front
and, when it is ``None``, runs the exact pre-instrumentation loop.  This
bench holds that contract to a number: ``classify_many`` with no recorder
attached must stay within 5% of a hand-inlined replica of the
pre-instrumentation loop, measured as best-of-N to shed scheduler noise.

It also sanity-checks the other direction -- an *attached* recorder must
actually collect -- so the no-op result can't be trivially satisfied by
instrumentation that never fires.
"""

from __future__ import annotations

import time

from conftest import emit
from repro.analysis.reporting import render_table
from repro.obs import Recorder

#: Acceptance bound: no-op recorder overhead on classify_many.
MAX_OVERHEAD = 1.05
ROUNDS = 7
REPEATS = 3


def _baseline_classify_many(tree, headers) -> list[int]:
    """The pre-instrumentation ``classify_many`` loop, verbatim."""
    root = tree.root
    evaluate = tree.manager.evaluate_from
    results: list[int] = []
    append = results.append
    for header in headers:
        node = root
        while node.pid is not None:
            node = node.high if evaluate(node.fn_node, header) else node.low
        append(node.atom_id)
    return results


def _best_of(fn, rounds: int, repeats: int) -> float:
    """Minimum wall time of ``fn`` over ``rounds`` x ``repeats`` calls."""
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        for _ in range(repeats):
            fn()
        best = min(best, time.perf_counter() - started)
    return best


def test_noop_recorder_overhead(i2, benchmark):
    tree = i2.classifier.tree
    headers = i2.headers
    assert tree.recorder is None

    # Interleave-warm both paths, then take best-of-N for each.
    _baseline_classify_many(tree, headers)
    tree.classify_many(headers)
    baseline_s = _best_of(
        lambda: _baseline_classify_many(tree, headers), ROUNDS, REPEATS
    )
    instrumented_s = _best_of(
        lambda: tree.classify_many(headers), ROUNDS, REPEATS
    )
    ratio = instrumented_s / baseline_s

    emit(
        "obs_overhead",
        render_table(
            f"Instrumentation overhead ({i2.name}, {len(headers)} headers, "
            f"best of {ROUNDS}x{REPEATS})",
            ["path", "seconds", "ratio"],
            [
                ("pre-instrumentation loop", f"{baseline_s:.4f}", "1.00x"),
                ("classify_many, recorder off", f"{instrumented_s:.4f}",
                 f"{ratio:.2f}x"),
            ],
        ),
    )
    assert ratio < MAX_OVERHEAD, (
        f"no-op recorder costs {ratio:.3f}x (> {MAX_OVERHEAD}x) on "
        "classify_many"
    )

    # The flip side: attached instrumentation must actually observe.
    recorder = Recorder()
    with recorder.observe_tree(tree):
        expected = tree.classify_many(headers)
    assert tree.recorder is None
    assert recorder.tree.queries == len(headers)
    assert recorder.tree.predicate_evaluations > 0
    assert expected == _baseline_classify_many(tree, headers)

    benchmark(lambda: tree.classify_many(headers))
