"""Multi-core offline pipeline speedup (the PR's claim).

Times the full offline phase -- rule conversion, atomic-predicate
computation, AP Tree construction -- four ways on each bench dataset:

* plain serial   -- ``DataPlane`` + ``AtomicUniverse.compute`` +
  ``build_tree`` (the pre-existing code path);
* pipeline, w=1  -- ``offline_pipeline`` on the serial fallback, to bound
  the overhead the parallel layer adds when it is disabled;
* pipeline, w=2 and w=4 -- the sharded pipeline.

Every run gets a *fresh* BDD manager so no run warms another's caches.
Output equivalence is checked through manager-independent signatures:
canonical atom witnesses + model counts, ``R`` sets over canonical atom
ids, and the tree's classifications of the bench trace (the plain-serial
run's refinement-order atom ids are translated to canonical ids first).

The divide-and-conquer atom stage is the headline: shard refinement
keeps intermediate partitions small and the witness-guided merge does
O(final atoms) BDD operations, so the decomposition wins wall-clock even
on a single core.  Acceptance bars (scaled synthetic): >= 1.6x end to
end at 4 workers, serial-fallback overhead <= 5%, identical outputs.
Results land in ``BENCH_parallel_offline.json`` at the repo root.
"""

from __future__ import annotations

import json
import random
import time
from pathlib import Path

from conftest import emit, emit_obs

from repro.analysis.reporting import render_table
from repro.bdd import BDDManager
from repro.core.atomic import AtomicUniverse
from repro.core.construction import build_tree
from repro.network.dataplane import DataPlane
from repro.obs import Recorder
from repro.parallel import WorkerPool, offline_pipeline

RESULT_JSON = Path(__file__).parent.parent / "BENCH_parallel_offline.json"

WORKER_COUNTS = (2, 4)
MIN_SPEEDUP_AT_4 = 1.6
MAX_FALLBACK_OVERHEAD = 1.05
TRACE_SAMPLES = 1000


def _signature(universe, tree, headers):
    """A manager-independent fingerprint of the offline artifacts."""
    manager = universe.manager
    order = sorted(
        universe.atom_ids(),
        key=lambda a: manager.first_sat(universe.atom_fn(a).node),
    )
    relabel = {old: new for new, old in enumerate(order)}
    witnesses = tuple(
        (
            manager.first_sat(universe.atom_fn(a).node),
            manager.sat_count(universe.atom_fn(a).node),
        )
        for a in order
    )
    r_sets = {
        pid: frozenset(relabel[a] for a in universe.r(pid))
        for pid in universe.predicate_ids()
    }
    classes = tuple(relabel[tree.classify(h)] for h in headers)
    return witnesses, r_sets, classes


def _run_plain(network, headers):
    manager = BDDManager(network.layout.total_width)
    started = time.perf_counter()
    dataplane = DataPlane(network, manager)
    universe = AtomicUniverse.compute(manager, dataplane.predicates())
    report = build_tree(universe, strategy="oapt")
    elapsed = time.perf_counter() - started
    return elapsed, _signature(universe, report.tree, headers)


def _run_pipeline(network, workers, headers, recorder=None):
    manager = BDDManager(network.layout.total_width)
    with WorkerPool(workers) as pool:
        started = time.perf_counter()
        result = offline_pipeline(
            network, manager=manager, pool=pool, recorder=recorder
        )
        elapsed = time.perf_counter() - started
    signature = _signature(result.universe, result.report.tree, headers)
    return elapsed, signature, result


def test_parallel_offline_speedup(datasets):
    rng = random.Random(23)
    rows = []
    payload_datasets = {}
    sidecar_recorder = None

    for ds in datasets:
        network = ds.network
        width = network.layout.total_width
        headers = [rng.randrange(1 << width) for _ in range(TRACE_SAMPLES)]
        scaled = ds.name.startswith("stanford")

        plain_s, plain_sig = _run_plain(network, headers)
        fallback_s, fallback_sig, _ = _run_pipeline(network, 1, headers)
        overhead = fallback_s / plain_s

        identical = fallback_sig == plain_sig
        entry = {
            "predicates": len(ds.dataplane.predicates()),
            "atoms": ds.universe.atom_count,
            "plain_serial_s": plain_s,
            "fallback_s": fallback_s,
            "fallback_overhead": overhead,
            "workers": {},
        }
        rows.append((ds.name, "plain serial", f"{plain_s:.2f}s", "1.00x"))
        rows.append(
            (
                ds.name,
                "pipeline w=1",
                f"{fallback_s:.2f}s",
                f"{plain_s / fallback_s:.2f}x",
            )
        )

        for workers in WORKER_COUNTS:
            recorder = None
            if workers == 2 and not scaled:
                recorder = sidecar_recorder = Recorder()
            par_s, par_sig, result = _run_pipeline(
                network, workers, headers, recorder=recorder
            )
            identical = identical and par_sig == plain_sig
            speedup = plain_s / par_s
            entry["workers"][str(workers)] = {
                "total_s": par_s,
                "speedup": speedup,
                "stages_s": {
                    stage: round(seconds, 4)
                    for stage, seconds in result.timings.items()
                },
            }
            rows.append(
                (
                    ds.name,
                    f"pipeline w={workers}",
                    f"{par_s:.2f}s",
                    f"{speedup:.2f}x",
                )
            )
            if scaled and workers == 4:
                assert speedup >= MIN_SPEEDUP_AT_4, (
                    f"{ds.name}: {speedup:.2f}x end-to-end at 4 workers "
                    f"< required {MIN_SPEEDUP_AT_4}x"
                )

        assert identical, f"{ds.name}: parallel outputs diverged from serial"
        entry["outputs_identical"] = True
        if scaled:
            assert overhead <= MAX_FALLBACK_OVERHEAD, (
                f"{ds.name}: serial fallback overhead {overhead:.3f} "
                f"> {MAX_FALLBACK_OVERHEAD}"
            )
        payload_datasets[ds.name] = entry

    payload = {
        "worker_counts": list(WORKER_COUNTS),
        "min_speedup_at_4": MIN_SPEEDUP_AT_4,
        "max_fallback_overhead": MAX_FALLBACK_OVERHEAD,
        "trace_samples": TRACE_SAMPLES,
        "outputs_identical": all(
            entry["outputs_identical"] for entry in payload_datasets.values()
        ),
        "datasets": payload_datasets,
    }
    RESULT_JSON.write_text(
        json.dumps(payload, indent=2, allow_nan=False) + "\n"
    )

    emit(
        "parallel_offline",
        render_table(
            "Offline pipeline wall time (fresh manager per run; identical "
            "outputs verified)",
            ["dataset", "configuration", "total", "speedup"],
            rows,
        ),
    )
    if sidecar_recorder is not None:
        emit_obs("parallel_offline", sidecar_recorder)
