"""Scaling study: construction cost vs network size (§V-C complexity).

The paper bounds OAPT construction by O(k n^2 log n) for k predicates and
n atoms. This bench grows two knobs independently and records how the
measured build time and the AP Tree depth respond:

* Internet2-like with increasing prefixes per router (k grows, n grows
  proportionally);
* fat-trees of increasing arity (topology grows, atoms stay modest).

Asserted: cost grows monotonically-ish with size (each step no more than
the predicted polynomial envelope), and average depth stays ~log2(n)-ish,
i.e. far below k.
"""

from __future__ import annotations

import math
import time

from conftest import emit

from repro.analysis.reporting import render_table
from repro.core.atomic import AtomicUniverse
from repro.core.construction import build_oapt
from repro.datasets import fattree, internet2_like
from repro.network.dataplane import DataPlane


def measure(network) -> tuple[int, int, float, float]:
    dataplane = DataPlane(network)
    started = time.perf_counter()
    universe = AtomicUniverse.compute(dataplane.manager, dataplane.predicates())
    tree = build_oapt(universe)
    elapsed = time.perf_counter() - started
    return (
        universe.predicate_count,
        universe.atom_count,
        elapsed,
        tree.average_depth(),
    )


def test_scaling_internet2(benchmark):
    rows = []
    series = []
    for prefixes in (2, 5, 9, 14):
        k, n, seconds, depth = measure(internet2_like(prefixes_per_router=prefixes))
        rows.append(
            (
                f"{prefixes}/router",
                k,
                n,
                f"{seconds * 1e3:.1f} ms",
                f"{depth:.2f}",
                f"{math.log2(max(n, 2)):.2f}",
            )
        )
        series.append((k, n, seconds, depth))
    emit(
        "scaling_internet2",
        render_table(
            "Scaling (internet2-like): build cost vs size",
            ["prefixes", "predicates k", "atoms n", "build", "avg depth",
             "log2(n)"],
            rows,
        ),
    )
    # Depth tracks log n, never k.
    for k, n, _, depth in series:
        assert depth < k / 2
        assert depth < 4 * math.log2(max(n, 2))
    # Build cost grows no faster than the paper's k n^2 log n envelope
    # between consecutive sizes (with slack for constant factors).
    for (k0, n0, t0, _), (k1, n1, t1, _) in zip(series, series[1:]):
        envelope = (k1 * n1**2 * math.log2(max(n1, 2))) / (
            k0 * n0**2 * math.log2(max(n0, 2))
        )
        assert t1 <= t0 * envelope * 8

    benchmark.pedantic(
        lambda: measure(internet2_like(prefixes_per_router=5)),
        rounds=2,
        iterations=1,
    )


def test_scaling_fattree(benchmark):
    rows = []
    previous_boxes = 0
    for k in (4, 6, 8):
        network = fattree(k)
        preds, atoms, seconds, depth = measure(network)
        boxes = len(network.boxes)
        assert boxes > previous_boxes
        previous_boxes = boxes
        rows.append(
            (
                f"k={k}",
                boxes,
                network.rule_count(),
                preds,
                atoms,
                f"{seconds * 1e3:.1f} ms",
                f"{depth:.2f}",
            )
        )
    emit(
        "scaling_fattree",
        render_table(
            "Scaling (fat-tree): build cost vs arity",
            ["arity", "boxes", "rules", "predicates", "atoms", "build",
             "avg depth"],
            rows,
        ),
    )
    benchmark.pedantic(lambda: measure(fattree(4)), rounds=2, iterations=1)
