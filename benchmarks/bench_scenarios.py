"""Per-scenario bench axis: every workload the registry knows, one table.

Until now every published number (BENCH_kernel, BENCH_serve_throughput,
BENCH_shard_scaling, BENCH_fig13_incremental) was measured on the two
friendly WAN-like datasets. This bench runs the whole registry catalog
-- the WAN baselines plus the adversarial foundry scenarios (ACL-heavy,
Clos/ECMP, IPv6-width, SDN-policy) -- through the same four-measurement
harness:

* offline build wall time,
* predicate/atom structure (the ACL corpus must show its super-linear
  atoms-per-predicate blowup next to the WAN baselines -- asserted),
* compiled classify_batch throughput on the scenario's canonical trace,
* per-update latency of the incremental engine under the scenario's
  canonical churn stream, with the compiled artifact staying fresh.

Results land in ``BENCH_scenarios.json`` at the repo root; with
``REPRO_OBS_SIDECAR=1`` each scenario also writes a
``results/scenario_<name>.obs.json`` sidecar whose ``scenario`` section
carries the registry tag (schema ``repro.obs.snapshot/9``).

``--quick`` shrinks scenario params and iteration counts for CI smoke;
quick rows are not comparable to full rows.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from conftest import TRACE_LEN, emit, emit_obs

from repro.analysis.reporting import render_table
from repro.analysis.stats import percentile
from repro.core.classifier import APClassifier
from repro.datasets import get_scenario
from repro.obs import Recorder

RESULT_JSON = Path(__file__).parent.parent / "BENCH_scenarios.json"

#: The catalog axis: WAN baselines first (the super-linearity yardstick),
#: then the four foundry scenarios.
FULL_SPECS = {
    "internet2": {},
    "stanford": {},
    "acl-heavy": {},
    "clos-ecmp": {"k": 6},
    "ipv6-wan": {},
    "sdn-policy": {},
}
QUICK_SPECS = {
    "internet2": {"prefixes_per_router": 2},
    "stanford": {"subnets_per_zone": 2, "host_ports_per_zone": 1},
    "acl-heavy": {"lists": 6, "rules_per_list": 8},
    "clos-ecmp": {"k": 4},
    "ipv6-wan": {"prefixes_per_router": 2},
    "sdn-policy": {"leaves": 3},
}

WAN_BASELINES = ("internet2", "stanford")

UPDATES = 24
UPDATES_QUICK = 8
#: The scoreboard: the ACL corpus must refine at least this many times
#: more atoms per predicate than the densest WAN baseline.
ACL_SUPERLINEAR_FLOOR = 2.0


def _measure(name: str, params: dict, trace_len: int, updates: int) -> dict:
    """Build, compile, classify, and churn one scenario; return the row."""
    scenario = get_scenario(name, **params)

    started = time.perf_counter()
    classifier = APClassifier.build(
        scenario.network(), strategy="oapt", maintenance="incremental"
    )
    build_s = time.perf_counter() - started
    stats = classifier.stats()

    classifier.compile()
    trace = scenario.trace(classifier.universe, trace_len)
    started = time.perf_counter()
    classifier.classify_batch(trace.headers)
    classify_s = time.perf_counter() - started
    qps = len(trace.headers) / classify_s if classify_s else 0.0

    update_latencies_ms: list[float] = []
    for update in scenario.update_stream(updates):
        started = time.perf_counter()
        if update.kind == "insert":
            classifier.insert_rule(update.box, update.rule)
        else:
            classifier.remove_rule(update.box, update.rule)
        update_latencies_ms.append((time.perf_counter() - started) * 1e3)

    row = {
        "scenario": scenario.name,
        "params": dict(scenario.params),
        "seed": scenario.seed,
        "network_rules": scenario.network().stats()["forwarding_rules"]
        + scenario.network().stats()["acl_rules"],
        "build_s": build_s,
        "predicates": stats.predicates,
        "atoms": stats.atoms,
        "atoms_per_predicate": stats.atoms / stats.predicates,
        "compiled_qps": qps,
        "updates": len(update_latencies_ms),
        "update_mean_ms": sum(update_latencies_ms) / len(update_latencies_ms),
        "update_p95_ms": percentile(update_latencies_ms, 95),
        "compiled_fresh_after_churn": classifier.compiled_fresh,
    }

    # Post-hoc observed replay for the sidecar (never inside the measured
    # sections), tagged with the scenario that produced the workload.
    recorder = Recorder()
    recorder.set_scenario(scenario)
    with recorder.observe(classifier):
        classifier.classify_batch(trace.headers[:256])
        for update in scenario.update_stream(4):
            if update.kind == "insert":
                classifier.insert_rule(update.box, update.rule)
            else:
                classifier.remove_rule(update.box, update.rule)
    emit_obs(f"scenario_{scenario.name}", recorder)
    return row


def test_scenario_axis(quick):
    specs = QUICK_SPECS if quick else FULL_SPECS
    trace_len = 500 if quick else TRACE_LEN
    updates = UPDATES_QUICK if quick else UPDATES

    rows = [
        _measure(name, params, trace_len, updates)
        for name, params in specs.items()
    ]

    table_rows = [
        (
            row["scenario"],
            f"{row['build_s']:.2f} s",
            row["predicates"],
            row["atoms"],
            f"{row['atoms_per_predicate']:.1f}",
            f"{row['compiled_qps'] / 1e3:.1f}k",
            f"{row['update_mean_ms']:.2f} ms",
            f"{row['update_p95_ms']:.2f} ms",
        )
        for row in rows
    ]
    emit(
        "scenarios",
        render_table(
            f"scenario axis ({'quick' if quick else 'full'} mode, "
            f"{trace_len}-packet trace, {updates} churn updates)",
            [
                "scenario",
                "build",
                "preds",
                "atoms",
                "atoms/pred",
                "compiled QPS",
                "update mean",
                "update p95",
            ],
            table_rows,
        ),
    )

    by_name = {row["scenario"]: row for row in rows}
    wan_ratio = max(
        by_name[name]["atoms_per_predicate"] for name in WAN_BASELINES
    )
    acl_ratio = by_name["acl-heavy"]["atoms_per_predicate"]
    payload = {
        "quick": quick,
        "trace_len": trace_len,
        "rows": rows,
        "acl_superlinearity": {
            "acl_atoms_per_predicate": acl_ratio,
            "max_wan_atoms_per_predicate": wan_ratio,
            "ratio": acl_ratio / wan_ratio,
            "floor": ACL_SUPERLINEAR_FLOOR,
        },
    }
    RESULT_JSON.write_text(
        json.dumps(payload, indent=2, allow_nan=False) + "\n"
    )

    # The Hazelhurst regime is the point of the ACL corpus: its atom
    # count grows super-linearly in its predicate count while the WAN
    # baselines stay near one atom per predicate.
    assert acl_ratio > ACL_SUPERLINEAR_FLOOR * wan_ratio, (
        f"acl-heavy atoms/predicate {acl_ratio:.1f} not demonstrably "
        f"super-linear vs WAN baselines ({wan_ratio:.1f})"
    )
    # Incremental maintenance kept the compiled artifact fresh through
    # every scenario's churn stream.
    for row in rows:
        assert row["compiled_fresh_after_churn"], (
            f"{row['scenario']}: compiled artifact went stale under churn"
        )
