"""Serving-layer throughput: micro-batching gain and degradation curve.

Four experiments on private Internet2-like classifiers (private because
the churn legs mutate the data plane and reconstruct, which would
corrupt the shared session fixtures):

* **Closed loop.**  One sequential client versus 96 concurrent clients
  through the same :class:`repro.serve.QueryService`, with the batching
  window on and off.  The acceptance bar rides here: micro-batched
  serving must reach >= 3x the single-query QPS -- coalescing concurrent
  arrivals into one ``classify_batch`` call amortizes the compiled
  engine's bit-parallel path across requests that arrived independently.
* **Open loop.**  Requests injected at ~1.5x the measured batched
  capacity against a bounded queue with the ``shed`` policy: the service
  must stay up, serve at capacity, shed the excess, and account for
  every request (served + shed + timed out == offered).
* **Degradation curve.**  Continuous closed-loop load while the data
  plane churns: rule updates stale the compiled artifact (queries fall
  back to the interpreted tree -- exact, slower), then a live
  reconstruction rebuilds and swaps behind the reader-preferring lock.
  The timeline shows the stale dip and the post-swap recovery.  The
  service runs with the hot-header result cache enabled, and every
  bucket records the cache hit rate and the single-flight coalescing
  count: each rule update and the swap itself invalidate the cache
  (generation keying), so the timeline shows the hit rate collapse at
  each churn event and refill after.  Clients replay the trace in
  per-client shuffled order -- independent callers over one hot set --
  so concurrent duplicates exist (and coalesce) without the lockstep
  platooning a shared sequential walk degenerates into.
* **Churn storm.**  The degradation scenario at burst intensity (16
  updates back to back), run once per maintenance mode.  Tombstone
  maintenance pins the service in the stale interpreted-fallback regime
  for the rest of the run; incremental maintenance
  (:mod:`repro.core.incremental`) patches the compiled program in place
  on every update, so the timeline stays fresh throughout and no
  reconstruction is needed.

The churn-storm leg also runs standalone against any registry scenario:
``pytest bench_serve_throughput.py::test_churn_storm_scenario
--scenario sdn-policy`` draws the storm from the scenario's own seeded
update stream, serves it under incremental maintenance, and writes
``results/serve_churn_<name>.json`` plus (with ``REPRO_OBS_SIDECAR=1``)
a scenario-tagged ``results/serve_churn_<name>.obs.json`` sidecar.

Two serving axes are configurable without editing the file:

* ``REPRO_ENGINE=native|numpy|stdlib`` picks the classification engine
  for every leg (the payload records which one ran);
* the closed loop adds a "batching + cache" configuration
  (``cache_size=4096``) next to the existing three, quantifying what
  the result cache adds on top of micro-batching for a recycled trace.

Results land in ``BENCH_serve_throughput.json`` at the repo root; with
``REPRO_OBS_SIDECAR=1`` an observed run writes
``benchmarks/results/serve_throughput.obs.json`` (including the
``serve.result_cache`` section of snapshot schema /5).

A fifth experiment, ``test_shard_scaling``, measures the multi-node
sharded topology (``repro.serve.shard``): framed closed-loop QPS
through the shard router + replica grid versus the single-node framed
batched path, over shard counts {1, 2, ``--shards``}.  Quick mode runs
one 2-shard x 2-replica topology, performs a cluster generation
handoff, then kills one replica per shard mid-run to prove fail-over.
Every topology is checked bit-identical to ``classify_batch`` over the
wire first.  Results land in ``BENCH_shard_scaling.json``; the >=
2.5x scaling bar is asserted only on hosts with enough cores to show
it (single-core CI records the numbers without gating).
"""

from __future__ import annotations

import asyncio
import json
import os
import random
import time
from pathlib import Path

from conftest import OBS_SIDECARS, emit, emit_json, emit_obs

from repro import config
from repro.analysis.reporting import format_qps, render_series, render_table
from repro.core.classifier import APClassifier
from repro.datasets import internet2_like, uniform_over_atoms
from repro.headerspace.fields import parse_ipv4
from repro.network.rules import ForwardingRule, Match
from repro.obs import Recorder
from repro.serve import (
    QueryService,
    QueryShed,
    ShardCluster,
    ShardRouter,
    proto,
    start_front_server,
    start_tcp_server,
)

RESULT_JSON = Path(__file__).parent.parent / "BENCH_serve_throughput.json"
SHARD_RESULT_JSON = Path(__file__).parent.parent / "BENCH_shard_scaling.json"

MIN_BATCHED_SPEEDUP = 3.0
CLIENTS = 512
#: Engine axis: every leg serves through this backend (None = default
#: preference ladder, i.e. native > numpy > stdlib as available).
ENGINE = config.engine()
CACHE_SIZE = 4096
SINGLE_REQUESTS = 4000
BATCHED_REQUESTS = 60_000
BEST_OF = 3
OPEN_LOOP_S = 0.3
BUCKET_S = 0.05


def fresh_classifier():
    return APClassifier.build(
        internet2_like(prefixes_per_router=14), strategy="oapt"
    )


def trace_headers(classifier, count=2000):
    return list(
        uniform_over_atoms(classifier.universe, count, random.Random(17)).headers
    )


async def closed_loop_qps(service, headers, clients, total_requests) -> float:
    """Total QPS of ``clients`` synchronous request loops."""
    per_client = total_requests // clients

    async def client(offset: int) -> None:
        for index in range(per_client):
            await service.classify(headers[(offset + index) % len(headers)])

    started = time.perf_counter()
    await asyncio.gather(*(client(i * 211) for i in range(clients)))
    return clients * per_client / (time.perf_counter() - started)


async def measure(
    classifier, headers, clients, total, max_batch, max_delay_s, cache_size=0
):
    """One warmed measurement on a fresh service; returns (qps, counters)."""
    async with QueryService(
        classifier,
        max_batch=max_batch,
        max_delay_s=max_delay_s,
        backend=ENGINE,
        cache_size=cache_size,
    ) as service:
        await closed_loop_qps(service, headers, clients, min(total, 5000))
        qps = await closed_loop_qps(service, headers, clients, total)
        return qps, service.counters


async def run_closed_loop(classifier, headers) -> dict:
    # The three configurations are measured interleaved, best-of-N, so a
    # machine-load swing hits all of them instead of skewing the ratio.
    single_qps = unbatched_qps = batched_qps = cached_qps = 0.0
    counters = cache_counters = None
    for _ in range(BEST_OF):
        # Single-query baseline: one caller at a time, configured for
        # single-caller latency (no coalescing window).
        qps, _ = await measure(classifier, headers, 1, SINGLE_REQUESTS, 1, 0)
        single_qps = max(single_qps, qps)
        # Batching off under concurrency: the same closed-loop clients,
        # but every request dispatched as its own singleton batch.
        qps, _ = await measure(
            classifier, headers, CLIENTS, BATCHED_REQUESTS, 1, 0
        )
        unbatched_qps = max(unbatched_qps, qps)
        # Batching on: the dispatcher coalesces whatever is queued,
        # waiting up to 200us for company after the first arrival.
        # max_batch equals the client cohort: a larger cap would leave
        # the dispatcher waiting out the window for requests that cannot
        # arrive (every client is already blocked).
        qps, run_counters = await measure(
            classifier, headers, CLIENTS, BATCHED_REQUESTS, CLIENTS, 0.0002
        )
        if qps > batched_qps:
            batched_qps, counters = qps, run_counters
        # Cache axis: same batched configuration plus the hot-header
        # result cache.  The closed loop recycles its trace, so after
        # one pass nearly every request is a synchronous hit.
        qps, run_counters = await measure(
            classifier,
            headers,
            CLIENTS,
            BATCHED_REQUESTS,
            CLIENTS,
            0.0002,
            cache_size=CACHE_SIZE,
        )
        if qps > cached_qps:
            cached_qps, cache_counters = qps, run_counters

    return {
        "clients": CLIENTS,
        "best_of": BEST_OF,
        "engine": ENGINE or "default",
        "single_qps": single_qps,
        "concurrent_unbatched_qps": unbatched_qps,
        "batched_qps": batched_qps,
        "batched_speedup": batched_qps / single_qps,
        "cache_size": CACHE_SIZE,
        "cached_qps": cached_qps,
        "cached_speedup": cached_qps / single_qps,
        "cache_hit_rate": (
            cache_counters.cache_hits
            / max(1, cache_counters.cache_hits + cache_counters.cache_misses)
        ),
        "mean_batch_size": (
            counters.batched_requests / counters.batches
            if counters.batches
            else 0.0
        ),
    }


async def run_open_loop(classifier, headers, offered_rate: float) -> dict:
    """Inject at ``offered_rate`` against a bounded queue, shed policy."""
    outcome = {"served": 0, "shed": 0, "timeout": 0}

    async def fire(header: int) -> None:
        try:
            await service.classify(header, timeout=1.0)
        except QueryShed:
            outcome["shed"] += 1
        except asyncio.TimeoutError:
            outcome["timeout"] += 1
        else:
            outcome["served"] += 1

    service = QueryService(
        classifier,
        max_batch=256,
        max_delay_s=0.0002,
        queue_limit=512,
        overflow="shed",
    )
    tasks: list[asyncio.Task] = []
    tick_s = 0.005
    per_tick = max(1, int(offered_rate * tick_s))
    async with service:
        loop = asyncio.get_running_loop()
        deadline = loop.time() + OPEN_LOOP_S
        index = 0
        while loop.time() < deadline:
            for _ in range(per_tick):
                tasks.append(
                    asyncio.ensure_future(fire(headers[index % len(headers)]))
                )
                index += 1
            await asyncio.sleep(tick_s)
        await asyncio.gather(*tasks)
        depth_max = service.counters.queue_depth_max

    offered = len(tasks)
    assert outcome["served"] + outcome["shed"] + outcome["timeout"] == offered
    assert depth_max <= 512
    return {
        "offered_rate_qps": offered_rate,
        "offered": offered,
        "queue_limit": 512,
        "queue_depth_max": depth_max,
        **outcome,
        "shed_fraction": outcome["shed"] / offered,
    }


async def run_degradation(classifier, headers) -> list[dict]:
    """Throughput timeline across fresh -> stale -> rebuild -> swapped.

    Runs with the result cache enabled so each bucket can record the
    hit rate: the two rule updates and the reconstruction swap all
    invalidate the cache, so the timeline shows the hit rate drop to
    zero at each churn event and climb back as the trace refills it --
    and a swap can never serve a pre-swap atom id.

    Each client replays the shared trace in its *own* shuffled order
    (independent clients over one hot set).  Lockstep walks of a shared
    sequence are pathological by construction: clients platoon behind
    one frontier position, every batch carries a handful of distinct
    headers, and the cache can only refill at platoons-per-batch no
    matter how fast the service is.  Requests that do collide within a
    batch window exercise the single-flight path and are counted.
    """
    state = {"done": 0, "stop": False, "phase": "fresh"}

    async def client(seed: int) -> None:
        order = random.Random(seed).sample(range(len(headers)), len(headers))
        index = 0
        while not state["stop"]:
            await service.classify(headers[order[index % len(order)]])
            state["done"] += 1
            index += 1

    async def controller() -> None:
        await asyncio.sleep(4 * BUCKET_S)
        # Two /24 drop exceptions: structural changes that stale the
        # compiled artifact and push queries onto the interpreted tree.
        for dotted in ("10.3.77.0", "10.9.13.0"):
            rule = ForwardingRule(
                Match.prefix("dst_ip", parse_ipv4(dotted), 24), (), 24
            )
            await service.insert_rule("SEAT", rule)
        state["phase"] = "stale-fallback"
        await asyncio.sleep(4 * BUCKET_S)
        state["phase"] = "reconstructing"
        await service.reconstruct()
        state["phase"] = "swapped"
        # One extra bucket vs the other phases: the first post-swap
        # bucket is spent refilling the invalidated cache.
        await asyncio.sleep(6 * BUCKET_S)
        state["stop"] = True

    samples: list[dict] = []

    async def sampler() -> None:
        last, clock = 0, 0.0
        last_hits = last_misses = last_coalesced = 0
        while not state["stop"]:
            await asyncio.sleep(BUCKET_S)
            clock += BUCKET_S
            done = state["done"]
            counters = service.counters
            hits, misses = counters.cache_hits, counters.cache_misses
            coalesced = counters.cache_coalesced
            lookups = (hits - last_hits) + (misses - last_misses)
            samples.append(
                {
                    "time_s": round(clock, 3),
                    "phase": state["phase"],
                    "throughput_qps": (done - last) / BUCKET_S,
                    "cache_hit_rate": (
                        (hits - last_hits) / lookups if lookups else 0.0
                    ),
                    "coalesced": coalesced - last_coalesced,
                }
            )
            last, last_hits, last_misses = done, hits, misses
            last_coalesced = coalesced

    service = QueryService(
        classifier,
        max_batch=CLIENTS,
        max_delay_s=0.0002,
        backend=ENGINE,
        cache_size=CACHE_SIZE,
    )
    async with service:
        clients = [
            asyncio.ensure_future(client(i * 211)) for i in range(CLIENTS)
        ]
        await asyncio.gather(controller(), sampler())
        await asyncio.gather(*clients)
    assert service.counters.swaps == 1
    # Every churn event retired the cached generation: two rule updates
    # plus the reconstruction swap.
    assert service.counters.cache_invalidations >= 3
    return samples


async def run_churn_storm(
    classifier, headers, maintenance: str, storm=None, recorder=None
) -> dict:
    """Degradation timeline for a churn *storm* under one maintenance mode.

    The counterpart to :func:`run_degradation`: the same client load and
    the same kind of structural churn, but a storm of it (a burst of
    /24 inserts followed by their withdrawals).  Run once per
    maintenance mode: under ``"tombstone"`` every update stales the
    compiled artifact and nothing un-stales it, so the storm pins the
    service in the degraded interpreted-fallback regime until a
    reconstruction; under ``"incremental"`` every update splices the
    tree and patches the compiled program in place, so the fast path
    never goes stale and no reconstruction is needed.  The result cache
    turns over its generation on every update in both modes (asserted
    via the invalidation counter), so a patched artifact can never
    serve a stale cached atom id.

    ``storm`` overrides the churn rules as ``(box, rule)`` pairs --
    inserted in order, then withdrawn in order.  The default is the
    legacy burst of drop /24s on SEAT (Internet2-shaped); the
    ``--scenario`` leg passes rules drawn from the scenario's own
    seeded update stream instead.
    """
    state = {"done": 0, "stop": False, "phase": "fresh"}
    if storm is None:
        storm = [
            (
                "SEAT",
                ForwardingRule(
                    Match.prefix(
                        "dst_ip", parse_ipv4(f"10.{octet}.77.0"), 24
                    ),
                    (),
                    24,
                ),
            )
            for octet in range(3, 11)
        ]
    fresh_after_update = []

    async def client(seed: int) -> None:
        order = random.Random(seed).sample(range(len(headers)), len(headers))
        index = 0
        while not state["stop"]:
            await service.classify(headers[order[index % len(order)]])
            state["done"] += 1
            index += 1

    async def controller() -> None:
        await asyncio.sleep(4 * BUCKET_S)
        state["phase"] = "storm"
        # Paced across sampler buckets so the storm phase actually spans
        # the timeline (patched updates are so fast that back-to-back
        # application would fit inside a single bucket).
        for index, (box, rule) in enumerate(storm):
            await service.insert_rule(box, rule)
            fresh_after_update.append(classifier.compiled_fresh)
            if index % 2 == 1:
                await asyncio.sleep(BUCKET_S)
        for index, (box, rule) in enumerate(storm):
            await service.remove_rule(box, rule)
            fresh_after_update.append(classifier.compiled_fresh)
            if index % 2 == 1:
                await asyncio.sleep(BUCKET_S)
        state["phase"] = "after"
        await asyncio.sleep(4 * BUCKET_S)
        state["stop"] = True

    samples: list[dict] = []

    async def sampler() -> None:
        last, clock = 0, 0.0
        while not state["stop"]:
            await asyncio.sleep(BUCKET_S)
            clock += BUCKET_S
            done = state["done"]
            samples.append(
                {
                    "time_s": round(clock, 3),
                    "phase": state["phase"],
                    "throughput_qps": (done - last) / BUCKET_S,
                    "compiled_fresh": classifier.compiled_fresh,
                }
            )
            last = done

    service = QueryService(
        classifier,
        max_batch=CLIENTS,
        max_delay_s=0.0002,
        backend=ENGINE,
        cache_size=CACHE_SIZE,
        maintenance=maintenance,
        recorder=recorder,
    )
    async with service:
        clients = [
            asyncio.ensure_future(client(i * 211)) for i in range(CLIENTS)
        ]
        await asyncio.gather(controller(), sampler())
        await asyncio.gather(*clients)
    engine = classifier._engine
    updates = 2 * len(storm)
    # No reconstruction ran in either mode, and every structural update
    # retired the cached generation.
    assert service.counters.swaps == 0
    assert service.counters.cache_invalidations >= updates
    return {
        "maintenance": maintenance,
        "timeline": samples,
        "updates": updates,
        "fresh_after_update": fresh_after_update,
        "patches": getattr(engine, "patches", 0),
        "splices": getattr(engine, "splices", 0),
        "merges": getattr(engine, "merges_applied", 0),
        "full_rebuilds": getattr(engine, "full_rebuilds", 0),
    }


def phase_means(samples: list[dict]) -> dict:
    totals: dict[str, list[float]] = {}
    for sample in samples:
        totals.setdefault(sample["phase"], []).append(sample["throughput_qps"])
    return {
        phase: sum(values) / len(values) for phase, values in totals.items()
    }


def test_serve_throughput():
    classifier = fresh_classifier()
    headers = trace_headers(classifier)

    closed = asyncio.run(run_closed_loop(classifier, headers))
    open_loop = asyncio.run(
        run_open_loop(classifier, headers, offered_rate=1.5 * closed["batched_qps"])
    )
    degradation = asyncio.run(run_degradation(classifier, headers))
    means = phase_means(degradation)
    # Own classifiers: the storm legs churn the data plane (and one runs
    # incremental maintenance), which must not contaminate the other legs.
    storms = {}
    for mode in ("tombstone", "incremental"):
        storm_classifier = fresh_classifier()
        storms[mode] = asyncio.run(
            run_churn_storm(storm_classifier, trace_headers(storm_classifier), mode)
        )
    storm = storms["incremental"]
    storm_means = phase_means(storm["timeline"])

    emit(
        "serve_closed_loop",
        render_table(
            f"Serving throughput (internet2-like, {CLIENTS} clients, "
            "closed loop)",
            ["configuration", "throughput", "vs single"],
            [
                ("single client", format_qps(closed["single_qps"]), "1.0x"),
                (
                    f"{CLIENTS} clients, batching off",
                    format_qps(closed["concurrent_unbatched_qps"]),
                    f"{closed['concurrent_unbatched_qps'] / closed['single_qps']:.2f}x",
                ),
                (
                    f"{CLIENTS} clients, batching on",
                    format_qps(closed["batched_qps"]),
                    f"{closed['batched_speedup']:.2f}x",
                ),
                (
                    f"{CLIENTS} clients, batching + cache {CACHE_SIZE}",
                    format_qps(closed["cached_qps"]),
                    f"{closed['cached_speedup']:.2f}x",
                ),
            ],
        ),
    )
    emit(
        "serve_degradation",
        render_series(
            "Serving during churn: stale fallback, live rebuild, swap "
            f"(cache {CACHE_SIZE})",
            "time",
            "throughput / cache hit rate",
            [
                (
                    f"{s['time_s']:.2f}s [{s['phase']}]",
                    f"{format_qps(s['throughput_qps'])} "
                    f"({s['cache_hit_rate'] * 100:.0f}% hit)",
                )
                for s in degradation
            ],
        ),
    )

    emit(
        "serve_churn_storm",
        "\n\n".join(
            render_series(
                f"Serving through a churn storm ({storms[mode]['updates']} "
                f"updates, {mode} maintenance)",
                "time",
                "throughput / compiled",
                [
                    (
                        f"{s['time_s']:.2f}s [{s['phase']}]",
                        f"{format_qps(s['throughput_qps'])} "
                        f"({'fresh' if s['compiled_fresh'] else 'STALE'})",
                    )
                    for s in storms[mode]["timeline"]
                ],
            )
            for mode in ("tombstone", "incremental")
        ),
    )

    # The tentpole's acceptance bar.
    assert closed["batched_speedup"] >= MIN_BATCHED_SPEEDUP, (
        f"micro-batching gained only {closed['batched_speedup']:.2f}x "
        f"(bar: {MIN_BATCHED_SPEEDUP}x)"
    )
    # Saturated open-loop load sheds instead of queueing without bound.
    assert open_loop["shed"] > 0
    assert open_loop["served"] > 0
    # The service kept answering in every phase and recovered after the
    # swap (recompiled artifact; generous 0.3x floor keeps CI noise out).
    assert all(means[phase] > 0 for phase in means)
    assert means["swapped"] > 0.3 * means["fresh"]
    # The churn-storm contrast: under tombstone maintenance the first
    # update stales the compiled artifact and the service stays pinned in
    # the degraded interpreted-fallback regime through and *after* the
    # storm (nothing short of a reconstruction un-stales it).  Under
    # incremental maintenance every update patches the compiled program
    # in place, so the fast path never goes stale and the service exits
    # the storm already recovered -- no reconstruction, no rebuilds.
    tombstone_storm = storms["tombstone"]
    assert not any(tombstone_storm["fresh_after_update"])
    assert not any(
        s["compiled_fresh"]
        for s in tombstone_storm["timeline"]
        if s["phase"] in ("storm", "after")
    )
    assert all(storm["fresh_after_update"])
    assert all(s["compiled_fresh"] for s in storm["timeline"])
    assert storm["full_rebuilds"] == 0
    assert storm["patches"] > 0
    # Throughput floors: the service keeps answering through the storm
    # (each update intentionally retires the cache generation, so storm
    # buckets run without the ~100%-hit-rate boost the fresh phase
    # enjoys), and recovers the cache-hot floor immediately after --
    # without the reconstruction the tombstone path would need.
    assert all(storm_means[phase] > 0 for phase in storm_means)
    assert storm_means["after"] > 0.3 * storm_means["fresh"]
    # The cache axis earned its keep on the recycled trace, and the
    # post-swap phase shows the cache refilling (hits after the swap can
    # only come from post-swap classifications: generation keying).
    assert closed["cached_qps"] > closed["batched_qps"]
    assert closed["cache_hit_rate"] > 0.9
    swapped = [s for s in degradation if s["phase"] == "swapped"]
    assert any(s["cache_hit_rate"] > 0 for s in swapped)

    stats = classifier.stats()
    payload = {
        "dataset": "internet2-like",
        "engine": ENGINE or "default",
        "predicates": stats.predicates,
        "atoms": stats.atoms,
        "closed_loop": closed,
        "open_loop": open_loop,
        "degradation_timeline": degradation,
        "degradation_phase_means_qps": means,
        "churn_storm": {
            mode: {
                **storms[mode],
                "phase_means_qps": phase_means(storms[mode]["timeline"]),
            }
            for mode in storms
        },
        "min_batched_speedup_required": MIN_BATCHED_SPEEDUP,
    }
    RESULT_JSON.write_text(json.dumps(payload, indent=2, allow_nan=False) + "\n")

    if OBS_SIDECARS:
        # One extra observed run outside the measured sections: the
        # recorder's serve section mirrors what this bench measured.
        recorder = Recorder()
        observed = fresh_classifier()
        observed.set_recorder(recorder)
        observed_headers = trace_headers(observed, count=500)

        async def observed_run() -> None:
            async with QueryService(
                observed,
                max_batch=CLIENTS,
                max_delay_s=0.0002,
                backend=ENGINE,
                cache_size=CACHE_SIZE,
                recorder=recorder,
            ) as service:
                await closed_loop_qps(service, observed_headers, CLIENTS, 5120)
                await service.reconstruct()
                await closed_loop_qps(service, observed_headers, CLIENTS, 5120)

        asyncio.run(observed_run())
        emit_obs("serve_throughput", recorder)


def test_churn_storm_scenario(scenario_dataset, quick):
    """Churn storm on the ``--scenario`` workload, incremental mode only.

    The storm rules come from the scenario's own seeded update stream
    (all inserts, so the withdraw half of the storm removes exactly what
    the insert half added), the client trace from its canonical packet
    trace.  The whole serve run is observed: the sidecar must show the
    incremental engine patching in place -- zero full rebuilds, zero
    stale-fallback queries -- with the scenario tag identifying the
    workload.
    """
    ds = scenario_dataset
    scenario = ds.scenario
    classifier = APClassifier.build(ds.network, strategy="oapt")
    headers = list(
        scenario.trace(classifier.universe, 500 if quick else 2000).headers
    )
    storm = [
        (update.box, update.rule)
        for update in scenario.update_stream(
            count=4 if quick else 8, insert_fraction=1.0
        )
    ]

    recorder = Recorder()
    recorder.set_scenario(scenario)
    with recorder.observe(classifier):
        result = asyncio.run(
            run_churn_storm(
                classifier,
                headers,
                "incremental",
                storm=storm,
                recorder=recorder,
            )
        )
    means = phase_means(result["timeline"])

    emit(
        f"serve_churn_{scenario.name}",
        render_series(
            f"Serving {scenario.name} through a churn storm "
            f"({result['updates']} updates, incremental maintenance)",
            "time",
            "throughput / compiled",
            [
                (
                    f"{s['time_s']:.2f}s [{s['phase']}]",
                    f"{format_qps(s['throughput_qps'])} "
                    f"({'fresh' if s['compiled_fresh'] else 'STALE'})",
                )
                for s in result["timeline"]
            ],
        ),
    )

    # The acceptance bar: the compiled artifact never went stale under
    # the scenario's own churn, and the instrumented run agrees -- every
    # update was patched in place, none fell back or forced a rebuild.
    assert all(result["fresh_after_update"])
    assert all(s["compiled_fresh"] for s in result["timeline"])
    assert result["patches"] > 0
    assert result["full_rebuilds"] == 0
    assert all(means[phase] > 0 for phase in means)

    snapshot = recorder.snapshot()
    assert snapshot["scenario"]["name"] == scenario.name
    assert snapshot["updates"]["incremental"]["patches"] > 0
    assert snapshot["updates"]["incremental"]["full_rebuilds"] == 0
    assert snapshot["updates"]["stale_fallbacks"]["total"] == 0

    emit_json(
        f"serve_churn_{scenario.name}",
        {
            "scenario": scenario.name,
            "params": dict(scenario.params),
            "seed": scenario.seed,
            "engine": ENGINE or "default",
            "maintenance": "incremental",
            "quick": quick,
            **{k: v for k, v in result.items() if k != "maintenance"},
            "phase_means_qps": means,
        },
    )
    emit_obs(f"serve_churn_{scenario.name}", recorder)


# ----------------------------------------------------------------------
# Multi-shard scaling (the sharded-serving tentpole's headline number)
# ----------------------------------------------------------------------

#: Required committed closed-loop QPS gain of the ``--shards`` topology
#: over the single-node framed batched path.  Shard scaling needs real
#: parallel hardware: the replicas are separate processes, so on a
#: single-core host they time-slice one core and the bar is
#: unreachable by construction.  The assertion therefore applies only
#: when the host has at least as many cores as shards (mirroring
#: bench_warm_start); the measured numbers are always recorded.
MIN_SHARD_SPEEDUP = 2.5


async def framed_closed_loop(host, port, headers, *, connections, frames, batch):
    """Committed QPS of ``connections`` synchronous framed clients.

    Each client keeps exactly one CLASSIFY frame of ``batch`` headers
    outstanding (closed loop) and commits a frame only after decoding a
    well-formed RESULT of the right length -- the counted number is
    end-to-end answered work, not offered load.
    """
    per_conn = max(1, frames // connections)

    async def client(cid: int) -> int:
        reader, writer = await asyncio.open_connection(host, port)
        committed = 0
        try:
            for index in range(per_conn):
                start = (cid * 977 + index * batch) % len(headers)
                chunk = [
                    headers[(start + j) % len(headers)] for j in range(batch)
                ]
                writer.write(
                    proto.pack_frame(
                        proto.CLASSIFY, proto.encode_classify(chunk)
                    )
                )
                await writer.drain()
                ftype, payload = await proto.read_frame(reader)
                assert ftype == proto.RESULT, f"unexpected frame 0x{ftype:02x}"
                assert len(proto.decode_result(payload)) == batch
                committed += batch
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        return committed

    started = time.perf_counter()
    served = sum(
        await asyncio.gather(*(client(c) for c in range(connections)))
    )
    return served / (time.perf_counter() - started), served


async def wire_bit_identity(host, port, headers, expected) -> None:
    """One CLASSIFY frame of the whole trace must match classify_batch."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(
            proto.pack_frame(proto.CLASSIFY, proto.encode_classify(headers))
        )
        await writer.drain()
        ftype, payload = await proto.read_frame(reader)
        assert ftype == proto.RESULT
        atoms = [int(a) for a in proto.decode_result(payload)]
        assert atoms == [int(a) for a in expected]
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def run_single_node_framed(
    classifier, headers, expected, *, connections, frames, batch
) -> dict:
    """Single-node baseline: framed protocol into one batching service."""
    async with QueryService(
        classifier, max_batch=CLIENTS, max_delay_s=0.0002, backend=ENGINE
    ) as service:
        server = await start_tcp_server(service)
        port = server.sockets[0].getsockname()[1]
        await wire_bit_identity("127.0.0.1", port, headers, expected)
        await framed_closed_loop(  # warm-up
            "127.0.0.1", port, headers,
            connections=connections,
            frames=max(connections, frames // 4),
            batch=batch,
        )
        qps, served = await framed_closed_loop(
            "127.0.0.1", port, headers,
            connections=connections, frames=frames, batch=batch,
        )
        server.close()
        await server.wait_closed()
    return {"qps": qps, "served": served}


async def run_shard_topology(
    cluster, classifier, headers, expected,
    *, connections, frames, batch, exercise_failover=False,
) -> dict:
    """Measure one started cluster through its front router.

    With ``exercise_failover`` the leg first publishes a fresh
    generation (full ack'd handoff -- prepare needs every replica
    alive, so this must precede the kill), then hard-kills replica 0 of
    every shard and keeps serving: the measured traffic must complete
    entirely through fail-over to the surviving replicas.
    """
    router = ShardRouter.from_cluster(cluster)
    server = await start_front_server(router)
    port = server.sockets[0].getsockname()[1]
    try:
        await wire_bit_identity("127.0.0.1", port, headers, expected)
        await framed_closed_loop(  # warm-up
            "127.0.0.1", port, headers,
            connections=connections,
            frames=max(connections, frames // 4),
            batch=batch,
        )
        if exercise_failover:
            generation = await cluster.publish_async(classifier, router)
            assert router.generation == generation
            for shard in range(cluster.shards):
                cluster.kill_replica(shard, 0)
        qps, served = await framed_closed_loop(
            "127.0.0.1", port, headers,
            connections=connections, frames=frames, batch=batch,
        )
        if exercise_failover:
            # Post-kill traffic still answers bit-identically.
            await wire_bit_identity("127.0.0.1", port, headers, expected)
    finally:
        server.close()
        await server.wait_closed()
        await router.close()
    return {
        "qps": qps,
        "served": served,
        "failovers": router.counters.shard_failovers,
        "handoffs": router.counters.shard_handoffs,
        "routed": dict(router.counters.shard_routed),
    }


def test_shard_scaling(quick, shards):
    classifier = fresh_classifier()
    headers = trace_headers(classifier)
    expected = classifier.classify_batch(headers)
    cpu_count = os.cpu_count() or 1
    recorder = Recorder()

    if quick:
        topologies = [(2, 2)]
        connections, frames, batch = 8, 32, 64
    else:
        topologies = [(s, 1) for s in sorted({1, 2, max(2, shards)})]
        connections, frames, batch = 64, 256, 256

    single = asyncio.run(
        run_single_node_framed(
            classifier, headers, expected,
            connections=connections, frames=frames, batch=batch,
        )
    )

    runs = []
    for n_shards, n_replicas in topologies:
        cluster = ShardCluster(
            classifier,
            shards=n_shards,
            replicas=n_replicas,
            backend=ENGINE,
            recorder=recorder,
        )
        cluster.start()
        try:
            result = asyncio.run(
                run_shard_topology(
                    cluster, classifier, headers, expected,
                    connections=connections, frames=frames, batch=batch,
                    exercise_failover=quick and n_replicas > 1,
                )
            )
        finally:
            cluster.stop()
        result.update(
            shards=cluster.shards,
            replicas=n_replicas,
            speedup=result["qps"] / single["qps"],
        )
        runs.append(result)

    emit(
        "serve_shard_scaling",
        render_table(
            "Sharded serving: committed closed-loop QPS "
            f"({connections} framed clients, batch {batch}, "
            f"{cpu_count} cores)",
            ["topology", "throughput", "vs single node"],
            [("single node (framed, batched)", format_qps(single["qps"]), "1.00x")]
            + [
                (
                    f"{r['shards']} shards x {r['replicas']} replicas",
                    format_qps(r["qps"]),
                    f"{r['speedup']:.2f}x",
                )
                for r in runs
            ],
        ),
    )

    # Every topology answered bit-identically (checked over the wire
    # inside each run) and committed every offered frame.
    per_measurement = max(1, frames // connections) * connections * batch
    assert single["served"] == per_measurement
    for run in runs:
        assert run["served"] == per_measurement
        assert run["qps"] > 0
    # Traffic genuinely spread: the atom-uniform trace must touch every
    # shard of the top topology (uniform-random headers would all land
    # in the miss-everything frontier and serialize on shard 0).
    top = runs[-1]
    assert len(top["routed"]) == top["shards"]
    if quick:
        # The quick leg is the CI fault-injection smoke: one full
        # generation handoff, then every shard lost a replica mid-run
        # and the router failed over without a single lost frame.
        assert top["handoffs"] >= 1
        assert top["failovers"] > 0
    # The scaling bar itself needs cores for the replicas to run on.
    top_speedup = top["speedup"]
    gate_applied = not quick and cpu_count >= max(4, top["shards"])
    if gate_applied:
        assert top_speedup >= MIN_SHARD_SPEEDUP, (
            f"{top['shards']}-shard topology gained only "
            f"{top_speedup:.2f}x (bar: {MIN_SHARD_SPEEDUP}x)"
        )

    stats = classifier.stats()
    payload = {
        "dataset": "internet2-like",
        "engine": ENGINE or "default",
        "cpu_count": cpu_count,
        "quick": quick,
        "predicates": stats.predicates,
        "atoms": stats.atoms,
        "connections": connections,
        "frames": frames,
        "batch": batch,
        "single_node": single,
        "topologies": [
            {
                **run,
                "routed": {str(k): v for k, v in run["routed"].items()},
            }
            for run in runs
        ],
        "min_shard_speedup_required": MIN_SHARD_SPEEDUP,
        "speedup_gate_applied": gate_applied,
    }
    SHARD_RESULT_JSON.write_text(
        json.dumps(payload, indent=2, allow_nan=False) + "\n"
    )

    if OBS_SIDECARS:
        emit_obs("shard_scaling", recorder)
