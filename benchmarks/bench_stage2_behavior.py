"""Section IV-B: stage-2 (behavior computation) throughput.

The paper measures >15 M paths/s (Internet2) and >10 M (Stanford) for
computing forwarding paths from an already-known atomic predicate -- much
faster than stage 1, which is why the AP Tree is the optimization target.
The shape to reproduce: stage 2 alone is several times faster than the
full two-stage query.

The ``engine`` axis runs stage 1 through the compiled artifact
(``classifier.compile()`` + ``classify_batch``), which narrows the gap
between the full pipeline and stage 2 alone -- exactly the point of the
compiled engine: stage 1 stops being the dominant cost.
"""

from __future__ import annotations

import random
import time

import pytest
from conftest import OBS_SIDECARS, emit, emit_obs

from repro.analysis.reporting import format_qps, render_table
from repro.obs import Recorder


@pytest.mark.parametrize("engine", ["interpreted", "compiled"])
@pytest.mark.parametrize("which", ["i2", "stan"])
def test_stage2_throughput(which, engine, i2, stan, benchmark):
    ds = i2 if which == "i2" else stan
    rng = random.Random(21)
    boxes = sorted(ds.network.boxes)
    queries = [
        (atom_id, rng.choice(boxes))
        for atom_id in ds.trace.atom_ids[:1000]
    ]

    computer = ds.classifier.behavior_computer
    started = time.perf_counter()
    for atom_id, ingress in queries:
        computer.compute(atom_id, ingress)
    stage2_qps = len(queries) / (time.perf_counter() - started)

    headers = ds.headers[:1000]
    ingresses = [b for _, b in queries]
    if engine == "compiled":
        # Batch stage 1 through the flat-array artifact, then walk
        # stage 2 per atom; compile cost is one-time and excluded, as for
        # the tree build itself.
        ds.classifier.compile()
        try:
            started = time.perf_counter()
            atom_ids = ds.classifier.classify_batch(headers)
            for atom_id, ingress in zip(atom_ids, ingresses):
                computer.compute(atom_id, ingress)
            full_qps = len(headers) / (time.perf_counter() - started)
        finally:
            # The dataset fixture is session-scoped: drop the artifact so
            # interpreted-axis benches keep measuring the interpreted path.
            ds.classifier._compiled = None
    else:
        both = list(zip(headers, ingresses))
        started = time.perf_counter()
        for header, ingress in both:
            ds.classifier.query(header, ingress)
        full_qps = len(both) / (time.perf_counter() - started)

    emit(
        f"stage2_{ds.name}_{engine}",
        render_table(
            f"Section IV-B ({ds.name}, {engine} engine): "
            "stage-2-only vs full query throughput",
            ["pipeline", "throughput"],
            [
                ("stage 2 only (atom -> paths)", format_qps(stage2_qps)),
                ("stage 1 + stage 2 (packet -> paths)", format_qps(full_qps)),
            ],
        ),
    )
    # Stage 2 must not be the bottleneck; with compiled stage 1 the full
    # pipeline approaches the stage-2-only rate (strictly more work, but
    # the stage-1 share shrinks to a sliver -- leave room for timing
    # noise between the two separately-timed loops).
    if engine == "interpreted":
        assert stage2_qps > full_qps
    else:
        assert stage2_qps > full_qps * 0.9

    if OBS_SIDECARS:
        # Replay the stage-1 batch under observation after the timed
        # sections; observe() detaches on exit, so the session-scoped
        # classifier fixture is returned uninstrumented.
        recorder = Recorder()
        with recorder.observe(ds.classifier):
            ds.classifier.classify_batch(headers)
        emit_obs(f"stage2_{ds.name}_{engine}", recorder)

    atom_id, ingress = queries[0]
    benchmark(lambda: computer.compute(atom_id, ingress))
