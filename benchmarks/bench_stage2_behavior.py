"""Section IV-B: stage-2 (behavior computation) throughput.

The paper measures >15 M paths/s (Internet2) and >10 M (Stanford) for
computing forwarding paths from an already-known atomic predicate -- much
faster than stage 1, which is why the AP Tree is the optimization target.
The shape to reproduce: stage 2 alone is several times faster than the
full two-stage query.
"""

from __future__ import annotations

import random
import time

import pytest
from conftest import emit

from repro.analysis.reporting import format_qps, render_table


@pytest.mark.parametrize("which", ["i2", "stan"])
def test_stage2_throughput(which, i2, stan, benchmark):
    ds = i2 if which == "i2" else stan
    rng = random.Random(21)
    boxes = sorted(ds.network.boxes)
    queries = [
        (atom_id, rng.choice(boxes))
        for atom_id in ds.trace.atom_ids[:1000]
    ]

    computer = ds.classifier.behavior_computer
    started = time.perf_counter()
    for atom_id, ingress in queries:
        computer.compute(atom_id, ingress)
    stage2_qps = len(queries) / (time.perf_counter() - started)

    both = list(zip(ds.headers[:1000], (b for _, b in queries)))
    started = time.perf_counter()
    for header, ingress in both:
        ds.classifier.query(header, ingress)
    full_qps = len(both) / (time.perf_counter() - started)

    emit(
        f"stage2_{ds.name}",
        render_table(
            f"Section IV-B ({ds.name}): stage-2-only vs full query throughput",
            ["pipeline", "throughput"],
            [
                ("stage 2 only (atom -> paths)", format_qps(stage2_qps)),
                ("stage 1 + stage 2 (packet -> paths)", format_qps(full_qps)),
            ],
        ),
    )
    # Stage 2 must not be the bottleneck.
    assert stage2_qps > full_qps

    atom_id, ingress = queries[0]
    benchmark(lambda: computer.compute(atom_id, ingress))
