"""Table I: statistics of the two networks, plus §VII-B memory usage.

Paper values (full-scale datasets):
    Internet2: 9 boxes, 126,017 rules, 0 ACLs, 161 predicates
    Stanford:  16 boxes, 757,170 rules, 1,584 ACLs, 507 predicates
    Memory: 4.79 MB (Internet2), 2.15 MB (Stanford)

Our synthetic stand-ins run at reduced rule counts but land in the same
predicate regime; the benchmark measures the cost of computing the atomic
predicates (the dominant build phase).
"""

from __future__ import annotations

from conftest import emit

from repro.analysis.reporting import render_table
from repro.core.atomic import AtomicUniverse


def test_table1_network_statistics(datasets, benchmark):
    rows = []
    for ds in datasets:
        net_stats = ds.network.stats()
        clf_stats = ds.classifier.stats()
        rows.append(
            (
                ds.name,
                net_stats["boxes"],
                net_stats["forwarding_rules"],
                net_stats["acl_rules"],
                clf_stats.predicates,
                clf_stats.atoms,
                f"{clf_stats.estimated_bytes / 1e6:.2f} MB",
            )
        )
    emit(
        "table1_stats",
        render_table(
            "Table I: statistics of the two (synthetic stand-in) networks",
            ["network", "boxes", "fwd rules", "ACL rules", "predicates",
             "atomic predicates", "est. memory"],
            rows,
        ),
    )
    # Sanity: predicates compress rules by orders of magnitude, and atoms
    # stay far below 2^k -- the paper's enabling observations.
    for ds in datasets:
        assert ds.universe.predicate_count < ds.network.rule_count()
        assert ds.universe.atom_count < 2 ** min(ds.universe.predicate_count, 24)

    ds = datasets[0]
    benchmark(
        lambda: AtomicUniverse.compute(ds.dataplane.manager, ds.dataplane.predicates())
    )
