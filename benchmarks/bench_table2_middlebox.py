"""Table II: behavior-computation throughput with header-changing
middleboxes.

Paper setup: 1-3 switches host middleboxes whose 10-entry flow tables
partition the atomic predicates; the *deterministic ratio* is the fraction
of entries with precomputed post-rewrite atomic predicates (Type 1).
Paper shape: throughput at ratio 0.9 barely degrades with more
middleboxes; ratios 0.5 and 0.0 cost progressively more because packets
need AP Tree re-searches; worst case stays millions/s (C/Java scale).
"""

from __future__ import annotations

import random
import time

import pytest
from conftest import emit

from repro.analysis.reporting import format_qps, render_table
from repro.core.middlebox import MiddleboxAwareComputer
from repro.datasets import make_middlebox

QUERIES = 150


def middlebox_throughput(ds, count: int, ratio: float, seed: int) -> float:
    rng = random.Random(seed)
    boxes = sorted(ds.network.boxes)
    chosen = rng.sample(boxes, count)
    middleboxes = {
        box: make_middlebox(
            f"MB_{box}", ds.universe, rng, deterministic_ratio=ratio,
            probabilistic_fraction=0.3,
        )
        for box in chosen
    }
    computer = MiddleboxAwareComputer(ds.classifier, middleboxes)
    headers = ds.headers[:QUERIES]
    ingresses = [rng.choice(boxes) for _ in headers]
    started = time.perf_counter()
    for header, ingress in zip(headers, ingresses):
        computer.query(header, ingress)
    elapsed = time.perf_counter() - started
    return len(headers) / elapsed


@pytest.mark.parametrize("ratio", [0.9, 0.5, 0.0])
def test_table2_middlebox_throughput(ratio, i2, benchmark):
    ds = i2
    rows = []
    rates = {}
    for count in (1, 2, 3):
        qps = middlebox_throughput(ds, count, ratio, seed=20 + count)
        rates[count] = qps
        rows.append((f"{count} middlebox(es)", format_qps(qps)))
    emit(
        f"table2_ratio{ratio:.1f}".replace(".", "_"),
        render_table(
            f"Table II ({ds.name}): throughput with header changes, "
            f"deterministic ratio = {ratio}",
            ["middleboxes", "throughput"],
            rows,
        ),
    )
    # Throughput stays usable even in the worst configuration.
    assert min(rates.values()) > 0

    benchmark.pedantic(
        lambda: middlebox_throughput(ds, 1, ratio, seed=30),
        rounds=1,
        iterations=1,
    )


def test_table2_ratio_effect(i2, benchmark):
    """Lower deterministic ratio -> more AP Tree re-searches -> lower
    throughput (comparing ratio 0.9 vs 0.0 at fixed middlebox count)."""
    ds = i2
    fast = middlebox_throughput(ds, 2, 0.9, seed=40)
    slow = middlebox_throughput(ds, 2, 0.0, seed=40)
    emit(
        "table2_ratio_effect",
        render_table(
            "Table II: deterministic-ratio effect (2 middleboxes)",
            ["deterministic ratio", "throughput"],
            [("0.9", format_qps(fast)), ("0.0", format_qps(slow))],
        ),
    )
    assert fast > slow * 0.8  # the gap is modest but never inverted badly
    benchmark.pedantic(
        lambda: middlebox_throughput(ds, 2, 0.9, seed=41), rounds=1, iterations=1
    )
