"""Update-verification throughput: the Section I requirement quantified.

"SDNs should support hundreds of data plane updates per second and each
update may need to query multiple flows to verify correctness. Hence a
desired throughput should exceed one million packet queries per second."

This bench measures the composite operation the controller actually runs
per update: apply the rule, identify the affected packet classes
(``atoms_matching``), re-query each from a representative ingress, and
(for half the updates) roll the rule back. Reported as verified updates
per second alongside the raw queries per second those verifications
consumed.
"""

from __future__ import annotations

import random
import time

from conftest import emit

from repro.analysis.reporting import format_qps, render_table
from repro.core.classifier import APClassifier
from repro.datasets import internet2_like, rule_update_stream

UPDATES = 40


def test_update_verification_loop(i2, benchmark):
    # A private classifier: this bench mutates state.
    network = internet2_like(prefixes_per_router=14)
    classifier = APClassifier.build(network)
    rng = random.Random(22)
    stream = rule_update_stream(network, UPDATES, rng, insert_fraction=0.7)
    boxes = sorted(network.boxes)

    queries = 0
    started = time.perf_counter()
    for update in stream:
        if update.kind == "insert":
            classifier.insert_rule(update.box, update.rule)
        else:
            classifier.remove_rule(update.box, update.rule)
        affected = classifier.atoms_matching(update.rule.match)
        ingress = rng.choice(boxes)
        for atom_id in affected:
            classifier.behavior_of_atom(atom_id, ingress)
            queries += 1
    elapsed = time.perf_counter() - started

    updates_per_s = len(stream) / elapsed
    emit(
        "update_verification",
        render_table(
            "Update verification loop (apply + affected-flow re-query)",
            ["metric", "value"],
            [
                ("updates applied", len(stream)),
                ("affected-class queries", queries),
                ("verified updates/s", f"{updates_per_s:,.0f}"),
                ("verification queries/s", format_qps(queries / elapsed)),
                ("avg classes per update", f"{queries / len(stream):.1f}"),
            ],
        ),
    )
    # The paper's bar is hundreds of verified updates per second on a
    # desktop C/Java stack; pure Python under a loaded bench session
    # lands near that bar (typically 100-150/s). Assert the order of
    # magnitude, not the exact figure.
    assert updates_per_s > 30

    one = stream[0]
    benchmark.pedantic(
        lambda: classifier.atoms_matching(one.rule.match), rounds=10, iterations=1
    )
