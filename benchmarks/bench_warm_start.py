"""Warm start: binary artifact loads versus the offline build (Fig. 11).

The offline stage dominates bring-up (Fig. 11) while the query
structures are tiny (Section VII-B) -- so a restart should *load* the
compiled classifier, not recompute it.  This bench pins that promise on
the stanford-like dataset:

* **Cold build** -- ``APClassifier.build`` from the network, the Fig. 11
  cost a restart would otherwise pay.
* **JSON snapshot load** -- the legacy warm restart (rebuilds BDDs from
  serialized nodes).
* **Artifact load** -- full updatable restore from the binary container
  via ``mmap``.
* **Serving-only load** -- :func:`repro.artifact.load_serving`, mapping
  just the compiled arrays: the milliseconds standby path.

Acceptance bars: the artifact load must be >= 10x faster than the cold
build and classify the bench trace *bit-identically*; the serving-only
load must beat the full load.  A second leg measures closed-loop TCP
throughput of the multi-worker pool (1 vs 4 workers); its speedup
assertion only applies on multi-core hosts, but the numbers and the
host's CPU count are always recorded.

Results land in ``BENCH_warm_start.json`` at the repo root; with
``REPRO_OBS_SIDECAR=1`` the run writes
``benchmarks/results/warm_start.obs.json``.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from conftest import OBS_SIDECARS, emit, emit_obs

from repro import persist
from repro.analysis.reporting import render_table
from repro.artifact import load_serving
from repro.core.classifier import APClassifier
from repro.obs import Recorder
from repro.serve import ServeWorkerPool, closed_loop_qps

RESULT_JSON = Path(__file__).parent.parent / "BENCH_warm_start.json"

MIN_ARTIFACT_SPEEDUP = 10.0
POOL_WORKERS = (1, 4)
POOL_CONNECTIONS = 8
POOL_DURATION_S = 1.0


def _timed(fn):
    started = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - started


def test_warm_start(stan, tmp_path):
    recorder = Recorder()
    headers = list(stan.headers)

    # Cold build: a fresh classifier from the same network -- the cost a
    # restart pays without persistence.
    cold, cold_s = _timed(lambda: APClassifier.build(stan.network, strategy="oapt"))
    expected = cold.classify_batch(headers)

    artifact_path = tmp_path / "stan.apc"
    json_path = tmp_path / "stan.json"
    _, artifact_save_s = _timed(
        lambda: persist.save(cold, artifact_path, recorder=recorder)
    )
    _, json_save_s = _timed(
        lambda: persist.save(cold, json_path, format="json", recorder=recorder)
    )

    restored_json, json_load_s = _timed(
        lambda: persist.load(json_path, recorder=recorder)
    )
    restored, artifact_load_s = _timed(
        lambda: persist.load(artifact_path, use_mmap=True, recorder=recorder)
    )
    engine, serving_load_s = _timed(
        lambda: load_serving(artifact_path, use_mmap=True, recorder=recorder)
    )

    # Bit-identical classification on every load path.
    assert restored.classify_batch(headers) == expected
    assert restored_json.classify_batch(headers) == expected
    assert list(engine.classify_batch(headers)) == expected

    artifact_speedup = cold_s / artifact_load_s
    rows = [
        ("cold build", f"{cold_s * 1000:.1f} ms"),
        ("JSON snapshot load", f"{json_load_s * 1000:.1f} ms"),
        ("artifact load (mmap)", f"{artifact_load_s * 1000:.1f} ms"),
        ("serving-only load", f"{serving_load_s * 1000:.1f} ms"),
        ("artifact speedup vs build", f"{artifact_speedup:.1f}x"),
        ("artifact size", f"{artifact_path.stat().st_size} bytes"),
    ]
    emit(
        "warm_start",
        render_table(
            "Warm start (stanford-like): load vs rebuild",
            ["path", "value"],
            rows,
        ),
    )

    assert artifact_speedup >= MIN_ARTIFACT_SPEEDUP, (
        f"artifact load must be >= {MIN_ARTIFACT_SPEEDUP}x faster than the "
        f"cold build, got {artifact_speedup:.1f}x"
    )
    assert serving_load_s < artifact_load_s

    # Multi-worker serving: closed-loop TCP throughput, 1 vs 4 workers
    # mapping the same shared-memory artifact.
    cpu_count = os.cpu_count() or 1
    pool_stats = {}
    for workers in POOL_WORKERS:
        with ServeWorkerPool(cold, workers=workers, recorder=recorder) as pool:
            stats = closed_loop_qps(
                "127.0.0.1",
                pool.port,
                headers,
                connections=POOL_CONNECTIONS,
                duration_s=POOL_DURATION_S,
            )
        pool_stats[workers] = stats
    worker_speedup = pool_stats[4]["qps"] / pool_stats[1]["qps"]
    emit(
        "warm_start_workers",
        render_table(
            f"Multi-worker serving ({cpu_count} CPU(s), "
            f"{POOL_CONNECTIONS} connections)",
            ["workers", "qps"],
            [(w, f"{pool_stats[w]['qps']:.0f}") for w in POOL_WORKERS],
        ),
    )
    # Worker processes only help with cores to run on; the assertion is
    # gated so a single-core host records the numbers without failing.
    if cpu_count >= 4:
        assert worker_speedup > 1.0, (
            f"4 workers should out-serve 1 on {cpu_count} CPUs, "
            f"got {worker_speedup:.2f}x"
        )

    payload = {
        "dataset": stan.name,
        "trace_len": len(headers),
        "cold_build_s": cold_s,
        "artifact_save_s": artifact_save_s,
        "json_save_s": json_save_s,
        "json_load_s": json_load_s,
        "artifact_load_s": artifact_load_s,
        "serving_load_s": serving_load_s,
        "artifact_speedup_vs_build": artifact_speedup,
        "min_artifact_speedup": MIN_ARTIFACT_SPEEDUP,
        "artifact_bytes": artifact_path.stat().st_size,
        "json_bytes": json_path.stat().st_size,
        "bit_identical": True,
        "cpu_count": cpu_count,
        "pool_connections": POOL_CONNECTIONS,
        "pool_duration_s": POOL_DURATION_S,
        "pool_qps": {str(w): pool_stats[w]["qps"] for w in POOL_WORKERS},
        "pool_speedup_4_vs_1": worker_speedup,
    }
    RESULT_JSON.write_text(json.dumps(payload, indent=2, allow_nan=False) + "\n")

    if OBS_SIDECARS:
        emit_obs("warm_start", recorder)
