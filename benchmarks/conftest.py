"""Shared fixtures for the evaluation benchmarks.

Two bench-scale datasets are built once per session:

* ``i2`` -- Internet2-like at 14 prefixes/router: 159 predicates (paper:
  161), ~136 atoms, OAPT depth ~11 (paper: 10.6);
* ``stan`` -- Stanford-like at 16 subnets x 8 ports/zone: ~210 predicates
  (paper: 507 at full scale), ~2000 atoms, OAPT depth ~15 (paper: 16.8).

Both are resolved through the scenario registry
(:func:`repro.datasets.get_scenario`), as is the ``--scenario`` knob:
pass ``--scenario name[:key=val,...]`` to point any scenario-aware bench
(e.g. the serve churn-storm leg) at any registered workload. The i2/stan
parameter choices and their ``random.Random(17)`` trace are kept
bit-identical to the pre-registry fixtures so published BENCH JSON stays
comparable.

Every bench prints its table/series through :func:`emit`, which also
writes ``benchmarks/results/<name>.txt`` so results survive pytest's
output capture.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass
from pathlib import Path

import pytest

from repro import config
from repro.core.atomic import AtomicUniverse
from repro.core.classifier import APClassifier
from repro.datasets import Scenario, get_scenario, uniform_over_atoms
from repro.datasets.workloads import PacketTrace
from repro.network.dataplane import DataPlane
from repro.obs import validate_snapshot

RESULTS_DIR = Path(__file__).parent / "results"

TRACE_LEN = 2000


def pytest_addoption(parser):
    """``--quick``: trimmed bench parameters for CI smoke legs.

    Works because pytest loads the conftests of directories named on the
    command line *before* parsing options -- so this registers in time
    whenever a bench under ``benchmarks/`` is invoked directly.
    """
    parser.addoption(
        "--quick",
        action="store_true",
        default=False,
        help="run benches with reduced iteration counts (CI smoke)",
    )
    parser.addoption(
        "--shards",
        type=int,
        default=4,
        help="top shard count for the multi-shard serving bench",
    )
    parser.addoption(
        "--scenario",
        default="",
        help="run scenario-aware benches on this registry scenario "
        "(name[:key=val,...], see `repro scenarios`)",
    )


@pytest.fixture(scope="session")
def quick(request) -> bool:
    return request.config.getoption("--quick")


@pytest.fixture(scope="session")
def shards(request) -> int:
    return request.config.getoption("--shards")

#: Instrumentation sidecars are opt-in: the figure benches replay a small
#: observed workload *after* their measured sections and write
#: ``results/<name>.obs.json`` only when this is set (see README).
OBS_SIDECARS = config.obs_sidecar()


@dataclass
class BenchDataset:
    """Everything a bench needs about one dataset."""

    name: str
    network: object
    dataplane: DataPlane
    universe: AtomicUniverse
    classifier: APClassifier
    trace: PacketTrace
    #: The registry scenario this bundle came from (recorder tagging,
    #: canonical update streams).
    scenario: Scenario | None = None

    @property
    def headers(self) -> tuple[int, ...]:
        return self.trace.headers


def scenario_from_spec(spec: str) -> Scenario:
    """Resolve a CLI-style ``name[:key=val,...]`` spec via the registry."""
    name, _, param_text = spec.partition(":")
    params: dict[str, str] = {}
    if param_text:
        for pair in param_text.split(","):
            key, eq, value = pair.partition("=")
            if not eq or not key.strip():
                raise ValueError(
                    f"malformed scenario param {pair!r} in {spec!r} "
                    "(expected key=value)"
                )
            params[key.strip()] = value.strip()
    return get_scenario(name, **params)


def _bundle(
    name: str, scenario: Scenario, trace_rng: random.Random | None = None
) -> BenchDataset:
    """Build one scenario end to end.

    ``trace_rng`` overrides the scenario's seed-derived trace RNG; the
    legacy fixtures pass ``random.Random(17)`` to keep their published
    numbers comparable.
    """
    classifier = APClassifier.build(scenario.network(), strategy="oapt")
    if trace_rng is None:
        trace = scenario.trace(classifier.universe, TRACE_LEN)
    else:
        trace = uniform_over_atoms(classifier.universe, TRACE_LEN, trace_rng)
    return BenchDataset(
        name=name,
        network=scenario.network(),
        dataplane=classifier.dataplane,
        universe=classifier.universe,
        classifier=classifier,
        trace=trace,
        scenario=scenario,
    )


def bundle_scenario(spec: str) -> BenchDataset:
    """A :class:`BenchDataset` for a ``--scenario`` spec string."""
    scenario = scenario_from_spec(spec)
    return _bundle(scenario.name, scenario)


@pytest.fixture(scope="session")
def scenario_spec(request) -> str:
    return request.config.getoption("--scenario")


@pytest.fixture(scope="session")
def scenario_dataset(scenario_spec) -> BenchDataset:
    """The ``--scenario`` workload, built once; skip when none was given."""
    if not scenario_spec:
        pytest.skip("pass --scenario name[:key=val,...] to run this bench")
    return bundle_scenario(scenario_spec)


@pytest.fixture(scope="session")
def i2() -> BenchDataset:
    return _bundle(
        "internet2-like",
        get_scenario("internet2", prefixes_per_router=14),
        trace_rng=random.Random(17),
    )


@pytest.fixture(scope="session")
def stan() -> BenchDataset:
    return _bundle(
        "stanford-like",
        get_scenario(
            "stanford",
            subnets_per_zone=16,
            host_ports_per_zone=8,
            acl_templates=5,
            te_fraction=0.15,
        ),
        trace_rng=random.Random(17),
    )


@pytest.fixture(scope="session")
def datasets(i2, stan) -> list[BenchDataset]:
    return [i2, stan]


def emit(name: str, text: str) -> None:
    """Print a result table and persist it under benchmarks/results/."""
    print(f"\n{text}\n")
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def emit_json(name: str, payload: dict) -> Path:
    """Persist a machine-readable result as strict JSON (no NaN/Infinity)."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    path.write_text(json.dumps(payload, indent=2, allow_nan=False) + "\n")
    return path


def emit_obs(name: str, recorder) -> Path | None:
    """Write a recorder's snapshot sidecar when REPRO_OBS_SIDECAR is set.

    The snapshot is validated against the published schema first, so a
    drifting emitter fails the bench instead of shipping bad sidecars.
    """
    if not OBS_SIDECARS:
        return None
    snapshot = validate_snapshot(recorder.snapshot())
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.obs.json"
    path.write_text(json.dumps(snapshot, indent=2, allow_nan=False) + "\n")
    return path
