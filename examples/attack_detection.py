#!/usr/bin/env python3
"""Attack detection: spotting data-plane behavior that violates policy.

The Section I motivation: a compromised box (or a misconfigured update)
makes packets take abnormal paths.  A monitor compares the *actual*
behavior of sampled flows, as computed by AP Classifier over the live data
plane, against the expected policy, and flags violations -- here, an
exfiltration-style rule that silently tees traffic toward a rogue host,
and a bypass rule that skips the firewall.

Run:  python examples/attack_detection.py
"""

from __future__ import annotations

import random

from repro import APClassifier, ForwardingRule, Match
from repro.datasets import internet2_like, uniform_over_atoms
from repro.headerspace.fields import parse_ipv4


def snapshot_behaviors(classifier: APClassifier, headers, ingress: str):
    return {
        header: sorted(map(tuple, classifier.query(header, ingress).paths()))
        for header in headers
    }


def main() -> None:
    network = internet2_like()
    classifier = APClassifier.build(network)
    rng = random.Random(0)

    # The monitor samples one probe packet per atomic predicate class --
    # full coverage of all possible behaviors with |atoms| probes.
    probes = uniform_over_atoms(classifier.universe, 40, rng).headers
    baseline = snapshot_behaviors(classifier, probes, ingress="NEWY")
    print(f"baseline recorded: {len(baseline)} probe flows from NEWY")

    # ------------------------------------------------------------------
    # Attack 1: a rogue high-priority rule detours one /24 at CHIC.
    # ------------------------------------------------------------------
    rogue = ForwardingRule(
        Match.prefix("dst_ip", parse_ipv4("10.2.0.0"), 24),
        ("to_HOUS",),
        priority=24,
    )
    classifier.insert_rule("CHIC", rogue)
    print("\n[!] rogue detour rule installed at CHIC")

    after = snapshot_behaviors(classifier, probes, ingress="NEWY")
    changed = [header for header in probes if baseline[header] != after[header]]
    print(f"monitor: {len(changed)} probe flow(s) changed behavior")
    for header in changed[:3]:
        print(f"  flow {header:#010x}:")
        print(f"    expected: {baseline[header]}")
        print(f"    actual:   {after[header]}")
    if changed:
        print("  -> ALERT: data plane behavior deviates from policy baseline")

    # Clean up the attack.
    classifier.remove_rule("CHIC", rogue)
    restored = snapshot_behaviors(classifier, probes, ingress="NEWY")
    assert restored == baseline
    print("\nrule removed; behaviors match the baseline again")

    # ------------------------------------------------------------------
    # Attack 2: a blackhole -- everything at WASH silently dropped.
    # ------------------------------------------------------------------
    blackhole = ForwardingRule(Match.any(), (), priority=32)
    classifier.insert_rule("WASH", blackhole)
    print("\n[!] blackhole rule installed at WASH")
    victims = 0
    for header in probes:
        behavior = classifier.query(header, "NEWY")
        if behavior.is_dropped_everywhere and baseline[header][0][-1].startswith("net_"):
            victims += 1
    print(f"monitor: {victims} previously-delivered probe flow(s) now blackholed")
    if victims:
        print("  -> ALERT: traffic loss localized to WASH")


if __name__ == "__main__":
    main()
