#!/usr/bin/env python3
"""Operational workflow: text configs -> network -> verify -> snapshot.

Shows the toolchain a network operator would actually drive:

1. parse device configs (route tables and ACLs in plain text);
2. assemble the network model and build AP Classifier;
3. run invariant checks (waypoints, isolation, blackholes);
4. snapshot the verified plane to JSON for audit/replay.

Run:  python examples/config_workflow.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import APClassifier, Network, Packet, five_tuple_layout
from repro.core.verifier import NetworkVerifier
from repro.network.parsers import parse_acl, parse_routes
from repro.network.serialize import load_network, save_network

EDGE_ROUTES = """
# edge router: send the server block through the firewall
route 10.50.0.0/16 -> to_fw
route 192.168.0.0/16 -> to_guest
"""

FW_ROUTES = """
route 10.50.0.0/16 -> to_core
"""

CORE_ROUTES = """
route 10.50.0.0/16 -> dc
"""

GUEST_ROUTES = """
route 192.168.0.0/16 -> wifi
"""

FW_ACL = """
# security policy stamped on the firewall ingress
deny   tcp any any eq 23          # no telnet, ever
deny   ip 192.168.0.0/16 any      # guest sources stay out
permit ip any any
"""


def build_from_configs() -> Network:
    network = Network(five_tuple_layout(), name="from-configs")
    for box in ("edge", "fw", "core", "guest_sw"):
        network.add_box(box)
    network.link("edge", "to_fw", "fw", "from_edge")
    network.link("fw", "to_core", "core", "from_fw")
    network.link("edge", "to_guest", "guest_sw", "from_edge")
    network.attach_host("core", "dc", "datacenter")
    network.attach_host("guest_sw", "wifi", "guest_wifi")

    for box, text in (
        ("edge", EDGE_ROUTES),
        ("fw", FW_ROUTES),
        ("core", CORE_ROUTES),
        ("guest_sw", GUEST_ROUTES),
    ):
        for rule in parse_routes(text):
            network.boxes[box].table.add(rule)
    network.boxes["fw"].set_input_acl(
        "from_edge", parse_acl(FW_ACL, network.layout)
    )
    return network


def main() -> None:
    network = build_from_configs()
    print(f"parsed configs into: {network} :: {network.stats()}")

    classifier = APClassifier.build(network)
    print(f"classifier: {classifier}\n")

    # Spot checks with concrete packets.
    layout = network.layout
    telnet = Packet.of(layout, dst_ip="10.50.1.1", dst_port=23, proto=6)
    web = Packet.of(layout, dst_ip="10.50.1.1", dst_port=443, proto=6)
    spoofed = Packet.of(layout, src_ip="192.168.3.4", dst_ip="10.50.1.1")
    for name, packet in (("telnet", telnet), ("web", web), ("guest-src", spoofed)):
        behavior = classifier.query(packet, "edge")
        verdict = sorted(behavior.delivered_hosts()) or "DROPPED"
        print(f"  {name:10s}: {verdict}")

    # Exhaustive invariants via the verifier.
    verifier = NetworkVerifier.from_classifier(classifier)
    violations = verifier.verify_waypoint("edge", "datacenter", "fw")
    shared = verifier.verify_isolation("edge", "datacenter", "guest_wifi")
    print(f"\nwaypoint (all dc traffic via fw): {len(violations)} violations")
    print(f"isolation (dc vs guest wifi): {len(shared)} shared classes")
    assert not violations and not shared

    # Snapshot and reload; the reloaded plane must verify identically.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "verified-plane.json"
        save_network(network, path)
        print(f"\nsnapshot written: {path.name} ({path.stat().st_size} bytes)")
        reloaded = load_network(path)
        reclassifier = APClassifier.build(reloaded)
        reverifier = NetworkVerifier.from_classifier(reclassifier)
        assert not reverifier.verify_waypoint("edge", "datacenter", "fw")
        print("reloaded snapshot verifies identically.")


if __name__ == "__main__":
    main()
