#!/usr/bin/env python3
"""Dynamic networks: real-time updates and parallel reconstruction.

Demonstrates the Section VI machinery:

1. a stream of rule inserts/withdrawals applied to a live classifier with
   per-update latency measurements (the Fig. 13 experiment in miniature);
2. the query/reconstruction two-process pipeline under Poisson updates,
   showing the throughput sawtooth of Fig. 14.

Run:  python examples/dynamic_updates.py
"""

from __future__ import annotations

import random

from repro import APClassifier
from repro.analysis import percentile, render_series
from repro.core.reconstruction import DynamicSimulation
from repro.datasets import internet2_like, rule_update_stream


def part1_update_latency() -> None:
    print("=" * 60)
    print("1. real-time rule updates (Section VI-A)")
    print("=" * 60)
    network = internet2_like()
    classifier = APClassifier.build(network)
    rng = random.Random(0)

    latencies_ms = []
    for update in rule_update_stream(network, 100, rng):
        if update.kind == "insert":
            results = classifier.insert_rule(update.box, update.rule)
        else:
            results = classifier.remove_rule(update.box, update.rule)
        latencies_ms.extend(result.elapsed_s * 1e3 for result in results)

    if latencies_ms:
        print(f"applied {len(latencies_ms)} predicate changes")
        for q in (50, 80, 95, 99):
            print(f"  p{q}: {percentile(latencies_ms, q):.3f} ms")
    print(f"atoms after updates: {classifier.universe.atom_count}")
    classifier.reconstruct()
    print(f"atoms after reconstruction: {classifier.universe.atom_count}")


def part2_throughput_timeline() -> None:
    print()
    print("=" * 60)
    print("2. query throughput under churn (Section VI-B, Fig. 14)")
    print("=" * 60)
    network = internet2_like()
    from repro.network import DataPlane

    pool = DataPlane(network).predicates()
    simulation = DynamicSimulation(
        pool,
        initial_count=max(len(pool) // 2, 10),
        method="apclassifier",
        reconstruct_interval_s=0.4,
        rng=random.Random(1),
        cost_samples=100,
    )
    samples = simulation.run(duration_s=1.2, update_rate_per_s=100)
    points = [
        (f"{sample.time_s:.2f}s" + (f" [{sample.event}]" if sample.event else ""),
         f"{sample.throughput_qps / 1e3:.0f} Kqps")
        for sample in samples
    ]
    print(render_series("throughput over time (100 updates/s)", "t", "qps", points))
    swaps = [sample.time_s for sample in samples if sample.event == "swap"]
    print(f"\ntree swaps (reconstruction completions) at: {swaps}")


def main() -> None:
    part1_update_latency()
    part2_throughput_timeline()


if __name__ == "__main__":
    main()
