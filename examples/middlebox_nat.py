#!/usr/bin/env python3
"""Middlebox header changes: a NAT in the forwarding path (Section V-E).

Builds a gateway network where a NAT rewrites external destinations to an
internal server prefix, and shows the three change types:

* Type 1 (deterministic on header): the flow table stores the new atomic
  predicate -- no AP Tree re-search;
* Type 2 (payload-dependent): the classifier re-searches the AP Tree with
  the rewritten header;
* Type 3 (probabilistic, e.g. a load balancer): multiple possible
  behaviors, each with a probability.

Run:  python examples/middlebox_nat.py
"""

from __future__ import annotations

from repro import APClassifier, Match, Network, Packet, dst_ip_layout
from repro.core.middlebox import (
    DETERMINISTIC,
    PAYLOAD_DEPENDENT,
    PROBABILISTIC,
    FlowEntry,
    HeaderRewrite,
    Middlebox,
    MiddleboxAwareComputer,
    MiddleboxTable,
    RewriteBranch,
)
from repro.headerspace.fields import parse_ipv4

FULL = (1 << 32) - 1


def build_gateway() -> Network:
    network = Network(dst_ip_layout(), name="gateway")
    for box in ("gw", "lan"):
        network.add_box(box)
    network.link("gw", "to_lan", "lan", "from_gw")
    network.attach_host("lan", "srv_a", "server_a")
    network.attach_host("lan", "srv_b", "server_b")
    # Public virtual IP range is routed inward at the gateway.
    network.add_forwarding_rule(
        "gw", Match.prefix("dst_ip", parse_ipv4("203.0.113.0"), 24), "to_lan", 24
    )
    # LAN switch routes the two internal server /24s.
    network.add_forwarding_rule(
        "lan", Match.prefix("dst_ip", parse_ipv4("10.0.1.0"), 24), "srv_a", 24
    )
    network.add_forwarding_rule(
        "lan", Match.prefix("dst_ip", parse_ipv4("10.0.2.0"), 24), "srv_b", 24
    )
    return network


def main() -> None:
    network = build_gateway()
    classifier = APClassifier.build(network)
    layout = network.layout
    public = Packet.of(layout, dst_ip="203.0.113.80")
    internal_a = Packet.of(layout, dst_ip="10.0.1.80")
    internal_b = Packet.of(layout, dst_ip="10.0.2.80")

    # Without the NAT, the public packet dies at the LAN switch (no route
    # for 203.0.113.0/24 there).
    plain = classifier.query(public, "gw")
    print("without NAT:", plain.paths(), "delivered:", plain.delivered_hosts())

    public_atom = classifier.classify(public)
    atom_a = classifier.classify(internal_a)

    # --- Type 1: static DNAT, new atomic predicate precomputed ----------
    dnat = FlowEntry(
        match_atoms=frozenset({public_atom}),
        kind=DETERMINISTIC,
        branches=(
            RewriteBranch(
                HeaderRewrite(FULL, internal_a.value), 1.0, new_atom=atom_a
            ),
        ),
    )
    computer = MiddleboxAwareComputer(
        classifier, {"lan": Middlebox("NAT", MiddleboxTable([dnat]))}
    )
    (outcome,) = computer.query(public.value, "gw")
    print("\nType 1 DNAT -> 10.0.1.80:")
    print("  paths:", outcome.behavior.paths())
    print("  delivered:", outcome.behavior.delivered_hosts())
    print("  AP Tree re-searches:", outcome.tree_searches, "(precomputed)")

    # --- Type 2: payload-dependent rewrite (e.g. ALG) --------------------
    alg = FlowEntry(
        match_atoms=frozenset({public_atom}),
        kind=PAYLOAD_DEPENDENT,
        branches=(RewriteBranch(HeaderRewrite(FULL, internal_b.value), 1.0),),
    )
    computer = MiddleboxAwareComputer(
        classifier, {"lan": Middlebox("ALG", MiddleboxTable([alg]))}
    )
    (outcome,) = computer.query(public.value, "gw")
    print("\nType 2 payload-dependent rewrite -> 10.0.2.80:")
    print("  delivered:", outcome.behavior.delivered_hosts())
    print("  AP Tree re-searches:", outcome.tree_searches, "(had to re-classify)")

    # --- Type 3: probabilistic load balancer -----------------------------
    lb = FlowEntry(
        match_atoms=frozenset({public_atom}),
        kind=PROBABILISTIC,
        branches=(
            RewriteBranch(HeaderRewrite(FULL, internal_a.value), 0.5),
            RewriteBranch(HeaderRewrite(FULL, internal_b.value), 0.5),
        ),
    )
    computer = MiddleboxAwareComputer(
        classifier, {"lan": Middlebox("LB", MiddleboxTable([lb]))}
    )
    outcomes = computer.query(public.value, "gw")
    print("\nType 3 probabilistic load balancing:")
    for outcome in outcomes:
        print(
            f"  p={outcome.probability:.2f}: delivered to "
            f"{sorted(outcome.behavior.delivered_hosts())}"
        )
    total = sum(outcome.probability for outcome in outcomes)
    print(f"  probabilities sum to {total:.2f}")


if __name__ == "__main__":
    main()
