#!/usr/bin/env python3
"""Policy verification: the Section I management applications.

Assembles a small enterprise network by hand (edge -> firewall -> IDS ->
core, plus a guest segment) and uses AP Classifier to check the flow
properties the paper lists:

* forwarding correctness  -- packets reach their destination or are
  dropped if disallowed;
* policy enforcement      -- web traffic traverses firewall and IDS;
* isolation               -- guest traffic can never reach the datacenter.

Run:  python examples/policy_verification.py
"""

from __future__ import annotations

from repro import AclRule, APClassifier, Match, Network, Packet, dst_ip_layout
from repro.headerspace.fields import parse_ipv4


def build_enterprise() -> Network:
    network = Network(dst_ip_layout(), name="enterprise")
    for box in ("edge", "fw", "ids", "core", "guest_sw"):
        network.add_box(box)
    network.link("edge", "to_fw", "fw", "from_edge")
    network.link("fw", "to_ids", "ids", "from_fw")
    network.link("ids", "to_core", "core", "from_ids")
    network.link("edge", "to_guest", "guest_sw", "from_edge")
    network.attach_host("core", "dc", "datacenter")
    network.attach_host("guest_sw", "wifi", "guest_wifi")

    datacenter = Match.prefix("dst_ip", parse_ipv4("10.50.0.0"), 16)
    guest = Match.prefix("dst_ip", parse_ipv4("192.168.0.0"), 16)

    # Datacenter-bound traffic goes through the security chain.
    network.add_forwarding_rule("edge", datacenter, "to_fw", 16)
    network.add_forwarding_rule("fw", datacenter, "to_ids", 16)
    network.add_forwarding_rule("ids", datacenter, "to_core", 16)
    network.add_forwarding_rule("core", datacenter, "dc", 16)
    # Guest traffic goes to the guest switch.
    network.add_forwarding_rule("edge", guest, "to_guest", 16)
    network.add_forwarding_rule("guest_sw", guest, "wifi", 16)
    # Firewall policy: a quarantined /24 must not reach the datacenter.
    network.add_input_acl(
        "fw",
        "from_edge",
        [
            AclRule(Match.prefix("dst_ip", parse_ipv4("10.50.99.0"), 24), permit=False),
            AclRule(Match.any(), permit=True),
        ],
    )
    return network


def verify(classifier: APClassifier, description: str, condition: bool) -> None:
    marker = "PASS" if condition else "FAIL"
    print(f"  [{marker}] {description}")
    if not condition:
        raise SystemExit(f"flow property violated: {description}")


def main() -> None:
    network = build_enterprise()
    classifier = APClassifier.build(network)
    print(f"built classifier: {classifier}\n")
    layout = network.layout

    print("forwarding correctness:")
    web = classifier.query(Packet.of(layout, dst_ip="10.50.1.10"), "edge")
    verify(classifier, "datacenter flow is delivered", web.delivered_hosts() == {"datacenter"})
    unknown = classifier.query(Packet.of(layout, dst_ip="8.8.8.8"), "edge")
    verify(classifier, "unroutable flow is dropped", unknown.is_dropped_everywhere)

    print("\npolicy enforcement (waypoints):")
    traversed = web.boxes_traversed()
    verify(classifier, "flow passes the firewall", "fw" in traversed)
    verify(classifier, "flow passes the IDS after the firewall",
           traversed.index("ids") > traversed.index("fw"))

    print("\nquarantine:")
    quarantined = classifier.query(Packet.of(layout, dst_ip="10.50.99.7"), "edge")
    verify(classifier, "quarantined prefix blocked at the firewall",
           ("fw", "input_acl") in quarantined.drops())

    print("\nisolation (exhaustive over all atomic predicates):")
    # Because atoms partition the header space, checking every atom checks
    # EVERY possible packet -- this is the power of the representation.
    leaky = []
    for atom_id in classifier.universe.atom_ids():
        behavior = classifier.behavior_of_atom(atom_id, "edge")
        hosts = behavior.delivered_hosts()
        if "guest_wifi" in hosts and "datacenter" in hosts:
            leaky.append(atom_id)
    verify(classifier, "no packet class reaches both guest wifi and the datacenter",
           not leaky)

    print("\nall flow properties hold.")


if __name__ == "__main__":
    main()
