#!/usr/bin/env python3
"""Quickstart: build AP Classifier for a network and query packet behaviors.

Builds the Internet2-like dataset, constructs the classifier (atomic
predicates + OAPT AP Tree), and walks through the two-stage query API:

    stage 1  packet -> atomic predicate   (AP Tree search)
    stage 2  atomic predicate + ingress -> network-wide behavior

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import random
import time

from repro import APClassifier, Packet
from repro.analysis import format_qps, measure_throughput
from repro.datasets import internet2_like, uniform_over_atoms


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Build a network.  internet2_like() gives the 9-router backbone
    #    with destination-prefix forwarding; you can also assemble your
    #    own via repro.Network (see policy_verification.py).
    # ------------------------------------------------------------------
    network = internet2_like()
    print(f"network: {network}")
    print(f"  stats: {network.stats()}")

    # ------------------------------------------------------------------
    # 2. Build the classifier.  This compiles every forwarding table and
    #    ACL to BDD predicates, computes the atomic predicates, and
    #    builds the OAPT-optimized AP Tree.
    # ------------------------------------------------------------------
    started = time.perf_counter()
    classifier = APClassifier.build(network, strategy="oapt")
    elapsed_ms = (time.perf_counter() - started) * 1e3
    stats = classifier.stats()
    print(f"\nbuilt AP Classifier in {elapsed_ms:.1f} ms")
    print(f"  predicates:        {stats.predicates}")
    print(f"  atomic predicates: {stats.atoms}")
    print(f"  tree avg depth:    {stats.tree_average_depth:.2f}")
    print(f"  est. memory:       {stats.estimated_bytes / 1e6:.2f} MB")

    # ------------------------------------------------------------------
    # 3. Query one packet.
    # ------------------------------------------------------------------
    packet = Packet.of(network.layout, dst_ip="10.3.0.42")
    behavior = classifier.query(packet, ingress_box="SEAT")
    print(f"\nquery: {packet} entering at SEAT")
    print(f"  atomic predicate: a{behavior.atom_id}")
    for path in behavior.paths():
        print(f"  path: {' -> '.join(path)}")
    print(f"  delivered to: {sorted(behavior.delivered_hosts()) or 'nowhere'}")

    # ------------------------------------------------------------------
    # 4. Throughput: classify a trace of packets drawn uniformly over the
    #    atomic predicates, the paper's query workload.
    # ------------------------------------------------------------------
    rng = random.Random(0)
    trace = uniform_over_atoms(classifier.universe, 5000, rng)
    result = measure_throughput(classifier.tree.classify, trace.headers, repeat=2)
    print(f"\nstage-1 classification throughput: {format_qps(result.qps)}")

    # ------------------------------------------------------------------
    # 5. Real-time update: install a rule, observe behavior change.
    # ------------------------------------------------------------------
    from repro import ForwardingRule, Match
    from repro.headerspace.fields import parse_ipv4

    detour = ForwardingRule(
        Match.prefix("dst_ip", parse_ipv4("10.3.0.0"), 24),
        ("to_SALT",),
        priority=24,
    )
    results = classifier.insert_rule("SEAT", detour)
    print(f"\ninstalled a /24 detour at SEAT ({len(results)} predicate changes)")
    rerouted = classifier.query(packet, ingress_box="SEAT")
    for path in rerouted.paths():
        print(f"  new path: {' -> '.join(path)}")


if __name__ == "__main__":
    main()
