#!/usr/bin/env python3
"""Traffic engineering on a datacenter fat-tree (Section I application).

Centralized traffic engineering needs, for each new flow, its *current*
path in the data plane before deciding whether to reroute it. This
example runs that loop on a k=4 fat-tree:

1. a new elephant flow arrives; AP Classifier reports its current path;
2. the controller notices the path shares a core switch with another
   elephant flow (a collision the two-level routing cannot avoid);
3. it installs a higher-priority /24 detour onto a different core and
   re-queries to confirm the new path -- verification before and after a
   data plane update, in milliseconds.

Run:  python examples/traffic_engineering.py
"""

from __future__ import annotations

from repro import APClassifier, ForwardingRule, Match, Packet
from repro.datasets import fattree
from repro.headerspace.fields import parse_ipv4


def path_of(classifier: APClassifier, dst: str, ingress: str) -> list[str]:
    packet = Packet.of(classifier.dataplane.layout, dst_ip=dst)
    behavior = classifier.query(packet, ingress_box=ingress)
    paths = behavior.paths()
    assert len(paths) == 1, "unicast flow expected"
    return paths[0]


def core_of(path: list[str]) -> str | None:
    return next((box for box in path if box.startswith("core")), None)


def main() -> None:
    network = fattree(4)
    classifier = APClassifier.build(network)
    print(f"fat-tree k=4: {network.stats()}")
    print(f"classifier: {classifier.stats()}\n")

    # Two inter-pod elephant flows from pod 0.
    flow_a = ("10.2.0.2", "edge_0_0")  # to pod 2
    flow_b = ("10.2.1.2", "edge_0_1")  # also to pod 2

    path_a = path_of(classifier, *flow_a)
    path_b = path_of(classifier, *flow_b)
    print("flow A path:", " -> ".join(path_a))
    print("flow B path:", " -> ".join(path_b))

    shared = core_of(path_a) == core_of(path_b)
    print(f"\ncore collision: {shared} (both via {core_of(path_a)})")
    if not shared:
        print("no collision; nothing to reroute")
        return

    # Reroute flow B's destination /24 onto the other aggregation uplink
    # at its edge and aggregation switches (higher-priority rules).
    detour_prefix = Match.prefix("dst_ip", parse_ipv4("10.2.1.0"), 24)
    edge_rule = ForwardingRule(detour_prefix, ("up_1",), priority=25)
    agg_rule = ForwardingRule(detour_prefix, ("core_1",), priority=25)
    changes = classifier.insert_rule("edge_0_1", edge_rule)
    changes += classifier.insert_rule("agg_0_1", agg_rule)
    print(f"\ninstalled detour ({len(changes)} predicate changes)")

    new_path_b = path_of(classifier, *flow_b)
    print("flow B new path:", " -> ".join(new_path_b))
    print("flow A path unchanged:", path_of(classifier, *flow_a) == path_a)
    print(
        "collision resolved:",
        core_of(new_path_b) != core_of(path_a),
        f"(A via {core_of(path_a)}, B via {core_of(new_path_b)})",
    )

    # TE must not break reachability: verify the flow still lands at the
    # same host, and no class started looping.
    from repro.core.verifier import NetworkVerifier

    verifier = NetworkVerifier.from_classifier(classifier)
    assert new_path_b[-1] == path_b[-1], "detour changed the destination!"
    assert not verifier.find_loops("edge_0_1"), "detour introduced a loop!"
    print("\npost-update verification: destination preserved, no loops.")


if __name__ == "__main__":
    main()
