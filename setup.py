"""Build script: optional native kernel extension + no-PEP517 shim.

All distribution metadata lives in ``pyproject.toml``; this file exists
for two reasons:

* it declares the **optional** C extension ``repro._native._kernel``
  (the fused-program classification kernel behind ``REPRO_ENGINE=native``).
  ``optional=True`` makes a failed compile a warning, not an install
  failure -- environments without a C toolchain fall back to the numpy
  or pure-stdlib engines at runtime;
* it enables ``pip install -e . --no-use-pep517`` on offline machines
  where pip cannot build editable wheels.

Developers build the extension in place with::

    python setup.py build_ext --inplace
"""

from setuptools import Extension, setup

setup(
    ext_modules=[
        Extension(
            "repro._native._kernel",
            sources=["src/repro/_native/_kernelmodule.c"],
            optional=True,
        )
    ]
)
