"""AP Classifier: practical network-wide packet behavior identification.

A from-scratch Python reproduction of Wang, Qian, Yu, Yang & Lam,
"Practical Network-Wide Packet Behavior Identification by AP Classifier"
(ACM CoNEXT 2015; IEEE/ACM ToN 2017), including every substrate the system
needs: a BDD engine, a network/data-plane model, atomic-predicate
computation, the AP Tree with its construction and update algorithms, and
the comparison baselines (HSA, AP Verifier linear scan, predicate scan,
forwarding simulation, Veriflow trie).

Quickstart::

    from repro import APClassifier, Packet
    from repro.datasets import internet2_like

    network = internet2_like()
    classifier = APClassifier.build(network)
    packet = Packet.of(network.layout, dst_ip="10.1.0.1")
    behavior = classifier.query(packet, ingress_box="SEAT")
    print(behavior.paths(), behavior.delivered_hosts())
"""

from .bdd import BDDManager, Function
from .core import (
    APClassifier,
    APTree,
    AtomicUniverse,
    Behavior,
    BehaviorComputer,
    VisitCounter,
)
from .headerspace import (
    HeaderLayout,
    Packet,
    Wildcard,
    WildcardSet,
    dst_ip_layout,
    five_tuple_layout,
)
from .network import (
    Acl,
    AclRule,
    Box,
    DataPlane,
    ForwardingRule,
    ForwardingTable,
    Match,
    Network,
)
from . import config, diff, persist

__version__ = "1.0.0"

__all__ = [
    "APClassifier",
    "APTree",
    "AtomicUniverse",
    "Behavior",
    "BehaviorComputer",
    "VisitCounter",
    "BDDManager",
    "Function",
    "HeaderLayout",
    "Packet",
    "Wildcard",
    "WildcardSet",
    "dst_ip_layout",
    "five_tuple_layout",
    "Network",
    "DataPlane",
    "Box",
    "Match",
    "ForwardingRule",
    "ForwardingTable",
    "Acl",
    "AclRule",
    "config",
    "diff",
    "persist",
    "__version__",
]
