"""Optional native (C) classification kernel.

The extension module :mod:`repro._native._kernel` holds one tight loop:
the fused-program descent of :class:`repro.core.compiled.CompiledAPTree`
run directly over the little-endian ``uint64`` word buffers the artifact
format already mmaps -- no numpy temporaries, no Python objects per
packet.  It is built by ``python setup.py build_ext --inplace`` (or any
wheel build); the build is declared *optional*, so environments without
a C compiler simply skip it.

This package imports cleanly whether or not the extension is built:
:func:`load_kernel` returns the module or ``None``, and the engine
selection in :mod:`repro.core.kernel` treats ``None`` as "native
unavailable" and falls back to the numpy or stdlib backend.
"""

from __future__ import annotations

__all__ = ["load_kernel", "native_build_hint"]

_KERNEL = None
_TRIED = False


def load_kernel():
    """The built ``_kernel`` extension module, or ``None``.

    Import is attempted once per process and memoized either way; a
    missing or un-importable extension is never an error here (the
    caller decides whether a fallback or a loud failure is right).
    """
    global _KERNEL, _TRIED
    if not _TRIED:
        _TRIED = True
        try:
            from . import _kernel  # type: ignore[attr-defined]
        except ImportError:
            _KERNEL = None
        else:
            _KERNEL = _kernel
    return _KERNEL


def native_build_hint() -> str:
    """One-line instruction shown when native is requested but absent."""
    return (
        "the native kernel is not built; run "
        "`python setup.py build_ext --inplace` (requires a C compiler)"
    )
