/* Native fused-program descent for the compiled AP Tree.
 *
 * One exported function, classify_words(), walks the fused branching
 * program (the same int32/int64 little-endian arrays repro.artifact
 * stores and mmaps) for a batch of headers packed as uint64 words.
 * Per packet the loop is three array reads per node visit:
 *
 *     bit = (words[lane*W + f_word[cur]] >> f_shift[cur]) & 1
 *     cur = f_child[2*cur + bit]
 *
 * until cur sinks below num_sinks, then out[lane] = f_atom[cur].  Total
 * work is the sum of per-packet path lengths -- the information-
 * theoretic floor the batch-vectorized numpy descent can only
 * approximate (it advances every lane each sweep, finished or not).
 *
 * All arguments arrive through the buffer protocol, so the module
 * compiles without numpy headers; the Python-side plumbing in
 * repro.core.kernel guarantees C-contiguity and dtype/width before the
 * call, and the checks here are a defensive second line, not an API.
 * The GIL is released for the duration of the descent.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <stdint.h>

static int
get_buffer(PyObject *obj, Py_buffer *view, int writable, const char *name,
           Py_ssize_t itemsize)
{
    int flags = writable ? PyBUF_WRITABLE : PyBUF_SIMPLE;
    if (PyObject_GetBuffer(obj, view, flags) != 0) {
        return -1;
    }
    if (view->itemsize != 0 && view->len % itemsize != 0) {
        PyErr_Format(PyExc_ValueError,
                     "%s: buffer length %zd is not a multiple of %zd",
                     name, view->len, itemsize);
        PyBuffer_Release(view);
        return -1;
    }
    return 0;
}

static PyObject *
classify_words(PyObject *self, PyObject *args)
{
    PyObject *words_obj, *fword_obj, *fshift_obj, *fchild_obj, *fatom_obj;
    PyObject *out_obj;
    Py_ssize_t n, width;
    long num_sinks, f_root;

    if (!PyArg_ParseTuple(args, "OnnOOOOllO:classify_words",
                          &words_obj, &n, &width, &fword_obj, &fshift_obj,
                          &fchild_obj, &fatom_obj, &num_sinks, &f_root,
                          &out_obj)) {
        return NULL;
    }
    if (n < 0 || width < 1) {
        PyErr_SetString(PyExc_ValueError, "n must be >= 0 and width >= 1");
        return NULL;
    }

    Py_buffer words, fword, fshift, fchild, fatom, out;
    if (get_buffer(words_obj, &words, 0, "words", 8) != 0) {
        return NULL;
    }
    if (get_buffer(fword_obj, &fword, 0, "f_word", 4) != 0) {
        goto fail_words;
    }
    if (get_buffer(fshift_obj, &fshift, 0, "f_shift", 4) != 0) {
        goto fail_fword;
    }
    if (get_buffer(fchild_obj, &fchild, 0, "f_child", 4) != 0) {
        goto fail_fshift;
    }
    if (get_buffer(fatom_obj, &fatom, 0, "f_atom", 8) != 0) {
        goto fail_fchild;
    }
    if (get_buffer(out_obj, &out, 1, "out", 8) != 0) {
        goto fail_fatom;
    }

    Py_ssize_t size = fword.len / 4;
    if (fshift.len / 4 != size || fchild.len / 8 != size) {
        PyErr_SetString(PyExc_ValueError,
                        "f_word, f_shift, and f_child disagree on the "
                        "program size");
        goto fail_out;
    }
    if (words.len / 8 < n * width) {
        PyErr_SetString(PyExc_ValueError, "words buffer shorter than n*width");
        goto fail_out;
    }
    if (out.len / 8 < n) {
        PyErr_SetString(PyExc_ValueError, "out buffer shorter than n");
        goto fail_out;
    }
    if (num_sinks < 0 || num_sinks > fatom.len / 8 || size < num_sinks) {
        PyErr_SetString(PyExc_ValueError, "num_sinks out of range");
        goto fail_out;
    }
    if (f_root < 0 || f_root >= size) {
        PyErr_SetString(PyExc_ValueError, "f_root out of range");
        goto fail_out;
    }

    /* Validate every edge once up front so the GIL-free loop below can
     * run unchecked: children must land inside the program, and
     * non-sink edges must move strictly forward (the level-order
     * invariant asserted at compile time on the Python side).  O(size)
     * per call; the descent is O(sum of path lengths) >> size. */
    {
        const int32_t *child = (const int32_t *)fchild.buf;
        const int32_t sinks = (int32_t)num_sinks;
        for (Py_ssize_t i = sinks; i < size; i++) {
            int32_t lo = child[2 * i];
            int32_t hi = child[2 * i + 1];
            if (lo < 0 || lo >= size || hi < 0 || hi >= size ||
                (lo >= sinks && lo <= i) || (hi >= sinks && hi <= i)) {
                PyErr_SetString(PyExc_ValueError,
                                "fused program edge out of range or not "
                                "strictly forward");
                goto fail_out;
            }
        }
        const uint32_t *shiftv = (const uint32_t *)fshift.buf;
        const uint32_t *wordv = (const uint32_t *)fword.buf;
        for (Py_ssize_t i = sinks; i < size; i++) {
            if (shiftv[i] > 63 || wordv[i] >= (uint32_t)width) {
                PyErr_SetString(PyExc_ValueError,
                                "f_shift/f_word entry out of range");
                goto fail_out;
            }
        }
    }

    {
        const uint64_t *w = (const uint64_t *)words.buf;
        const int32_t *word_of = (const int32_t *)fword.buf;
        const int32_t *shift_of = (const int32_t *)fshift.buf;
        const int32_t *child = (const int32_t *)fchild.buf;
        const int64_t *atom = (const int64_t *)fatom.buf;
        int64_t *result = (int64_t *)out.buf;
        const int32_t sinks = (int32_t)num_sinks;
        const int32_t root = (int32_t)f_root;

        /* The walk is a dependent-load chain: each step's child fetch
         * must retire before the next can issue, so a lone walk runs at
         * cache latency, not bandwidth.  Interleaving a block of LANES
         * independent walks keeps that many fetches in flight -- lanes
         * that reach a sink early just sit out the remaining sweeps. */
        enum { LANES = 8 };
        Py_BEGIN_ALLOW_THREADS
        if (width == 1) {
            for (Py_ssize_t i = 0; i < n; i += LANES) {
                int m = (n - i) < LANES ? (int)(n - i) : LANES;
                int32_t cur[LANES];
                for (int k = 0; k < m; k++) {
                    cur[k] = root;
                }
                int active = 1;
                while (active) {
                    active = 0;
                    for (int k = 0; k < m; k++) {
                        int32_t c = cur[k];
                        if (c >= sinks) {
                            uint64_t bit = (w[i + k] >> shift_of[c]) & 1u;
                            cur[k] = child[2 * c + (int32_t)bit];
                            active = 1;
                        }
                    }
                }
                for (int k = 0; k < m; k++) {
                    result[i + k] = atom[cur[k]];
                }
            }
        } else {
            for (Py_ssize_t i = 0; i < n; i += LANES) {
                int m = (n - i) < LANES ? (int)(n - i) : LANES;
                int32_t cur[LANES];
                for (int k = 0; k < m; k++) {
                    cur[k] = root;
                }
                int active = 1;
                while (active) {
                    active = 0;
                    for (int k = 0; k < m; k++) {
                        int32_t c = cur[k];
                        if (c >= sinks) {
                            const uint64_t *header =
                                w + (size_t)(i + k) * (size_t)width;
                            uint64_t bit =
                                (header[word_of[c]] >> shift_of[c]) & 1u;
                            cur[k] = child[2 * c + (int32_t)bit];
                            active = 1;
                        }
                    }
                }
                for (int k = 0; k < m; k++) {
                    result[i + k] = atom[cur[k]];
                }
            }
        }
        Py_END_ALLOW_THREADS
    }

    PyBuffer_Release(&out);
    PyBuffer_Release(&fatom);
    PyBuffer_Release(&fchild);
    PyBuffer_Release(&fshift);
    PyBuffer_Release(&fword);
    PyBuffer_Release(&words);
    Py_RETURN_NONE;

fail_out:
    PyBuffer_Release(&out);
fail_fatom:
    PyBuffer_Release(&fatom);
fail_fchild:
    PyBuffer_Release(&fchild);
fail_fshift:
    PyBuffer_Release(&fshift);
fail_fword:
    PyBuffer_Release(&fword);
fail_words:
    PyBuffer_Release(&words);
    return NULL;
}

static PyMethodDef kernel_methods[] = {
    {"classify_words", classify_words, METH_VARARGS,
     "classify_words(words, n, width, f_word, f_shift, f_child, f_atom,\n"
     "               num_sinks, f_root, out)\n\n"
     "Fused-program descent over word-packed headers; fills out[:n] with\n"
     "atom ids.  All array arguments are C-contiguous buffers: words\n"
     "uint64 (n*width), f_word/f_shift/f_child int32, f_atom/out int64."},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef kernel_module = {
    PyModuleDef_HEAD_INIT,
    "repro._native._kernel",
    "Native fused-program classification kernel (see repro.core.kernel).",
    -1,
    kernel_methods,
};

PyMODINIT_FUNC
PyInit__kernel(void)
{
    return PyModule_Create(&kernel_module);
}
