"""Measurement and reporting helpers for the evaluation harness."""

from .memory import MemoryReport, memory_report
from .reporting import format_qps, render_cdf, render_series, render_table
from .timeline import SwapRecovery, TimelineSummary, summarize_timeline
from .stats import (
    DepthStats,
    ThroughputResult,
    cdf,
    measure_batch_throughput,
    measure_throughput,
    pearson,
    percentile,
)

__all__ = [
    "cdf",
    "percentile",
    "pearson",
    "DepthStats",
    "ThroughputResult",
    "measure_batch_throughput",
    "measure_throughput",
    "render_table",
    "render_series",
    "render_cdf",
    "format_qps",
    "MemoryReport",
    "memory_report",
    "TimelineSummary",
    "SwapRecovery",
    "summarize_timeline",
]
