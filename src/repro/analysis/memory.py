"""Memory accounting for the classifier's data structures (Section VII-B).

The paper reports a few MB for everything -- predicates, atomic
predicates, the AP Tree, and the topology -- and notes the non-obvious
driver: memory follows *BDD node counts*, not rule counts (more similar
rules means fewer nodes). This module breaks the footprint down the same
way, so the Table I estimate can be audited component by component.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..bdd.manager import TRUE, BDDManager

__all__ = ["MemoryReport", "memory_report"]

#: Nominal bytes per structure element, mirroring a compact C layout
#: (the paper measured a Java/JDD process; these constants make our node
#: counts comparable to its MB figures, not to Python's object overhead).
BYTES_PER_BDD_NODE = 20
BYTES_PER_TREE_NODE = 40
BYTES_PER_R_ENTRY = 8
BYTES_PER_TOPOLOGY_ENTRY = 48
#: One memoization entry is a (key tuple, result) slot in a hash table;
#: 16 bytes approximates a packed C layout, consistent with the node
#: constant above.  Before this was accounted, cache growth (which the
#: size-triggered clear policy now bounds) was invisible to the report.
BYTES_PER_CACHE_ENTRY = 16


@dataclass(frozen=True)
class MemoryReport:
    """Component-wise footprint of one classifier."""

    predicate_bdd_nodes: int
    atom_bdd_nodes: int
    shared_bdd_nodes: int
    tree_nodes: int
    r_entries: int
    topology_entries: int
    #: Live entries across the manager's apply/not/ite memo caches.
    #: Defaults to 0 so reports built from structure counts alone keep
    #: their historical totals.
    cache_entries: int = 0

    @property
    def total_bytes(self) -> int:
        unique_nodes = (
            self.predicate_bdd_nodes
            + self.atom_bdd_nodes
            - self.shared_bdd_nodes
        )
        return (
            unique_nodes * BYTES_PER_BDD_NODE
            + self.tree_nodes * BYTES_PER_TREE_NODE
            + self.r_entries * BYTES_PER_R_ENTRY
            + self.topology_entries * BYTES_PER_TOPOLOGY_ENTRY
            + self.cache_entries * BYTES_PER_CACHE_ENTRY
        )

    def rows(self) -> list[tuple[str, str]]:
        """Render-ready (component, value) rows."""
        return [
            ("predicate BDD nodes", str(self.predicate_bdd_nodes)),
            ("atom BDD nodes", str(self.atom_bdd_nodes)),
            ("  shared between the two", str(self.shared_bdd_nodes)),
            ("AP Tree nodes", str(self.tree_nodes)),
            ("R(p) set entries", str(self.r_entries)),
            ("topology entries", str(self.topology_entries)),
            ("BDD memo cache entries", str(self.cache_entries)),
            ("estimated total", f"{self.total_bytes / 1e6:.2f} MB"),
        ]


def _reachable(manager: BDDManager, roots: list[int]) -> set[int]:
    seen: set[int] = set()
    stack = list(roots)
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        if node > TRUE:
            stack.append(manager.low(node))
            stack.append(manager.high(node))
    return seen


def memory_report(classifier) -> MemoryReport:
    """Break down the memory footprint of a built ``APClassifier``."""
    manager = classifier.dataplane.manager
    predicate_roots = [lp.fn.node for lp in classifier.dataplane.predicates()]
    atom_roots = [fn.node for fn in classifier.universe.atoms().values()]
    predicate_nodes = _reachable(manager, predicate_roots)
    atom_nodes = _reachable(manager, atom_roots)
    r_entries = sum(
        len(classifier.universe.r(pid))
        for pid in classifier.universe.predicate_ids()
    )
    topology = classifier.dataplane.network.topology
    topology_entries = sum(1 for _ in topology.links()) + sum(
        1 for _ in topology.hosts()
    )
    return MemoryReport(
        predicate_bdd_nodes=len(predicate_nodes),
        atom_bdd_nodes=len(atom_nodes),
        shared_bdd_nodes=len(predicate_nodes & atom_nodes),
        tree_nodes=classifier.tree.node_count(),
        r_entries=r_entries,
        topology_entries=topology_entries,
        cache_entries=manager.cache_stats()["cache_entries"],
    )
