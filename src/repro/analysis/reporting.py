"""Plain-text rendering of the paper's tables and figure series.

Every bench target prints its result through these helpers so the output
reads like the corresponding table/figure of the paper (EXPERIMENTS.md
records the paper-vs-measured comparison).
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["render_table", "render_series", "format_qps", "render_cdf"]


def render_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
) -> str:
    """Fixed-width ASCII table."""
    cells = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in cells:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    divider = "-+-".join("-" * width for width in widths)

    def render_row(row: Sequence[str]) -> str:
        return " | ".join(cell.ljust(width) for cell, width in zip(row, widths))

    lines = [title, render_row(headers), divider]
    lines.extend(render_row(row) for row in cells)
    return "\n".join(lines)


def render_series(
    title: str,
    x_label: str,
    y_label: str,
    points: Sequence[tuple[object, object]],
    max_points: int = 40,
) -> str:
    """A figure series as two columns, downsampled for readability."""
    if len(points) > max_points:
        step = len(points) / max_points
        indices = [int(index * step) for index in range(max_points)]
        if indices[-1] != len(points) - 1:
            indices.append(len(points) - 1)
        points = [points[index] for index in indices]
    rows = [(x, y) for x, y in points]
    return render_table(title, [x_label, y_label], rows)


def render_cdf(
    title: str,
    distribution: Sequence[tuple[float, float]],
    value_label: str = "value",
) -> str:
    """A CDF as (value, percentile) rows."""
    rows = [(f"{value:g}", f"{fraction * 100:.1f}%") for value, fraction in distribution]
    return render_table(title, [value_label, "cumulative"], rows)


def format_qps(qps: float) -> str:
    """Human-readable queries/second (the paper's Kqps/Mqps style)."""
    if qps >= 1e6:
        return f"{qps / 1e6:.2f} Mqps"
    if qps >= 1e3:
        return f"{qps / 1e3:.1f} Kqps"
    return f"{qps:.0f} qps"
