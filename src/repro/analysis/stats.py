"""Statistics helpers for the evaluation harness."""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Callable, Sequence

from ..core.aptree import APTree

__all__ = [
    "cdf",
    "percentile",
    "pearson",
    "DepthStats",
    "measure_batch_throughput",
    "measure_throughput",
    "MIN_ELAPSED_S",
    "ThroughputResult",
]


def cdf(values: Sequence[float]) -> list[tuple[float, float]]:
    """Empirical CDF as (value, cumulative fraction) steps."""
    if not values:
        return []
    ordered = sorted(values)
    n = len(ordered)
    points: list[tuple[float, float]] = []
    for index, value in enumerate(ordered, start=1):
        if points and points[-1][0] == value:
            points[-1] = (value, index / n)
        else:
            points.append((value, index / n))
    return points


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile, ``q`` in [0, 100]."""
    if not values:
        raise ValueError("cannot take a percentile of no data")
    if not 0 <= q <= 100:
        raise ValueError("q must be within [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    position = (len(ordered) - 1) * q / 100.0
    lower = math.floor(position)
    upper = math.ceil(position)
    if lower == upper:
        return float(ordered[lower])
    fraction = position - lower
    return ordered[lower] * (1 - fraction) + ordered[upper] * fraction


def pearson(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Pearson correlation coefficient (Fig. 4's depth/throughput link)."""
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need two equal-length samples of size >= 2")
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var_x = sum((x - mean_x) ** 2 for x in xs)
    var_y = sum((y - mean_y) ** 2 for y in ys)
    if var_x == 0 or var_y == 0:
        raise ValueError("degenerate sample: zero variance")
    return cov / math.sqrt(var_x * var_y)


@dataclass(frozen=True)
class DepthStats:
    """Leaf-depth summary of one AP Tree (Figs. 9-10 material)."""

    average: float
    maximum: int
    count: int
    distribution: tuple[tuple[float, float], ...]  # CDF points

    @classmethod
    def from_tree(cls, tree: APTree) -> "DepthStats":
        depths = list(tree.leaf_depths().values())
        return cls(
            average=sum(depths) / len(depths) if depths else 0.0,
            maximum=max(depths, default=0),
            count=len(depths),
            distribution=tuple(cdf([float(d) for d in depths])),
        )

    def fraction_at_most(self, depth: float) -> float:
        """CDF evaluated at ``depth``."""
        result = 0.0
        for value, fraction in self.distribution:
            if value <= depth:
                result = fraction
            else:
                break
        return result


#: Floor for measured durations when deriving rates.  Dividing by a raw
#: zero (possible on coarse clocks / trivially small traces) used to yield
#: ``float("inf")``, which ``json`` serializes as the non-standard literal
#: ``Infinity`` and strict parsers reject; the floor keeps rates finite.
MIN_ELAPSED_S = 1e-9


@dataclass(frozen=True)
class ThroughputResult:
    """Measured query throughput."""

    queries: int
    elapsed_s: float

    @property
    def qps(self) -> float:
        return self.queries / max(self.elapsed_s, MIN_ELAPSED_S)

    def __repr__(self) -> str:
        return f"ThroughputResult({self.qps:,.0f} qps over {self.queries} queries)"


def measure_throughput(
    query: Callable[[int], object],
    headers: Sequence[int],
    repeat: int = 1,
) -> ThroughputResult:
    """Time ``query`` over a header trace; the paper's Mqps numbers."""
    if not headers:
        raise ValueError("need at least one header")
    started = time.perf_counter()
    for _ in range(repeat):
        for header in headers:
            query(header)
    elapsed = time.perf_counter() - started
    return ThroughputResult(queries=len(headers) * repeat, elapsed_s=elapsed)


def measure_batch_throughput(
    query_batch: Callable[[Sequence[int]], object],
    headers: Sequence[int],
    repeat: int = 1,
) -> ThroughputResult:
    """Time a whole-batch query function over a header trace.

    Counterpart of :func:`measure_throughput` for the compiled engine's
    ``classify_batch``-style entry points, where per-call dispatch would
    misrepresent the achievable rate.
    """
    if not headers:
        raise ValueError("need at least one header")
    started = time.perf_counter()
    for _ in range(repeat):
        query_batch(headers)
    elapsed = time.perf_counter() - started
    return ThroughputResult(queries=len(headers) * repeat, elapsed_s=elapsed)
