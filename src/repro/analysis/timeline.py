"""Timeline summaries for dynamic-throughput experiments (Fig. 14).

Turns a list of :class:`~repro.core.reconstruction.ThroughputSample` into
the quantities the paper discusses: mean throughput, degradation between
reconstructions, and the recovery at each swap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

__all__ = ["TimelineSummary", "summarize_timeline", "SwapRecovery"]


@dataclass(frozen=True)
class SwapRecovery:
    """Throughput around one reconstruction swap."""

    time_s: float
    before_qps: float
    after_qps: float

    @property
    def gain(self) -> float:
        # Floored denominator: a stalled before-window (0 qps) must not
        # produce ``inf``, which breaks strict-JSON result files.
        return self.after_qps / max(self.before_qps, 1e-9)


@dataclass(frozen=True)
class TimelineSummary:
    """Aggregates of one dynamic run."""

    samples: int
    mean_qps: float
    min_qps: float
    max_qps: float
    swaps: tuple[SwapRecovery, ...]

    @property
    def degradation(self) -> float:
        """Worst-case throughput as a fraction of the mean."""
        return self.min_qps / self.mean_qps if self.mean_qps else 0.0

    def describe(self) -> str:
        swap_text = ", ".join(
            f"t={swap.time_s:.2f}s x{swap.gain:.2f}" for swap in self.swaps
        )
        return (
            f"{self.samples} samples, mean {self.mean_qps:,.0f} qps "
            f"(min {self.min_qps:,.0f}, max {self.max_qps:,.0f}); "
            f"swaps: {swap_text or 'none'}"
        )


def summarize_timeline(samples: Sequence, window: int = 3) -> TimelineSummary:
    """Summarize a throughput timeline.

    ``window`` buckets before/after each swap are averaged to estimate the
    recovery factor (single buckets are noisy).
    """
    if not samples:
        raise ValueError("cannot summarize an empty timeline")
    rates = [sample.throughput_qps for sample in samples]
    swaps: list[SwapRecovery] = []
    for index, sample in enumerate(samples):
        if sample.event != "swap":
            continue
        before_slice = rates[max(0, index - window):index]
        after_slice = rates[index + 1:index + 1 + window]
        if not before_slice or not after_slice:
            continue
        swaps.append(
            SwapRecovery(
                time_s=sample.time_s,
                before_qps=sum(before_slice) / len(before_slice),
                after_qps=sum(after_slice) / len(after_slice),
            )
        )
    return TimelineSummary(
        samples=len(samples),
        mean_qps=sum(rates) / len(rates),
        min_qps=min(rates),
        max_qps=max(rates),
        swaps=tuple(swaps),
    )
