"""Versioned binary artifacts: the compiled classifier on disk.

The offline stage (atomic predicates + AP Tree, Fig. 11) dominates
bring-up while the query structures are tiny (Section VII-B).  This
package persists the *compiled* classifier -- program arrays, BDD node
arrays, atom ids and ``R`` sets, the tree, and the network -- in a
checksummed binary container so a restart or standby replica warm-starts
via ``mmap`` zero-copy loads instead of recomputing.

Layers:

* :mod:`.container` -- the byte format: magic, manifest JSON,
  CRC-checked little-endian sections, typed :class:`ArtifactError`\\ s;
* :mod:`.codec` -- classifier <-> container, including the
  serving-only :func:`load_serving` fast path and shared-memory buffer
  loads for the multi-worker serve pool.

Most callers want the :mod:`repro.persist` facade instead, which fronts
this package and the JSON snapshot format behind one ``save``/``load``
pair with format auto-detection.
"""

from .container import (
    FORMAT_VERSION,
    MAGIC,
    Artifact,
    ArtifactCorrupt,
    ArtifactError,
    ArtifactMismatch,
    ArtifactVersionError,
    artifact_from_buffer,
    build_artifact_bytes,
    is_artifact,
    open_artifact,
    write_artifact,
)
from .codec import (
    CLASSIFIER_KIND,
    PAYLOAD_VERSION,
    artifact_bytes,
    describe_artifact,
    load_artifact,
    load_artifact_buffer,
    load_serving,
    load_serving_buffer,
    save_artifact,
)
from .shard import (
    SHARD_KIND,
    SHARD_PAYLOAD_VERSION,
    ShardPlan,
    ShardServing,
    load_shard,
    load_shard_buffer,
    make_shard_plan,
    shard_artifact_bytes,
    write_shard_split,
)

__all__ = [
    "MAGIC",
    "FORMAT_VERSION",
    "PAYLOAD_VERSION",
    "CLASSIFIER_KIND",
    "Artifact",
    "ArtifactError",
    "ArtifactCorrupt",
    "ArtifactVersionError",
    "ArtifactMismatch",
    "artifact_bytes",
    "artifact_from_buffer",
    "build_artifact_bytes",
    "describe_artifact",
    "is_artifact",
    "load_artifact",
    "load_artifact_buffer",
    "load_serving",
    "load_serving_buffer",
    "open_artifact",
    "save_artifact",
    "write_artifact",
    "SHARD_KIND",
    "SHARD_PAYLOAD_VERSION",
    "ShardPlan",
    "ShardServing",
    "load_shard",
    "load_shard_buffer",
    "make_shard_plan",
    "shard_artifact_bytes",
    "write_shard_split",
]
