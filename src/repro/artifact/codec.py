"""Classifier <-> binary artifact codec.

What gets persisted (one section table entry each, see ``container``):

* the network serialization (``network``, JSON bytes) -- stage 2's
  topology and rules, and the provenance everything else is checked
  against via a SHA-256 digest in the manifest;
* every live predicate BDD (``pred_triples``/``pred_offsets``) with its
  ``(kind, box, port)`` slot and original pid in the manifest;
* every atom BDD (``atom_triples``/``atom_offsets``) with explicit atom
  ids -- classification output is atom ids, so ids are preserved
  bit-for-bit, gaps included;
* the ``R`` sets (``r_values``/``r_offsets``), the integer-set form of
  "which atoms make up predicate p" that stage 2's behavior walk and
  every tree-construction decision consume;
* "ghost" predicate BDDs (``ghost_triples``/``ghost_offsets``):
  tombstoned predicates the tree still evaluates after updates, saved
  from the tree nodes themselves and restored under fresh negative
  pids;
* the AP Tree as preorder records (``tree``, via
  :mod:`repro.parallel.snapshot`);
* the compiled engine's arrays (``c_*`` sections) in exactly the layout
  :meth:`CompiledAPTree.from_arrays` adopts zero-copy -- including the
  interleaved fused-program child array.

Load rebuilds the cheap derived state (a ``DataPlane`` over the stored
predicate functions, the ``BehaviorComputer``) and attaches the compiled
engine stamped fresh, so a restart answers its first query from the
mmap'd arrays without recomputing atoms (Fig. 11's cost) or
re-flattening the tree.

Integrity: the container layer already CRC-checks every section.  This
layer adds the payload checks that mirror ``SnapshotMismatch``: a kind
and payload-version gate, the network digest, slot-table agreement
between the stored predicates and the restored data plane, and R-set /
tree references resolving.  ``deep_verify=True`` additionally recompiles
the network from its rules in a scratch manager and compares every
predicate BDD structurally -- the full stale-snapshot defense, priced
accordingly.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from typing import Mapping

from ..bdd import BDDManager, Function
from ..bdd.serialize import dump_node, dump_nodes_flat, load_nodes_flat
from ..core.classifier import APClassifier
from ..core.atomic import AtomicUniverse
from ..core.compiled import CompiledAPTree
from ..network.dataplane import DataPlane
from ..network.serialize import network_from_json, network_to_json
from ..parallel.snapshot import restore_tree, snapshot_tree
from .container import (
    Artifact,
    ArtifactMismatch,
    ArtifactVersionError,
    artifact_from_buffer,
    build_artifact_bytes,
    open_artifact,
    write_artifact,
)

__all__ = [
    "CLASSIFIER_KIND",
    "PAYLOAD_VERSION",
    "save_artifact",
    "artifact_bytes",
    "load_artifact",
    "load_artifact_buffer",
    "load_serving",
    "load_serving_buffer",
    "describe_artifact",
]

CLASSIFIER_KIND = "repro.classifier"
PAYLOAD_VERSION = 1

_LEAF = -1  # mirrors repro.parallel.snapshot's leaf sentinel


def _network_digest(network_bytes: bytes) -> str:
    return hashlib.sha256(network_bytes).hexdigest()


# ----------------------------------------------------------------------
# Save
# ----------------------------------------------------------------------


def _manifest_and_sections(
    classifier: APClassifier, *, backend: str | None = None
) -> tuple[dict, list]:
    dataplane = classifier.dataplane
    universe = classifier.universe
    manager = dataplane.manager

    predicates = dataplane.predicates()  # ascending pid order
    live_pids = {p.pid for p in predicates}
    universe_pids = set(universe.predicate_ids())
    if universe_pids != live_pids:
        raise ArtifactMismatch(
            "universe and data plane disagree on the live predicate set "
            f"({len(universe_pids)} vs {len(live_pids)}); reconstruct() "
            "before saving"
        )
    tree_records = snapshot_tree(classifier.tree, universe)

    # The tree can reference *tombstoned* predicates: after an update
    # removes a predicate, its internal nodes keep evaluating the old
    # BDD until the next rebuild, but the universe and data plane no
    # longer hold its function.  Persist those "ghost" functions from
    # the tree nodes themselves so a restored tree classifies
    # bit-identically to the live one.
    ghost_fns: dict[int, int] = {}
    stack = [classifier.tree.root]
    while stack:
        node = stack.pop()
        if node.is_leaf:
            continue
        assert node.pid is not None
        if node.pid not in live_pids:
            prior = ghost_fns.setdefault(node.pid, node.fn_node)
            if prior != node.fn_node:
                raise ArtifactMismatch(
                    f"tree nodes disagree on tombstoned predicate "
                    f"{node.pid}'s function; reconstruct() before saving"
                )
        assert node.low is not None and node.high is not None
        stack.append(node.low)
        stack.append(node.high)
    ghost_pids = sorted(ghost_fns)

    network_bytes = network_to_json(dataplane.network).encode()

    pred_flat, pred_offsets = dump_nodes_flat(
        manager, [p.fn.node for p in predicates]
    )
    atom_ids = sorted(universe.atom_ids())
    atom_flat, atom_offsets = dump_nodes_flat(
        manager, [universe.atom_fn(a).node for a in atom_ids]
    )
    ghost_flat, ghost_offsets = dump_nodes_flat(
        manager, [ghost_fns[pid] for pid in ghost_pids]
    )
    r_values: list[int] = []
    r_offsets = [0]
    for predicate in predicates:
        r_values.extend(sorted(universe.r(predicate.pid)))
        r_offsets.append(len(r_values))
    tree_flat: list[int] = []
    for record in tree_records:
        tree_flat.extend(record)

    if classifier.compiled_fresh:
        compiled = classifier.compiled
    else:
        compiled = CompiledAPTree.compile(classifier.tree, backend=backend)
    arrays = compiled.to_arrays()

    manifest = {
        "kind": CLASSIFIER_KIND,
        "payload_version": PAYLOAD_VERSION,
        "strategy": classifier.strategy,
        "num_vars": manager.num_vars,
        "network_digest": _network_digest(network_bytes),
        "counts": {
            "predicates": len(predicates),
            "atoms": len(atom_ids),
            "tree_records": len(tree_records),
            "fused_nodes": len(arrays["f_var"]),
            "ghosts": len(ghost_pids),
        },
        "predicates": {
            "pids": [p.pid for p in predicates],
            "slots": [[p.kind, p.box, p.port] for p in predicates],
        },
        "ghosts": {"pids": ghost_pids},
        "compiled": {
            "num_vars": arrays["num_vars"],
            "num_sinks": arrays["num_sinks"],
            "f_root": arrays["f_root"],
            "saved_backend": compiled.backend,
        },
    }
    sections = [
        ("network", "u1", network_bytes),
        ("pred_triples", "i4", pred_flat),
        ("pred_offsets", "i8", pred_offsets),
        ("atom_ids", "i8", atom_ids),
        ("atom_triples", "i4", atom_flat),
        ("atom_offsets", "i8", atom_offsets),
        ("r_values", "i8", r_values),
        ("r_offsets", "i8", r_offsets),
        ("ghost_triples", "i4", ghost_flat),
        ("ghost_offsets", "i8", ghost_offsets),
        ("tree", "i4", tree_flat),
        ("c_pred_entry", "i4", arrays["pred_entry"]),
        ("c_low_idx", "i4", arrays["low_idx"]),
        ("c_high_idx", "i4", arrays["high_idx"]),
        ("c_atom_id", "i8", arrays["atom_id"]),
        ("c_bdd_var", "i4", arrays["bdd_var"]),
        ("c_bdd_low", "i4", arrays["bdd_low"]),
        ("c_bdd_high", "i4", arrays["bdd_high"]),
        ("c_f_var", "i4", arrays["f_var"]),
        ("c_f_child", "i4", arrays["f_child"]),
        ("c_f_atom", "i8", arrays["f_atom"]),
    ]
    return manifest, sections


def artifact_bytes(
    classifier: APClassifier, *, backend: str | None = None
) -> bytes:
    """The classifier as an in-memory artifact blob (shared-memory feed)."""
    manifest, sections = _manifest_and_sections(classifier, backend=backend)
    return build_artifact_bytes(manifest, sections)


def save_artifact(
    classifier: APClassifier,
    path: str | os.PathLike,
    *,
    backend: str | None = None,
    recorder=None,
) -> int:
    """Write the classifier to ``path`` atomically; returns bytes written.

    Compiles the tree first if no fresh compiled engine exists (the
    artifact's point is feeding the compiled fast path on load).
    """
    start = time.perf_counter()
    manifest, sections = _manifest_and_sections(classifier, backend=backend)
    written = write_artifact(path, manifest, sections)
    if recorder is None:
        recorder = classifier.recorder
    if recorder is not None:
        recorder.persist.record_save(written, time.perf_counter() - start)
    return written


# ----------------------------------------------------------------------
# Load
# ----------------------------------------------------------------------


def _check_payload(artifact: Artifact) -> dict:
    manifest = artifact.manifest
    if manifest.get("kind") != CLASSIFIER_KIND:
        raise ArtifactMismatch(
            f"artifact holds {manifest.get('kind')!r}, not a classifier"
        )
    if manifest.get("payload_version") != PAYLOAD_VERSION:
        raise ArtifactVersionError(
            f"classifier payload version {manifest.get('payload_version')!r} "
            f"is not supported (this build reads version {PAYLOAD_VERSION})"
        )
    return manifest


def _network_of(artifact: Artifact, manifest: dict):
    network_bytes = bytes(artifact.section_bytes("network"))
    digest = _network_digest(network_bytes)
    if digest != manifest.get("network_digest"):
        raise ArtifactMismatch(
            "network section does not match the manifest digest "
            f"(stored {manifest.get('network_digest')!r}, actual {digest!r})"
        )
    return network_from_json(network_bytes.decode())


def _compiled_arrays(artifact: Artifact, manifest: dict) -> dict:
    compiled = manifest.get("compiled") or {}
    return {
        "num_vars": compiled.get("num_vars", manifest.get("num_vars")),
        "num_sinks": compiled["num_sinks"],
        "f_root": compiled["f_root"],
        "pred_entry": artifact.section_ints("c_pred_entry"),
        "low_idx": artifact.section_ints("c_low_idx"),
        "high_idx": artifact.section_ints("c_high_idx"),
        "atom_id": artifact.section_ints("c_atom_id"),
        "bdd_var": artifact.section_ints("c_bdd_var"),
        "bdd_low": artifact.section_ints("c_bdd_low"),
        "bdd_high": artifact.section_ints("c_bdd_high"),
        "f_var": artifact.section_ints("c_f_var"),
        "f_child": artifact.section_ints("c_f_child"),
        "f_atom": artifact.section_ints("c_f_atom"),
    }


def _deep_verify_predicates(network, manager, predicates) -> None:
    """Recompile the network in a scratch manager and compare every
    predicate BDD structurally (node identity cannot cross managers, so
    equality is on canonical :func:`dump_node` triples)."""
    recompiled = DataPlane(network)
    live_by_slot = {slot: lp for slot, lp in recompiled.iter_slots()}
    for slot, fn in predicates:
        live = live_by_slot.pop(slot, None)
        if live is None or dump_node(recompiled.manager, live.fn.node) != dump_node(
            manager, fn.node
        ):
            raise ArtifactMismatch(
                f"stored predicate at slot {slot} does not match the "
                "network recompiled from the stored rules"
            )
    if live_by_slot:
        raise ArtifactMismatch(
            "stored predicates and the recompiled network disagree on "
            f"the predicate set ({len(live_by_slot)} slots unaccounted)"
        )


def _restore_classifier(
    artifact: Artifact, *, backend: str | None, deep_verify: bool
) -> APClassifier:
    manifest = _check_payload(artifact)
    network = _network_of(artifact, manifest)
    num_vars = int(manifest.get("num_vars", 0))
    if num_vars != network.layout.total_width:
        raise ArtifactMismatch(
            f"manifest num_vars {num_vars} disagrees with the stored "
            f"network's header layout ({network.layout.total_width} bits)"
        )
    manager = BDDManager(num_vars)

    meta = manifest.get("predicates") or {}
    stored_pids = meta.get("pids") or []
    slots = [tuple(slot) for slot in (meta.get("slots") or [])]
    if len(stored_pids) != len(slots):
        raise ArtifactMismatch("predicate pid/slot tables disagree in length")
    fns = load_nodes_flat(
        manager,
        artifact.section_ints("pred_triples"),
        artifact.section_ints("pred_offsets"),
    )
    if len(fns) != len(slots):
        raise ArtifactMismatch(
            f"{len(fns)} stored predicate BDDs for {len(slots)} slots"
        )
    functions = [Function(manager, node) for node in fns]
    if deep_verify:
        _deep_verify_predicates(network, manager, list(zip(slots, functions)))

    # Rebuild the data plane over the *stored* functions.  DataPlane
    # mints pids box-by-box in network order, so group the stored
    # predicates accordingly and record which stored pid each minted pid
    # corresponds to (stored pids may have gaps after update churn).
    grouped: dict[str, list[tuple[str, str, Function]]] = {
        name: [] for name in network.boxes
    }
    grouped_pids: dict[str, list[int]] = {name: [] for name in network.boxes}
    mint_order: list[int] = []
    for stored_pid, slot, fn in zip(stored_pids, slots, functions):
        kind, box, port = slot
        if box not in grouped:
            raise ArtifactMismatch(
                f"stored predicate slot {slot} names unknown box {box!r}"
            )
        grouped[box].append((kind, port, fn))
        grouped_pids[box].append(int(stored_pid))
        mint_order.append(int(stored_pid))
    if len(set(mint_order)) != len(mint_order):
        raise ArtifactMismatch("stored predicate pids are not unique")
    # DataPlane will mint new pids 0..n-1 walking boxes in network order
    # and each box's precompiled list in our order; map stored -> new.
    order = [pid for name in network.boxes for pid in grouped_pids[name]]
    pid_map = {stored_pid: new_pid for new_pid, stored_pid in enumerate(order)}
    dataplane = DataPlane(network, manager, precompiled=grouped)
    if len(dataplane) != len(slots):
        raise ArtifactMismatch(
            "restored data plane predicate count disagrees with the "
            f"stored slot table ({len(dataplane)} vs {len(slots)})"
        )

    atom_ids = [int(a) for a in artifact.section_ints("atom_ids")]
    atom_nodes = load_nodes_flat(
        manager,
        artifact.section_ints("atom_triples"),
        artifact.section_ints("atom_offsets"),
    )
    if len(atom_nodes) != len(atom_ids):
        raise ArtifactMismatch(
            f"{len(atom_nodes)} stored atom BDDs for {len(atom_ids)} atom ids"
        )
    atoms: Mapping[int, Function] = {
        atom_id: Function(manager, node)
        for atom_id, node in zip(atom_ids, atom_nodes)
    }

    r_values = artifact.section_ints("r_values")
    r_offsets = artifact.section_ints("r_offsets")
    if len(r_offsets) != len(stored_pids) + 1:
        raise ArtifactMismatch("R offsets disagree with the predicate count")
    pred_fns: dict[int, Function] = {}
    r: dict[int, list[int]] = {}
    for index, stored_pid in enumerate(mint_order):
        new_pid = pid_map[stored_pid]
        pred_fns[new_pid] = functions[index]
        lo, hi = int(r_offsets[index]), int(r_offsets[index + 1])
        if lo > hi or hi > len(r_values):
            raise ArtifactMismatch("R offsets are not monotonic")
        r[new_pid] = [int(v) for v in r_values[lo:hi]]
    try:
        universe = AtomicUniverse.assemble_with_ids(
            manager, pred_fns, atoms, r
        )
    except ValueError as exc:
        raise ArtifactMismatch(str(exc)) from None

    # Ghost predicates: functions the tree still evaluates but the
    # universe no longer holds (tombstoned by updates before the save).
    # They get fresh *negative* pids so they can never collide with a
    # pid the restored data plane mints now or later (-1 is the leaf
    # sentinel, so ghosts start at -2).
    ghost_meta = manifest.get("ghosts") or {}
    stored_ghost_pids = [int(p) for p in (ghost_meta.get("pids") or [])]
    if stored_ghost_pids:
        ghost_nodes = load_nodes_flat(
            manager,
            artifact.section_ints("ghost_triples"),
            artifact.section_ints("ghost_offsets"),
        )
        if len(ghost_nodes) != len(stored_ghost_pids):
            raise ArtifactMismatch(
                f"{len(ghost_nodes)} stored ghost BDDs for "
                f"{len(stored_ghost_pids)} ghost pids"
            )
    else:
        ghost_nodes = []
    ghost_pid_map = {
        stored: -(index + 2)
        for index, stored in enumerate(stored_ghost_pids)
    }
    if set(ghost_pid_map) & set(pid_map):
        raise ArtifactMismatch(
            "ghost predicate pids overlap the live predicate pids"
        )
    ghost_fn_nodes = {
        ghost_pid_map[stored]: node
        for stored, node in zip(stored_ghost_pids, ghost_nodes)
    }

    tree_flat = artifact.section_ints("tree")
    if len(tree_flat) % 3:
        raise ArtifactMismatch("tree section is not whole records")
    records: list[list[int]] = []
    for k in range(0, len(tree_flat), 3):
        pid = int(tree_flat[k])
        if pid != _LEAF:
            mapped = pid_map.get(pid)
            if mapped is None:
                mapped = ghost_pid_map.get(pid)
            if mapped is None:
                raise ArtifactMismatch(
                    f"tree references unknown predicate pid {pid}"
                )
            pid = mapped
        records.append([pid, int(tree_flat[k + 1]), int(tree_flat[k + 2])])
    try:
        tree = restore_tree(records, universe, extra_fn_nodes=ghost_fn_nodes)
    except (IndexError, KeyError, ValueError) as exc:
        raise ArtifactMismatch(f"tree section is inconsistent: {exc!r}") from None

    classifier = APClassifier(
        dataplane,
        universe,
        tree,
        strategy=manifest.get("strategy", "oapt"),
    )
    try:
        compiled = CompiledAPTree.from_arrays(
            _compiled_arrays(artifact, manifest), tree=tree, backend=backend
        )
    except (KeyError, ValueError) as exc:
        raise ArtifactMismatch(
            f"compiled sections are inconsistent: {exc!r}"
        ) from None
    classifier.attach_compiled(compiled)
    # The zero-copy arrays alias the artifact's buffer; pin it for the
    # engine's lifetime (mmap pages stay valid, shm blocks stay mapped).
    compiled._buffer_owner = artifact
    return classifier


def load_artifact(
    path: str | os.PathLike,
    *,
    backend: str | None = None,
    use_mmap: bool | None = None,
    verify: bool | None = None,
    deep_verify: bool = False,
    recorder=None,
) -> APClassifier:
    """Restore a full, updatable classifier from an artifact file."""
    start = time.perf_counter()
    artifact = open_artifact(path, use_mmap=use_mmap, verify=verify)
    classifier = _restore_classifier(
        artifact, backend=backend, deep_verify=deep_verify
    )
    if recorder is not None:
        recorder.persist.record_load(
            len(artifact.buffer), time.perf_counter() - start,
            mmapped=artifact.mmapped,
        )
    return classifier


def load_artifact_buffer(
    buffer,
    *,
    backend: str | None = None,
    verify: bool | None = None,
    deep_verify: bool = False,
    source: str = "<buffer>",
) -> APClassifier:
    """Restore a classifier from an in-memory blob (shared memory)."""
    artifact = artifact_from_buffer(buffer, verify=verify, source=source)
    return _restore_classifier(artifact, backend=backend, deep_verify=deep_verify)


def _serving_engine(
    artifact: Artifact, *, backend: str | None
) -> CompiledAPTree:
    manifest = _check_payload(artifact)
    compiled = CompiledAPTree.from_arrays(
        _compiled_arrays(artifact, manifest), tree=None, backend=backend
    )
    compiled._buffer_owner = artifact
    return compiled


def load_serving(
    path: str | os.PathLike,
    *,
    backend: str | None = None,
    use_mmap: bool | None = None,
    verify: bool | None = None,
    recorder=None,
) -> CompiledAPTree:
    """Map just the compiled engine -- the milliseconds warm-start path.

    No BDDs are rebuilt and no network is parsed: the returned
    serving-only :class:`CompiledAPTree` classifies straight out of the
    file's pages.  It cannot answer stage-2 behavior queries or absorb
    updates; standby replicas that need those use :func:`load_artifact`.
    """
    start = time.perf_counter()
    artifact = open_artifact(path, use_mmap=use_mmap, verify=verify)
    engine = _serving_engine(artifact, backend=backend)
    if recorder is not None:
        recorder.persist.record_load(
            len(artifact.buffer), time.perf_counter() - start,
            mmapped=artifact.mmapped,
        )
    return engine


def load_serving_buffer(
    buffer,
    *,
    backend: str | None = None,
    verify: bool | None = None,
    source: str = "<buffer>",
) -> CompiledAPTree:
    """:func:`load_serving` over an in-memory blob (shared memory)."""
    artifact = artifact_from_buffer(buffer, verify=verify, source=source)
    return _serving_engine(artifact, backend=backend)


def describe_artifact(path: str | os.PathLike) -> dict:
    """Manifest-level summary without restoring anything (CLI ``load``)."""
    artifact = open_artifact(path, use_mmap=False, verify=True)
    manifest = _check_payload(artifact)
    counts = manifest.get("counts", {})
    summary = {
        "kind": manifest.get("kind"),
        "payload_version": manifest.get("payload_version"),
        "strategy": manifest.get("strategy"),
        "num_vars": manifest.get("num_vars"),
        "bytes": len(artifact.buffer),
        "sections": artifact.section_names(),
        **{k: counts.get(k) for k in sorted(counts)},
    }
    artifact.close()
    return summary
