"""The binary artifact container: magic, manifest, checksummed sections.

Layout (all integers little-endian)::

    offset 0   magic        8 bytes  b"\\x89APC\\r\\n\\x1a\\n"
    offset 8   version      u32      container format version (gate)
    offset 12  manifest_len u32      length of the manifest JSON
    offset 16  manifest_crc u32      zlib.crc32 of the manifest bytes
    offset 20  manifest     utf-8 JSON (kind, counts, section table, ...)
    ...        sections     raw little-endian data, 8-byte aligned

The PNG-style magic makes truncation and transfer corruption detectable
up front (high bit set, CR/LF, ctrl-Z, LF).  Section offsets in the
manifest are relative to an 8-aligned *data base* that follows the
manifest, so the manifest's own length never perturbs the table it
describes.  Every section carries a ``crc32`` checked on load (skippable
via ``REPRO_ARTIFACT_VERIFY=0`` for trusted local restarts).

Integer sections are typed ``i4``/``i8`` and surface as zero-copy
``numpy.frombuffer`` views when numpy is available (over an ``mmap`` of
the file when permitted), or as ``array.array`` copies under the
pure-stdlib fallback.  Corruption never surfaces as a wrong answer: any
structural problem raises a typed :class:`ArtifactError` subclass.
"""

from __future__ import annotations

import io
import json
import mmap
import os
import struct
import sys
import zlib
from array import array as _stdlib_array
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

from .. import config

try:  # pragma: no cover - exercised via the CI matrix
    if config.numpy_disabled():
        _np = None
    else:
        import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

__all__ = [
    "MAGIC",
    "FORMAT_VERSION",
    "ArtifactError",
    "ArtifactCorrupt",
    "ArtifactVersionError",
    "ArtifactMismatch",
    "Artifact",
    "write_artifact",
    "build_artifact_bytes",
    "open_artifact",
    "artifact_from_buffer",
    "is_artifact",
]

MAGIC = b"\x89APC\r\n\x1a\n"
FORMAT_VERSION = 1

_HEADER = struct.Struct("<8sIII")  # magic, version, manifest_len, manifest_crc
_ALIGN = 8

#: dtype tag -> (struct size, array.array typecode, numpy dtype string)
_DTYPES = {
    "u1": (1, "B", "u1"),
    "i4": (4, "i", "<i4"),
    "i8": (8, "q", "<i8"),
}


class ArtifactError(Exception):
    """Base class for every artifact load/save failure."""


class ArtifactCorrupt(ArtifactError):
    """Truncated file, bad magic, CRC mismatch, malformed manifest."""


class ArtifactVersionError(ArtifactError):
    """The container (or payload) format version is not supported."""


class ArtifactMismatch(ArtifactError):
    """Internally inconsistent payload (the binary analogue of
    :class:`repro.core.snapshots.SnapshotMismatch`)."""


def _align(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def _int_bytes(dtype: str, values) -> bytes:
    """Encode an int sequence as little-endian ``dtype`` bytes."""
    _, typecode, np_dtype = _DTYPES[dtype]
    if _np is not None:
        return _np.asarray(values, dtype=np_dtype).tobytes()
    arr = _stdlib_array(typecode, values)
    if sys.byteorder == "big":  # pragma: no cover - LE everywhere we run
        arr.byteswap()
    return arr.tobytes()


@dataclass(frozen=True)
class _SectionEntry:
    name: str
    dtype: str
    offset: int  # relative to the data base, 8-aligned
    length: int  # in bytes
    crc32: int


class Artifact:
    """A parsed container: manifest plus typed access to its sections."""

    def __init__(
        self,
        manifest: dict,
        buffer,
        data_base: int,
        sections: dict[str, _SectionEntry],
        *,
        source: str = "<buffer>",
        mmapped: bool = False,
    ) -> None:
        self.manifest = manifest
        self.buffer = buffer
        self.mmapped = mmapped
        self._data_base = data_base
        self._sections = sections
        self._source = source

    @property
    def kind(self) -> str:
        return self.manifest.get("kind", "")

    def section_names(self) -> list[str]:
        return list(self._sections)

    def has_section(self, name: str) -> bool:
        return name in self._sections

    def section_bytes(self, name: str) -> memoryview:
        entry = self._sections.get(name)
        if entry is None:
            raise ArtifactMismatch(
                f"{self._source}: missing section {name!r}"
            )
        start = self._data_base + entry.offset
        view = memoryview(self.buffer)[start : start + entry.length]
        if len(view) != entry.length:
            raise ArtifactCorrupt(
                f"{self._source}: truncated section {name!r} "
                f"({len(view)} of {entry.length} bytes)"
            )
        return view

    def section_ints(self, name: str):
        """Section as an int sequence: numpy view (zero-copy) or
        ``array.array`` copy under the stdlib fallback."""
        entry = self._sections.get(name)
        if entry is None:
            raise ArtifactMismatch(
                f"{self._source}: missing section {name!r}"
            )
        size, typecode, np_dtype = _DTYPES[entry.dtype]
        view = self.section_bytes(name)
        if len(view) % size:
            raise ArtifactCorrupt(
                f"{self._source}: section {name!r} length {len(view)} is "
                f"not a multiple of its {size}-byte element"
            )
        if _np is not None:
            return _np.frombuffer(view, dtype=np_dtype)
        arr = _stdlib_array(typecode)
        arr.frombytes(bytes(view))
        if sys.byteorder == "big":  # pragma: no cover
            arr.byteswap()
        return arr

    def verify(self) -> None:
        """Re-check every section CRC (raises :class:`ArtifactCorrupt`)."""
        for entry in self._sections.values():
            actual = zlib.crc32(self.section_bytes(entry.name))
            if actual != entry.crc32:
                raise ArtifactCorrupt(
                    f"{self._source}: CRC mismatch in section "
                    f"{entry.name!r} (stored {entry.crc32:#010x}, "
                    f"actual {actual:#010x})"
                )

    def close(self) -> None:
        """Release an mmap-backed buffer (no-op for plain bytes).

        Only safe once nothing references the section views; loaders
        that hand out zero-copy arrays keep the artifact alive instead.
        """
        if self.mmapped:
            try:
                self.buffer.close()
            except BufferError:  # live views; GC will collect later
                pass

    def __repr__(self) -> str:
        backing = "mmap" if self.mmapped else "bytes"
        return (
            f"Artifact({self.kind!r}, {len(self._sections)} sections, "
            f"{backing}, {self._source})"
        )


# ----------------------------------------------------------------------
# Writing
# ----------------------------------------------------------------------


def build_artifact_bytes(
    manifest: dict, sections: Sequence[tuple[str, str, object]]
) -> bytes:
    """Assemble a container in memory.

    ``sections`` is ``(name, dtype, data)`` with ``dtype`` one of
    ``u1`` (data is bytes-like), ``i4``/``i8`` (data is an int
    sequence).  The manifest must not already carry a section table.
    """
    encoded: list[tuple[str, str, bytes]] = []
    for name, dtype, data in sections:
        if dtype not in _DTYPES:
            raise ValueError(f"unknown section dtype {dtype!r}")
        payload = bytes(data) if dtype == "u1" else _int_bytes(dtype, data)
        encoded.append((name, dtype, payload))

    table = []
    offset = 0
    for name, dtype, payload in encoded:
        offset = _align(offset)
        table.append(
            {
                "name": name,
                "dtype": dtype,
                "offset": offset,
                "length": len(payload),
                "crc32": zlib.crc32(payload),
            }
        )
        offset += len(payload)

    full_manifest = dict(manifest)
    full_manifest["sections"] = table
    manifest_bytes = json.dumps(full_manifest, allow_nan=False).encode()

    out = io.BytesIO()
    out.write(
        _HEADER.pack(
            MAGIC, FORMAT_VERSION, len(manifest_bytes), zlib.crc32(manifest_bytes)
        )
    )
    out.write(manifest_bytes)
    data_base = _align(out.tell())
    out.write(b"\x00" * (data_base - out.tell()))
    for entry, (_, _, payload) in zip(table, encoded):
        pad = data_base + entry["offset"] - out.tell()
        out.write(b"\x00" * pad)
        out.write(payload)
    return out.getvalue()


def write_artifact(
    path: str | os.PathLike,
    manifest: dict,
    sections: Sequence[tuple[str, str, object]],
) -> int:
    """Write a container to ``path`` atomically; returns bytes written.

    The blob lands under a temp name and is ``os.replace``d into place,
    so readers (and the serve worker pool's generation handoff) never
    observe a half-written artifact.
    """
    blob = build_artifact_bytes(manifest, sections)
    path = Path(path)
    tmp = path.with_name(path.name + f".tmp.{os.getpid()}")
    tmp.write_bytes(blob)
    os.replace(tmp, path)
    return len(blob)


# ----------------------------------------------------------------------
# Reading
# ----------------------------------------------------------------------


def is_artifact(prefix: bytes) -> bool:
    """Do these leading bytes look like an artifact container?"""
    return prefix[: len(MAGIC)] == MAGIC


def _parse(buffer, *, source: str, verify: bool, mmapped: bool) -> Artifact:
    size = len(buffer)
    if size < _HEADER.size:
        raise ArtifactCorrupt(
            f"{source}: too short to be an artifact ({size} bytes)"
        )
    magic, version, manifest_len, manifest_crc = _HEADER.unpack_from(buffer, 0)
    if magic != MAGIC:
        raise ArtifactCorrupt(f"{source}: not a repro artifact (bad magic)")
    if version != FORMAT_VERSION:
        raise ArtifactVersionError(
            f"{source}: container version {version} is not supported "
            f"(this build reads version {FORMAT_VERSION})"
        )
    manifest_end = _HEADER.size + manifest_len
    if manifest_end > size:
        raise ArtifactCorrupt(
            f"{source}: truncated manifest ({size - _HEADER.size} of "
            f"{manifest_len} bytes)"
        )
    manifest_bytes = bytes(memoryview(buffer)[_HEADER.size : manifest_end])
    if zlib.crc32(manifest_bytes) != manifest_crc:
        raise ArtifactCorrupt(f"{source}: manifest CRC mismatch")
    try:
        manifest = json.loads(manifest_bytes)
    except ValueError as exc:  # pragma: no cover - crc catches this first
        raise ArtifactCorrupt(f"{source}: malformed manifest JSON: {exc}")
    raw_table = manifest.get("sections")
    if not isinstance(raw_table, list):
        raise ArtifactCorrupt(f"{source}: manifest has no section table")
    data_base = _align(manifest_end)
    sections: dict[str, _SectionEntry] = {}
    for raw in raw_table:
        try:
            entry = _SectionEntry(
                name=raw["name"],
                dtype=raw["dtype"],
                offset=int(raw["offset"]),
                length=int(raw["length"]),
                crc32=int(raw["crc32"]),
            )
        except (TypeError, KeyError) as exc:
            raise ArtifactCorrupt(
                f"{source}: malformed section table entry: {exc!r}"
            ) from None
        if entry.dtype not in _DTYPES:
            raise ArtifactCorrupt(
                f"{source}: section {entry.name!r} has unknown dtype "
                f"{entry.dtype!r}"
            )
        if data_base + entry.offset + entry.length > size:
            raise ArtifactCorrupt(
                f"{source}: section {entry.name!r} extends past the end "
                "of the file (truncated artifact)"
            )
        sections[entry.name] = entry
    artifact = Artifact(
        manifest,
        buffer,
        data_base,
        sections,
        source=source,
        mmapped=mmapped,
    )
    if verify:
        artifact.verify()
    return artifact


def open_artifact(
    path: str | os.PathLike,
    *,
    use_mmap: bool | None = None,
    verify: bool | None = None,
) -> Artifact:
    """Open and validate a container file.

    ``use_mmap=None`` consults ``REPRO_ARTIFACT_MMAP`` (default on);
    mmap is only worth it when numpy can view the buffer in place, so
    the stdlib fallback always reads the file into bytes.  ``verify``
    defaults to ``REPRO_ARTIFACT_VERIFY``.
    """
    path = Path(path)
    if use_mmap is None:
        use_mmap = config.artifact_mmap()
    if verify is None:
        verify = config.artifact_verify()
    try:
        if use_mmap and _np is not None:
            with open(path, "rb") as handle:
                try:
                    buffer = mmap.mmap(
                        handle.fileno(), 0, access=mmap.ACCESS_READ
                    )
                    mmapped = True
                except ValueError:  # empty file cannot be mapped
                    buffer = handle.read()
                    mmapped = False
        else:
            buffer = path.read_bytes()
            mmapped = False
    except OSError as exc:
        raise ArtifactError(f"cannot open artifact {path}: {exc}") from exc
    return _parse(buffer, source=str(path), verify=verify, mmapped=mmapped)


def artifact_from_buffer(
    buffer, *, verify: bool | None = None, source: str = "<buffer>"
) -> Artifact:
    """Parse a container already in memory (e.g. a shared-memory block).

    The buffer may be any object exposing the buffer protocol; section
    views alias it, so it must outlive the artifact (serve workers keep
    the ``SharedMemory`` handle referenced for exactly this reason).
    """
    if verify is None:
        verify = config.artifact_verify()
    return _parse(buffer, source=source, verify=verify, mmapped=False)
