"""Per-shard artifact slices and the shard plan that produces them.

The AP Tree's top levels partition the packet space, so a shallow
prefix cut (:func:`repro.core.compiled.extract_prefix`) is a natural
shard router: every header routes to exactly one *frontier* subtree,
and that subtree alone decides its atom.  This module turns a cut into
a deployable cluster:

* :func:`make_shard_plan` -- extract the prefix, weight each frontier
  by its leaf count, and pack frontiers onto ``N`` shards with a greedy
  longest-processing-time assignment, so shard programs stay balanced
  even when the tree is skewed.
* :func:`shard_artifact_bytes` -- one shard's slice as a binary
  container (kind ``repro.shard``): per-frontier compiled subtree
  programs (the same array layout :class:`~repro.core.compiled.
  CompiledAPTree` persists, concatenated with per-subtree lengths in
  the manifest), the shard's reachable atom ids, and the ``R`` sets
  restricted to those atoms.  A shard backend maps *only its slice* --
  memory per node shrinks with the shard count.
* :class:`ShardServing` / :func:`load_shard_buffer` -- the serving-only
  view a shard replica builds from its slice (zero-copy numpy views of
  a shared-memory block, exactly like :func:`repro.artifact.
  load_serving_buffer`), answering ``(frontier, header)`` queries.

Replication, wire framing, and generation handoff live in
:mod:`repro.serve.shard`; this module is pure data.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

from .. import config
from ..core.compiled import (
    CompiledAPTree,
    TreePrefix,
    extract_prefix,
    prefix_depth_for,
)
from .container import (
    ArtifactMismatch,
    ArtifactVersionError,
    artifact_from_buffer,
    build_artifact_bytes,
    open_artifact,
)

try:  # pragma: no cover - exercised via the CI matrix
    if config.numpy_disabled():
        _np = None
    else:
        import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

__all__ = [
    "SHARD_KIND",
    "SHARD_PAYLOAD_VERSION",
    "ShardPlan",
    "ShardServing",
    "load_shard",
    "load_shard_buffer",
    "make_shard_plan",
    "shard_artifact_bytes",
    "write_shard_split",
]

SHARD_KIND = "repro.shard"
SHARD_PAYLOAD_VERSION = 1

#: Per-subtree program arrays, concatenated per-kind across a shard's
#: frontiers (section name ``s_<name>``); the manifest's per-subtree
#: ``lengths`` table slices them back apart at load time.
_SUBTREE_SECTIONS = (
    ("pred_entry", "i4"),
    ("low_idx", "i4"),
    ("high_idx", "i4"),
    ("atom_id", "i8"),
    ("bdd_var", "i4"),
    ("bdd_low", "i4"),
    ("bdd_high", "i4"),
    ("f_var", "i4"),
    ("f_child", "i4"),
    ("f_atom", "i8"),
)

#: Default frontier-to-shard oversubscription: cutting deep enough for
#: ~4 frontiers per shard gives the greedy packer room to balance.
_FRONTIERS_PER_SHARD = 4


def _as_list(seq) -> list[int]:
    if isinstance(seq, list):
        return seq
    if hasattr(seq, "tolist"):
        return seq.tolist()
    return list(seq)


class ShardPlan:
    """A routing prefix plus the frontier-to-shard assignment.

    The plan is the single source of truth the router and every slice
    are generated from; :attr:`digest` fingerprints it (depth, shard
    count, assignment, variable count) so replicas can refuse slices
    from a different plan generation.
    """

    def __init__(
        self, *, prefix: TreePrefix, assignment: list[int], shards: int
    ) -> None:
        if len(assignment) != prefix.num_frontiers:
            raise ValueError(
                f"assignment covers {len(assignment)} frontiers, prefix "
                f"has {prefix.num_frontiers}"
            )
        self.prefix = prefix
        self.assignment = list(assignment)
        self.shards = shards
        self.depth = prefix.depth
        self.frontiers_of: list[list[int]] = [[] for _ in range(shards)]
        for frontier, shard in enumerate(self.assignment):
            if not 0 <= shard < shards:
                raise ValueError(
                    f"frontier {frontier} assigned to shard {shard} "
                    f"(have {shards})"
                )
            self.frontiers_of[shard].append(frontier)
        self.digest = _plan_digest(
            self.depth, shards, self.assignment, prefix.program.num_vars
        )

    @property
    def num_frontiers(self) -> int:
        return self.prefix.num_frontiers

    def shard_of(self, frontier: int) -> int:
        return self.assignment[frontier]

    def route(self, header: int) -> tuple[int, int]:
        """``(frontier, shard)`` for one packed header."""
        frontier = self.prefix.route(header)
        return frontier, self.assignment[frontier]

    def router_arrays(self) -> dict:
        """Everything a remote router needs (JSON-serializable)."""
        return {
            "router": self.prefix.to_arrays(),
            "assignment": list(self.assignment),
            "shards": self.shards,
            "depth": self.depth,
            "plan_digest": self.digest,
        }

    def __repr__(self) -> str:
        return (
            f"ShardPlan(depth={self.depth}, "
            f"{self.num_frontiers} frontiers -> {self.shards} shards)"
        )


def _plan_digest(
    depth: int, shards: int, assignment: list[int], num_vars: int
) -> str:
    blob = json.dumps([depth, shards, num_vars, assignment]).encode()
    return hashlib.sha256(blob).hexdigest()[:16]


def _balanced_assignment(weights: list[int], shards: int) -> list[int]:
    """Greedy LPT packing: heaviest frontier onto the lightest shard."""
    loads = [0] * shards
    out = [0] * len(weights)
    order = sorted(range(len(weights)), key=lambda i: (-weights[i], i))
    for frontier in order:
        shard = loads.index(min(loads))
        out[frontier] = shard
        loads[shard] += max(1, weights[frontier])
    return out


def make_shard_plan(
    classifier,
    shards: int,
    *,
    depth: int | None = None,
    backend: str | None = None,
) -> ShardPlan:
    """Cut ``classifier``'s tree for ``shards`` backends.

    ``depth=None`` picks the shallowest cut with at least
    ``4 * shards`` frontiers (or the deepest possible cut on tiny
    trees), balancing routing work against packing freedom.
    """
    if shards < 1:
        raise ValueError("shards must be >= 1")
    tree = classifier.tree
    if depth is None:
        depth = prefix_depth_for(tree, _FRONTIERS_PER_SHARD * shards)
    prefix = extract_prefix(tree, depth, backend=backend)
    weights = prefix.frontier_leaf_counts()
    assignment = _balanced_assignment(weights, shards)
    return ShardPlan(prefix=prefix, assignment=assignment, shards=shards)


# ----------------------------------------------------------------------
# Slicing (save side)
# ----------------------------------------------------------------------


def shard_artifact_bytes(
    classifier,
    plan: ShardPlan,
    shard_id: int,
    *,
    backend: str | None = None,
) -> bytes:
    """Shard ``shard_id``'s slice of the classifier as a container blob.

    The slice holds one compiled program per owned frontier (built from
    the live subtree, so it is exact for the current generation), the
    union of atom ids those programs can answer, and every live
    predicate's ``R`` set intersected with that atom set.
    """
    if not 0 <= shard_id < plan.shards:
        raise ValueError(f"shard_id {shard_id} out of range 0..{plan.shards - 1}")
    frontiers = plan.frontiers_of[shard_id]
    num_vars = classifier.dataplane.manager.num_vars

    subtree_meta: list[dict] = []
    flat: dict[str, list[int]] = {name: [] for name, _ in _SUBTREE_SECTIONS}
    shard_atoms: set[int] = set()
    fused_nodes = 0
    for frontier in frontiers:
        program = CompiledAPTree.compile(
            plan.prefix.subtree(frontier), backend=backend
        )
        arrays = program.to_arrays()
        lengths: dict[str, int] = {}
        for name, _dtype in _SUBTREE_SECTIONS:
            data = _as_list(arrays[name])
            flat[name].extend(data)
            lengths[name] = len(data)
        shard_atoms.update(_as_list(arrays["f_atom"]))
        fused_nodes += lengths["f_var"]
        subtree_meta.append(
            {
                "frontier": frontier,
                "num_sinks": arrays["num_sinks"],
                "f_root": arrays["f_root"],
                "lengths": lengths,
            }
        )

    atom_ids = sorted(shard_atoms)
    atom_set = shard_atoms
    universe = classifier.universe
    pids = sorted(universe.predicate_ids())
    r_values: list[int] = []
    r_offsets = [0]
    for pid in pids:
        r_values.extend(sorted(a for a in universe.r(pid) if a in atom_set))
        r_offsets.append(len(r_values))

    manifest = {
        "kind": SHARD_KIND,
        "payload_version": SHARD_PAYLOAD_VERSION,
        "num_vars": num_vars,
        "shard": {
            "id": shard_id,
            "shards": plan.shards,
            "depth": plan.depth,
            "frontiers": list(frontiers),
            "plan_digest": plan.digest,
        },
        "counts": {
            "subtrees": len(frontiers),
            "atoms": len(atom_ids),
            "fused_nodes": fused_nodes,
            "predicates": len(pids),
            "r_values": len(r_values),
        },
        "predicates": {"pids": pids},
        "subtrees": subtree_meta,
    }
    sections = [
        (f"s_{name}", dtype, flat[name]) for name, dtype in _SUBTREE_SECTIONS
    ]
    sections += [
        ("atom_ids", "i8", atom_ids),
        ("r_values", "i8", r_values),
        ("r_offsets", "i8", r_offsets),
    ]
    return build_artifact_bytes(manifest, sections)


def write_shard_split(
    classifier,
    out_dir: str | os.PathLike,
    *,
    shards: int,
    depth: int | None = None,
    backend: str | None = None,
) -> dict:
    """Materialize a full cluster layout under ``out_dir``.

    Writes ``shard-NNN.apc`` per shard plus ``cluster.json`` (router
    arrays, assignment, digest, file list) -- enough for a router
    process on another machine to serve without the source classifier.
    Returns a summary dict (also the CLI's JSON output).
    """
    plan = make_shard_plan(classifier, shards, depth=depth, backend=backend)
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    files: list[str] = []
    total_bytes = 0
    for shard_id in range(plan.shards):
        blob = shard_artifact_bytes(classifier, plan, shard_id, backend=backend)
        name = f"shard-{shard_id:03d}.apc"
        tmp = out / f"{name}.tmp.{os.getpid()}"
        tmp.write_bytes(blob)
        os.replace(tmp, out / name)
        files.append(name)
        total_bytes += len(blob)
    cluster = {
        "kind": "repro.shard-cluster",
        "files": files,
        **plan.router_arrays(),
    }
    (out / "cluster.json").write_text(
        json.dumps(cluster, indent=2, allow_nan=False) + "\n"
    )
    return {
        "out_dir": str(out),
        "shards": plan.shards,
        "depth": plan.depth,
        "frontiers": plan.num_frontiers,
        "plan_digest": plan.digest,
        "files": files + ["cluster.json"],
        "bytes": total_bytes,
    }


# ----------------------------------------------------------------------
# Serving (load side)
# ----------------------------------------------------------------------


class ShardServing:
    """One shard's serving-only engine: frontier id -> compiled subtree.

    Built from a slice container; under numpy every program array is a
    zero-copy view of the backing buffer (a shared-memory block for
    replicas), pinned by the retained artifact reference.
    """

    def __init__(self, *, programs, manifest, artifact) -> None:
        self.programs = programs
        self.manifest = manifest
        self._artifact = artifact  # pins the backing buffer
        shard = manifest.get("shard", {})
        self.shard_id = int(shard.get("id", 0))
        self.shards = int(shard.get("shards", 1))
        self.depth = int(shard.get("depth", 0))
        self.plan_digest = str(shard.get("plan_digest", ""))
        self.frontiers = sorted(programs)
        self.num_vars = int(manifest["num_vars"])

    def atom_ids(self) -> list[int]:
        """Atom ids this shard can answer (sorted)."""
        return [int(a) for a in self._artifact.section_ints("atom_ids")]

    def r_sets(self) -> dict[int, list[int]]:
        """Live-predicate ``R`` sets restricted to this shard's atoms."""
        pids = self.manifest["predicates"]["pids"]
        values = self._artifact.section_ints("r_values")
        offsets = self._artifact.section_ints("r_offsets")
        return {
            int(pid): [int(v) for v in values[offsets[i] : offsets[i + 1]]]
            for i, pid in enumerate(pids)
        }

    def _program(self, frontier: int) -> CompiledAPTree:
        program = self.programs.get(frontier)
        if program is None:
            raise KeyError(
                f"frontier {frontier} is not served by shard "
                f"{self.shard_id} (owns {self.frontiers})"
            )
        return program

    def classify(self, frontier: int, header: int) -> int:
        """Atom id for one header already routed to ``frontier``."""
        return self._program(frontier).classify(header)

    def classify_batch(self, frontiers, headers) -> list[int]:
        """Atom ids for a routed batch (parallel frontier/header lists)."""
        frontiers = _as_list(frontiers)
        n = len(headers)
        out = [0] * n
        groups: dict[int, list[int]] = {}
        for i, frontier in enumerate(frontiers):
            groups.setdefault(frontier, []).append(i)
        for frontier, indices in groups.items():
            program = self._program(frontier)
            atoms = program.classify_batch([headers[i] for i in indices])
            for i, atom in zip(indices, atoms):
                out[i] = atom
        return out

    def classify_batch_array(self, frontiers, headers, out=None):
        """Numpy fast path: ``int64`` atoms for a routed batch.

        ``frontiers`` is an integer array, ``headers`` a ``uint64``
        word array; headers are grouped per frontier with boolean masks
        (the frontier count per shard is small by construction).
        """
        if _np is None:  # pragma: no cover - callers gate on numpy
            raise RuntimeError("classify_batch_array requires numpy")
        frontiers = _np.asarray(frontiers)
        n = len(headers)
        if out is None:
            out = _np.empty(n, dtype=_np.int64)
        handled = 0
        for frontier, program in self.programs.items():
            mask = frontiers == frontier
            count = int(mask.sum())
            if not count:
                continue
            out[mask] = program.classify_batch_array(headers[mask])
            handled += count
        if handled != n:
            unknown = sorted(
                {int(f) for f in frontiers.tolist()} - set(self.programs)
            )
            raise KeyError(
                f"frontiers {unknown} are not served by shard "
                f"{self.shard_id} (owns {self.frontiers})"
            )
        return out

    def __repr__(self) -> str:
        return (
            f"ShardServing(shard {self.shard_id}/{self.shards}, "
            f"{len(self.programs)} subtrees, depth={self.depth})"
        )


def _serving_from_artifact(artifact, *, backend: str | None) -> ShardServing:
    manifest = artifact.manifest
    kind = manifest.get("kind")
    if kind != SHARD_KIND:
        raise ArtifactMismatch(
            f"expected a {SHARD_KIND!r} artifact, found {kind!r}"
        )
    version = manifest.get("payload_version")
    if version != SHARD_PAYLOAD_VERSION:
        raise ArtifactVersionError(
            f"shard payload version {version} is not supported "
            f"(this build reads version {SHARD_PAYLOAD_VERSION})"
        )
    num_vars = int(manifest["num_vars"])
    sections = {
        name: artifact.section_ints(f"s_{name}")
        for name, _dtype in _SUBTREE_SECTIONS
    }
    cursors = {name: 0 for name, _dtype in _SUBTREE_SECTIONS}
    programs: dict[int, CompiledAPTree] = {}
    for sub in manifest.get("subtrees", []):
        arrays: dict = {
            "num_vars": num_vars,
            "num_sinks": int(sub["num_sinks"]),
            "f_root": int(sub["f_root"]),
        }
        lengths = sub["lengths"]
        for name, _dtype in _SUBTREE_SECTIONS:
            start = cursors[name]
            end = start + int(lengths[name])
            section = sections[name]
            if end > len(section):
                raise ArtifactMismatch(
                    f"subtree table overruns section s_{name} "
                    f"({end} > {len(section)})"
                )
            arrays[name] = section[start:end]
            cursors[name] = end
        programs[int(sub["frontier"])] = CompiledAPTree.from_arrays(
            arrays, backend=backend
        )
    for name, _dtype in _SUBTREE_SECTIONS:
        if cursors[name] != len(sections[name]):
            raise ArtifactMismatch(
                f"section s_{name} has {len(sections[name]) - cursors[name]} "
                "trailing elements not covered by the subtree table"
            )
    return ShardServing(programs=programs, manifest=manifest, artifact=artifact)


def load_shard_buffer(
    buffer, *, backend: str | None = None, source: str = "<buffer>"
) -> ShardServing:
    """A shard slice already in memory (e.g. a shared-memory block).

    The buffer must outlive the returned engine: program arrays view it
    zero-copy under numpy.
    """
    artifact = artifact_from_buffer(buffer, source=source)
    return _serving_from_artifact(artifact, backend=backend)


def load_shard(
    path: str | os.PathLike, *, backend: str | None = None
) -> ShardServing:
    """Open a ``shard-NNN.apc`` slice file (mmap when enabled)."""
    artifact = open_artifact(path)
    return _serving_from_artifact(artifact, backend=backend)
