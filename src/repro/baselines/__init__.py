"""Comparator implementations evaluated against AP Classifier.

Each baseline answers the same query -- "what happens to this packet,
network-wide?" -- by a different published mechanism:

* :class:`APLinearClassifier` -- AP Verifier atoms + linear scan (§VII-E);
* :class:`PScanIdentifier` -- evaluate all predicates per query (§VII-E);
* :class:`ForwardingSimulator` -- per-box linear simulation (§VII-D);
* :class:`HsaQuerier` -- Hassel-style header space analysis (§VII-D);
* :class:`VeriflowTrie` -- Veriflow's all-rules trie (§II discussion).
"""

from .aplinear import APLinearClassifier
from .forwarding_sim import ForwardingSimulator, SimulationResult
from .hsa_query import HsaQuerier
from .mdd import MddClassifier
from .netplumber import NetPlumber, Probe
from .pscan import PScanIdentifier
from .veriflow_trie import TrieRule, VeriflowTrie

__all__ = [
    "APLinearClassifier",
    "PScanIdentifier",
    "ForwardingSimulator",
    "SimulationResult",
    "HsaQuerier",
    "VeriflowTrie",
    "TrieRule",
    "MddClassifier",
    "NetPlumber",
    "Probe",
]
