"""APLinear baseline: linear scan over atomic-predicate BDDs.

One possible packet-behavior identifier built from AP Verifier alone
(Sections II and VII-E): compute the atomic predicates, then classify each
query packet by checking it against every atom's BDD until one evaluates
true.  Exact but slow -- atom BDDs are more complex than predicate BDDs and
there is no search structure -- which is precisely why the paper built the
AP Tree.
"""

from __future__ import annotations

from ..core.atomic import AtomicUniverse
from ..core.behavior import Behavior, BehaviorComputer
from ..core.compiled import FlatBDDSet
from ..headerspace.header import Packet
from ..network.dataplane import DataPlane

__all__ = ["APLinearClassifier"]


def _headers_of(packets) -> list[int]:
    """Plain-int headers from packets, arrays, or header sequences.

    A numpy array converts in one bulk ``tolist`` (python ints, no
    per-element numpy scalars); other sequences are unwrapped per
    element only because they may hold :class:`Packet` objects.
    """
    if hasattr(packets, "tolist"):
        return packets.tolist()
    return [
        packet.value if isinstance(packet, Packet) else packet
        for packet in packets
    ]


class APLinearClassifier:
    """AP Verifier's atoms + linear search; stage 2 identical to AP Classifier."""

    def __init__(self, dataplane: DataPlane, universe: AtomicUniverse | None = None) -> None:
        self.dataplane = dataplane
        self.universe = (
            universe
            if universe is not None
            else AtomicUniverse.compute(dataplane.manager, dataplane.predicates())
        )
        self._behavior = BehaviorComputer(dataplane, self.universe)
        self._flat: FlatBDDSet | None = None
        self._flat_atom_ids: list[int] = []

    def classify(self, packet: Packet | int) -> int:
        header = packet.value if isinstance(packet, Packet) else packet
        return self.universe.classify(header)

    def compile(self, backend: str | None = None) -> FlatBDDSet:
        """Flatten the atom BDDs for batched classification.

        Snapshot semantics: the flat set describes the universe as of
        this call; recompile after updates.  Scan order matches
        :meth:`AtomicUniverse.classify` (atom insertion order), so the
        batch path returns identical atom ids.
        """
        atoms = self.universe.atoms()
        self._flat_atom_ids = list(atoms)
        self._flat = FlatBDDSet.compile(
            self.universe.manager,
            [atoms[atom_id].node for atom_id in self._flat_atom_ids],
            backend=backend,
        )
        return self._flat

    def classify_batch(self, packets) -> list[int]:
        """Batched linear scan (compiled when :meth:`compile` was called)."""
        headers = _headers_of(packets)
        if self._flat is None:
            classify = self.universe.classify
            return [classify(header) for header in headers]
        atom_ids = self._flat_atom_ids
        return [
            atom_ids[index] for index in self._flat.first_true_batch(headers)
        ]

    def query(
        self, packet: Packet | int, ingress_box: str, in_port: str | None = None
    ) -> Behavior:
        return self._behavior.compute(self.classify(packet), ingress_box, in_port)
