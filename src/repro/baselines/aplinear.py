"""APLinear baseline: linear scan over atomic-predicate BDDs.

One possible packet-behavior identifier built from AP Verifier alone
(Sections II and VII-E): compute the atomic predicates, then classify each
query packet by checking it against every atom's BDD until one evaluates
true.  Exact but slow -- atom BDDs are more complex than predicate BDDs and
there is no search structure -- which is precisely why the paper built the
AP Tree.
"""

from __future__ import annotations

from ..core.atomic import AtomicUniverse
from ..core.behavior import Behavior, BehaviorComputer
from ..headerspace.header import Packet
from ..network.dataplane import DataPlane

__all__ = ["APLinearClassifier"]


class APLinearClassifier:
    """AP Verifier's atoms + linear search; stage 2 identical to AP Classifier."""

    def __init__(self, dataplane: DataPlane, universe: AtomicUniverse | None = None) -> None:
        self.dataplane = dataplane
        self.universe = (
            universe
            if universe is not None
            else AtomicUniverse.compute(dataplane.manager, dataplane.predicates())
        )
        self._behavior = BehaviorComputer(dataplane, self.universe)

    def classify(self, packet: Packet | int) -> int:
        header = packet.value if isinstance(packet, Packet) else packet
        return self.universe.classify(header)

    def query(
        self, packet: Packet | int, ingress_box: str, in_port: str | None = None
    ) -> Behavior:
        return self._behavior.compute(self.classify(packet), ingress_box, in_port)
