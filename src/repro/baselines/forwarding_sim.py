"""Forwarding Simulation baseline (Section VII-D).

Determines the behavior of a packet by simulating it box by box: at each
visited box the packet is checked against that box's predicates linearly
until matches are found, then the walk continues at the next hop.  Unlike
PScan it only evaluates predicates of boxes actually on the path, but it
still averages ~100-230 BDD evaluations per query on the paper's datasets
versus ~11-17 AP Tree node visits for AP Classifier.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.behavior import (
    DROP_INPUT_ACL,
    DROP_NO_ROUTE,
    DROP_OUTPUT_ACL,
    STOP_LOOP,
    Behavior,
    TraceEdge,
    TraceNode,
)
from ..headerspace.header import Packet
from ..network.dataplane import DataPlane

__all__ = ["ForwardingSimulator", "SimulationResult"]


@dataclass(frozen=True)
class SimulationResult:
    """A behavior plus the evaluation count the paper reports."""

    behavior: Behavior
    predicates_checked: int


class ForwardingSimulator:
    """Per-box linear predicate evaluation along the forwarding path."""

    def __init__(self, dataplane: DataPlane) -> None:
        self.dataplane = dataplane
        self.topology = dataplane.network.topology

    def query(
        self, packet: Packet | int, ingress_box: str, in_port: str | None = None
    ) -> Behavior:
        return self.simulate(packet, ingress_box, in_port).behavior

    def simulate(
        self, packet: Packet | int, ingress_box: str, in_port: str | None = None
    ) -> SimulationResult:
        header = packet.value if isinstance(packet, Packet) else packet
        checked = [0]
        root = self._visit(header, ingress_box, in_port, frozenset(), checked)
        return SimulationResult(
            behavior=Behavior(ingress_box=ingress_box, atom_id=-1, root=root),
            predicates_checked=checked[0],
        )

    def _visit(
        self,
        header: int,
        box: str,
        in_port: str | None,
        on_path: frozenset[str],
        checked: list[int],
    ) -> TraceNode:
        node = TraceNode(box=box, in_port=in_port)
        if in_port is not None:
            acl_in = self.dataplane.input_acl_predicate(box, in_port)
            if acl_in is not None:
                checked[0] += 1
                if not acl_in.fn.evaluate(header):
                    node.dropped = DROP_INPUT_ACL
                    return node
        on_path = on_path | {box}
        forwarded = False
        for entry in self.dataplane.forwarding_entries(box):
            checked[0] += 1
            if not entry.fn.evaluate(header):
                continue
            forwarded = True
            edge = TraceEdge(out_port=entry.port)
            node.edges.append(edge)
            acl_out = self.dataplane.output_acl_predicate(box, entry.port)
            if acl_out is not None:
                checked[0] += 1
                if not acl_out.fn.evaluate(header):
                    edge.stopped = DROP_OUTPUT_ACL
                    continue
            host = self.topology.host_at(box, entry.port)
            if host is not None:
                edge.to_host = host
                continue
            next_ref = self.topology.next_hop(box, entry.port)
            if next_ref is None:
                edge.stopped = "egress"
                continue
            if next_ref.box in on_path:
                edge.stopped = STOP_LOOP
                continue
            edge.child = self._visit(
                header, next_ref.box, next_ref.port, on_path, checked
            )
        if not forwarded:
            node.dropped = DROP_NO_ROUTE
        return node
