"""Header Space Analysis baseline (Hassel-style per-packet reachability).

The paper compares against the open-source Hassel-C implementation of HSA
(Section VII-D): given an input port and a query packet, HSA computes the
packet's reachability tree by pushing a header-space region through
per-box transfer functions built from ternary wildcards.  Each rule's
effective region is its wildcard minus all higher-priority wildcards,
recomputed by ternary set algebra at query time -- roughly three orders of
magnitude slower than an AP Tree search, which is the comparison Fig. 12
makes.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.behavior import (
    DROP_INPUT_ACL,
    DROP_NO_ROUTE,
    DROP_OUTPUT_ACL,
    STOP_LOOP,
    Behavior,
    TraceEdge,
    TraceNode,
)
from ..headerspace.header import Packet
from ..headerspace.wildcard import Wildcard, WildcardSet
from ..network.builder import Network
from ..network.tables import Acl

__all__ = ["HsaQuerier"]


@dataclass(frozen=True)
class _WildcardRule:
    wildcard: Wildcard
    out_ports: tuple[str, ...]


class HsaQuerier:
    """Per-packet reachability via wildcard transfer functions.

    Built directly from the :class:`Network` (not the compiled data
    plane): HSA consumes raw rules, not BDD predicates.
    """

    def __init__(self, network: Network) -> None:
        self.network = network
        self.topology = network.topology
        width = network.layout.total_width
        self.width = width
        # Per box: priority-ordered rule wildcards (transfer function).
        self._transfer: dict[str, list[_WildcardRule]] = {}
        # Per (box, port): permitted header-space region of each ACL.
        self._acl_in: dict[tuple[str, str], WildcardSet] = {}
        self._acl_out: dict[tuple[str, str], WildcardSet] = {}
        for name, box in network.boxes.items():
            self._transfer[name] = [
                _WildcardRule(
                    rule.match.to_wildcard(network.layout), rule.out_ports
                )
                for rule in box.table
            ]
            for port, acl in box.input_acls.items():
                self._acl_in[(name, port)] = self._acl_region(acl)
            for port, acl in box.output_acls.items():
                self._acl_out[(name, port)] = self._acl_region(acl)

    def _acl_region(self, acl: Acl) -> WildcardSet:
        """Permitted region: union of permit rules minus earlier rules."""
        permitted = WildcardSet.empty(self.width)
        covered = WildcardSet.empty(self.width)
        for rule in acl:
            body = rule.match.to_wildcard(self.network.layout)
            if rule.permit:
                region = WildcardSet(self.width, [body])
                for earlier in covered:
                    region = region.subtract_wildcard(earlier)
                permitted = permitted.union(region)
            covered.add(body)
        if acl.default_permit:
            rest = WildcardSet.full(self.width)
            for earlier in covered:
                rest = rest.subtract_wildcard(earlier)
            permitted = permitted.union(rest)
        return permitted

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------

    def query(
        self, packet: Packet | int, ingress_box: str, in_port: str | None = None
    ) -> Behavior:
        """Reachability of a fully specified packet.

        The packet is an exact wildcard region; the propagation machinery
        is the general HSA one (intersection/subtraction over wildcard
        sets), as in Hassel's per-packet mode.
        """
        header = packet.value if isinstance(packet, Packet) else packet
        region = WildcardSet(self.width, [Wildcard.exact(self.width, header)])
        root = self._visit(region, ingress_box, in_port, frozenset())
        return Behavior(ingress_box=ingress_box, atom_id=-1, root=root)

    def _visit(
        self,
        region: WildcardSet,
        box: str,
        in_port: str | None,
        on_path: frozenset[str],
    ) -> TraceNode:
        node = TraceNode(box=box, in_port=in_port)
        if in_port is not None:
            acl_region = self._acl_in.get((box, in_port))
            if acl_region is not None:
                region = self._filter(region, acl_region)
                if region.is_empty:
                    node.dropped = DROP_INPUT_ACL
                    return node
        on_path = on_path | {box}
        remaining = region
        forwarded = False
        for rule in self._transfer[box]:
            if remaining.is_empty:
                break
            matched = remaining.intersect_wildcard(rule.wildcard)
            if matched.is_empty:
                continue
            remaining = remaining.subtract_wildcard(rule.wildcard)
            if not rule.out_ports:
                continue  # explicit drop rule
            forwarded = True
            for port in rule.out_ports:
                node.edges.append(self._emit(matched, box, port, on_path))
        if not forwarded:
            node.dropped = DROP_NO_ROUTE
        return node

    def _emit(
        self,
        region: WildcardSet,
        box: str,
        port: str,
        on_path: frozenset[str],
    ) -> TraceEdge:
        edge = TraceEdge(out_port=port)
        acl_region = self._acl_out.get((box, port))
        if acl_region is not None:
            region = self._filter(region, acl_region)
            if region.is_empty:
                edge.stopped = DROP_OUTPUT_ACL
                return edge
        host = self.topology.host_at(box, port)
        if host is not None:
            edge.to_host = host
            return edge
        next_ref = self.topology.next_hop(box, port)
        if next_ref is None:
            edge.stopped = "egress"
            return edge
        if next_ref.box in on_path:
            edge.stopped = STOP_LOOP
            return edge
        edge.child = self._visit(region, next_ref.box, next_ref.port, on_path)
        return edge

    @staticmethod
    def _filter(region: WildcardSet, allowed: WildcardSet) -> WildcardSet:
        filtered = WildcardSet.empty(region.width)
        for member in allowed:
            filtered = filtered.union(region.intersect_wildcard(member))
        return filtered

    # ------------------------------------------------------------------
    # Region reachability (full HSA, not per-packet)
    # ------------------------------------------------------------------

    def reach_region(
        self,
        region: WildcardSet,
        ingress_box: str,
        in_port: str | None = None,
    ) -> dict[str, WildcardSet]:
        """Which sub-regions of ``region`` reach which hosts.

        This is HSA proper: a whole header-space region is pushed through
        the transfer functions at once, and each host accumulates the
        union of the regions delivered to it. Per-packet queries are the
        degenerate case of an exact region.
        """
        delivered: dict[str, WildcardSet] = {}
        self._propagate_region(region, ingress_box, in_port, frozenset(), delivered)
        return delivered

    def reach_match(
        self, match, ingress_box: str, in_port: str | None = None
    ) -> dict[str, WildcardSet]:
        """Region reachability for a rule-style :class:`Match`."""
        region = WildcardSet(
            self.width, [match.to_wildcard(self.network.layout)]
        )
        return self.reach_region(region, ingress_box, in_port)

    def _propagate_region(
        self,
        region: WildcardSet,
        box: str,
        in_port: str | None,
        on_path: frozenset[str],
        delivered: dict[str, WildcardSet],
    ) -> None:
        if in_port is not None:
            acl_region = self._acl_in.get((box, in_port))
            if acl_region is not None:
                region = self._filter(region, acl_region)
        if region.is_empty:
            return
        on_path = on_path | {box}
        remaining = region
        for rule in self._transfer[box]:
            if remaining.is_empty:
                return
            matched = remaining.intersect_wildcard(rule.wildcard)
            if matched.is_empty:
                continue
            remaining = remaining.subtract_wildcard(rule.wildcard)
            for port in rule.out_ports:
                out_region = matched
                acl_region = self._acl_out.get((box, port))
                if acl_region is not None:
                    out_region = self._filter(out_region, acl_region)
                if out_region.is_empty:
                    continue
                host = self.topology.host_at(box, port)
                if host is not None:
                    existing = delivered.get(host)
                    delivered[host] = (
                        out_region if existing is None else existing.union(out_region)
                    )
                    continue
                next_ref = self.topology.next_hop(box, port)
                if next_ref is None or next_ref.box in on_path:
                    continue
                self._propagate_region(
                    out_region, next_ref.box, next_ref.port, on_path, delivered
                )
