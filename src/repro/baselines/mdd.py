"""MDD packet classifier (Inoue et al., ICNP 2014 style).

The paper's closest prior work [10] classifies packets to equivalence
classes with a multi-valued decision diagram: the header is consumed one
*chunk* (e.g. a byte) per level, so a lookup costs a fixed, tiny number
of table indexings -- faster than an AP Tree search. Its drawbacks, which
motivate AP Classifier, are exactly reproducible here:

* construction is far more expensive (every node expands ``2**chunk``
  branches over the atom set);
* the structure is static -- there is no incremental update; any data
  plane change forces a full rebuild (footnote 2 of the paper).

The MDD is built over the same atomic predicates as the AP Tree, so both
classifiers return identical atom ids -- tests exploit that.
"""

from __future__ import annotations

from ..core.atomic import AtomicUniverse

__all__ = ["MddClassifier"]


class _MddNode:
    """One interior level: ``children[chunk_value] -> node | atom id``.

    Leaves are plain ints (atom ids); interior nodes are ``_MddNode``.
    ``level`` is stored because redundant levels are skipped during
    construction, so a child may sit several chunks below its parent.
    """

    __slots__ = ("level", "children")

    def __init__(self, level: int, children: tuple) -> None:
        self.level = level
        self.children = children


class MddClassifier:
    """Chunk-indexed multi-valued decision diagram over the atoms."""

    def __init__(self, universe: AtomicUniverse, chunk_bits: int = 8) -> None:
        if chunk_bits <= 0:
            raise ValueError("chunk_bits must be positive")
        self.universe = universe
        self.chunk_bits = chunk_bits
        self.width = universe.manager.num_vars
        self.levels = (self.width + chunk_bits - 1) // chunk_bits
        self._node_count = 0
        # Hash-consing: identical (restricted) sub-problems share nodes.
        self._unique: dict[tuple, object] = {}
        manager = universe.manager
        # Work on raw BDD node ids; a "state" is the tuple of each atom's
        # restricted BDD, which fully determines the sub-MDD below it.
        state = tuple(
            (atom_id, fn.node) for atom_id, fn in sorted(universe.atoms().items())
        )
        self._manager = manager
        self.root = self._build(state, level=0)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _restrict_chunk(self, node: int, level: int, value: int) -> int:
        """Restrict a BDD by fixing one chunk of header bits."""
        manager = self._manager
        first_var = level * self.chunk_bits
        bits = min(self.chunk_bits, self.width - first_var)
        for offset in range(bits):
            bit = (value >> (bits - 1 - offset)) & 1
            node = manager.restrict(node, first_var + offset, bool(bit))
        return node

    def _build(self, state: tuple, level: int):
        live = [(atom_id, node) for atom_id, node in state if node != 0]
        if len(live) == 1 and live[0][1] == 1:
            return live[0][0]  # a decided leaf: one atom remains, fully true
        if level >= self.levels:
            # All header bits consumed: exactly one atom must remain TRUE.
            remaining = [atom_id for atom_id, node in live if node == 1]
            if len(remaining) != 1:
                raise RuntimeError("atoms do not partition the header space")
            return remaining[0]
        key = (level, tuple(live))
        cached = self._unique.get(key)
        if cached is not None:
            return cached
        first_var = level * self.chunk_bits
        bits = min(self.chunk_bits, self.width - first_var)
        children = tuple(
            self._build(
                tuple(
                    (atom_id, self._restrict_chunk(node, level, value))
                    for atom_id, node in live
                ),
                level + 1,
            )
            for value in range(1 << bits)
        )
        if all(child is children[0] for child in children):
            node = children[0]  # redundant level: skip it
        else:
            node = _MddNode(level, children)
            self._node_count += 1
        self._unique[key] = node
        return node

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def classify(self, header: int) -> int:
        """Atom id of a packed header; O(levels) table indexings."""
        node = self.root
        width = self.width
        chunk_bits = self.chunk_bits
        while isinstance(node, _MddNode):
            first_var = node.level * chunk_bits
            bits = min(chunk_bits, width - first_var)
            shift = width - first_var - bits
            value = (header >> shift) & ((1 << bits) - 1)
            node = node.children[value]
        return node

    @property
    def node_count(self) -> int:
        return self._node_count

    def __repr__(self) -> str:
        return (
            f"MddClassifier({self.levels} levels x {1 << self.chunk_bits} "
            f"branches, {self._node_count} nodes)"
        )
