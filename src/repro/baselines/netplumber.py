"""NetPlumber-style incremental header space analysis.

NetPlumber (Kazemian et al., NSDI'13) keeps HSA results fresh under rule
churn by maintaining a *plumbing graph*: one node per rule, a *pipe*
between rule ``a`` and rule ``b`` when a packet leaving ``a``'s box on
``a``'s out port can arrive at ``b``'s box and match ``b``, and
intra-table *domination* (higher-priority rules eating part of a rule's
match). When a rule is added or removed, only the pipes and dominations
touching it are recomputed -- not the whole analysis.

This is a scoped reproduction of that design over our wildcard algebra:

* pipes and dominations are maintained fully incrementally;
* reachability (and probes on it) is recomputed on demand by routing
  header-space regions along the maintained pipes -- the NetPlumber
  papers' lazy-probe evaluation, without its flow-delta bookkeeping.

It answers the same questions as :class:`HsaQuerier.reach_region` and the
tests hold the two (plus per-atom results) to agreement under churn.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field as dataclass_field

from ..headerspace.wildcard import Wildcard, WildcardSet
from ..network.builder import Network
from ..network.rules import ForwardingRule

__all__ = ["NetPlumber", "Probe", "RuleNode"]


@dataclass
class RuleNode:
    """One forwarding rule in the plumbing graph."""

    node_id: int
    box: str
    priority: int
    order: int
    wildcard: Wildcard
    out_ports: tuple[str, ...]
    #: Region actually handled by this rule = wildcard minus all
    #: higher-priority rules of the same table (intra-table domination).
    effective: WildcardSet = dataclass_field(default_factory=lambda: None)  # type: ignore[assignment]
    #: Downstream pipes: (out_port, next RuleNode, pipe filter region).
    pipes: list[tuple[str, "RuleNode", WildcardSet]] = dataclass_field(
        default_factory=list
    )

    def dominates(self, other: "RuleNode") -> bool:
        """Match-order precedence within one table."""
        return self.priority > other.priority or (
            self.priority == other.priority and self.order < other.order
        )


@dataclass(frozen=True)
class Probe:
    """A standing reachability assertion re-checked after every update."""

    probe_id: int
    ingress_box: str
    host: str
    region: Wildcard
    #: "exists": some packet of ``region`` must reach ``host``;
    #: "none": no packet of ``region`` may reach ``host``.
    mode: str

    def __post_init__(self) -> None:
        if self.mode not in ("exists", "none"):
            raise ValueError(f"unknown probe mode {self.mode!r}")


class NetPlumber:
    """Plumbing graph with incremental rule updates and standing probes."""

    def __init__(self, network: Network) -> None:
        for box in network.boxes.values():
            if box.input_acls or box.output_acls:
                raise NotImplementedError(
                    "this scoped NetPlumber models forwarding rules only; "
                    "compile ACL-bearing planes with HsaQuerier instead"
                )
        self.network = network
        self.topology = network.topology
        self.width = network.layout.total_width
        self._nodes: dict[int, RuleNode] = {}
        self._by_box: dict[str, list[RuleNode]] = {
            name: [] for name in network.boxes
        }
        self._next_id = 0
        self._next_probe_id = 0
        self._order = itertools.count()
        self._probes: dict[int, Probe] = {}
        self.pipes_recomputed = 0  # instrumentation for incrementality tests
        for name, box in network.boxes.items():
            for rule in box.table:
                self._add_node(name, rule)

    # ------------------------------------------------------------------
    # Graph maintenance
    # ------------------------------------------------------------------

    def _add_node(self, box: str, rule: ForwardingRule) -> RuleNode:
        node = RuleNode(
            node_id=self._next_id,
            box=box,
            priority=rule.priority,
            order=next(self._order),
            wildcard=rule.match.to_wildcard(self.network.layout),
            out_ports=rule.out_ports,
        )
        self._next_id += 1
        self._nodes[node.node_id] = node
        self._by_box.setdefault(box, []).append(node)
        self._refresh_effective(node)
        # The new rule steals region from lower-priority same-table rules;
        # their effective regions shrink, so their pipes must be redone.
        for sibling in self._by_box[box]:
            if sibling is not node and node.dominates(sibling):
                if sibling.wildcard.intersect(node.wildcard) is not None:
                    self._refresh_effective(sibling)
                    self._rebuild_pipes_from(sibling)
        self._rebuild_pipes_from(node)
        self._rebuild_pipes_into(box)
        return node

    def _remove_node(self, node: RuleNode) -> None:
        del self._nodes[node.node_id]
        self._by_box[node.box].remove(node)
        # Rules the victim used to dominate get their region back.
        for sibling in self._by_box[node.box]:
            if node.dominates(sibling) and (
                sibling.wildcard.intersect(node.wildcard) is not None
            ):
                self._refresh_effective(sibling)
                self._rebuild_pipes_from(sibling)
        # Pipes into the victim die with it; upstream pipe lists are
        # pruned lazily (dead nodes are skipped during routing) and
        # compacted here to keep the graph tight.
        for other in self._nodes.values():
            other.pipes = [
                (port, target, region)
                for port, target, region in other.pipes
                if target.node_id in self._nodes
            ]

    def _refresh_effective(self, node: RuleNode) -> None:
        region = WildcardSet(self.width, [node.wildcard])
        for sibling in self._by_box[node.box]:
            if sibling is node or not sibling.dominates(node):
                continue
            region = region.subtract_wildcard(sibling.wildcard)
        node.effective = region

    def _rebuild_pipes_from(self, node: RuleNode) -> None:
        """Recompute the downstream pipes of one rule."""
        self.pipes_recomputed += 1
        node.pipes = []
        for port in node.out_ports:
            next_ref = self.topology.next_hop(node.box, port)
            if next_ref is None:
                continue  # host/egress ports need no pipes
            for target in self._by_box.get(next_ref.box, []):
                overlap = node.effective.intersect_wildcard(target.wildcard)
                if not overlap.is_empty:
                    node.pipes.append((port, target, overlap))

    def _rebuild_pipes_into(self, box: str) -> None:
        """Recompute pipes of every upstream rule that feeds ``box``."""
        for other in self._nodes.values():
            if other.box == box:
                continue
            if any(
                self.topology.next_hop(other.box, port) is not None
                and self.topology.next_hop(other.box, port).box == box
                for port in other.out_ports
            ):
                self._rebuild_pipes_from(other)

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def insert_rule(self, box: str, rule: ForwardingRule) -> list[Probe]:
        """Add a rule; returns the probes violated by the new state."""
        self._add_node(box, rule)
        return self.check_probes()

    def remove_rule(self, box: str, rule: ForwardingRule) -> list[Probe]:
        """Remove a rule; returns the probes violated by the new state."""
        wildcard = rule.match.to_wildcard(self.network.layout)
        victim = next(
            (
                node
                for node in self._by_box.get(box, [])
                if node.priority == rule.priority
                and node.out_ports == rule.out_ports
                and node.wildcard == wildcard
            ),
            None,
        )
        if victim is None:
            raise KeyError(f"rule not present in plumbing graph: {rule}")
        self._remove_node(victim)
        return self.check_probes()

    # ------------------------------------------------------------------
    # Reachability along the pipes
    # ------------------------------------------------------------------

    def reach_region(
        self, region: WildcardSet, ingress_box: str
    ) -> dict[str, WildcardSet]:
        """Host -> delivered region, routed along the plumbing graph."""
        delivered: dict[str, WildcardSet] = {}
        for node in self._by_box.get(ingress_box, []):
            incoming = region.intersect_wildcard(node.wildcard)
            if incoming.is_empty:
                continue
            incoming = self._clip(incoming, node)
            self._route(node, incoming, frozenset(), delivered)
        return delivered

    def _clip(self, region: WildcardSet, node: RuleNode) -> WildcardSet:
        """Restrict a region to the part this rule actually handles."""
        clipped = WildcardSet.empty(self.width)
        for member in node.effective:
            clipped = clipped.union(region.intersect_wildcard(member))
        return clipped

    def _route(
        self,
        node: RuleNode,
        region: WildcardSet,
        on_path: frozenset[str],
        delivered: dict[str, WildcardSet],
    ) -> None:
        if region.is_empty or node.box in on_path:
            return
        on_path = on_path | {node.box}
        for port in node.out_ports:
            host = self.topology.host_at(node.box, port)
            if host is not None:
                existing = delivered.get(host)
                delivered[host] = (
                    region if existing is None else existing.union(region)
                )
        for port, target, pipe_filter in node.pipes:
            if target.node_id not in self._nodes:
                continue  # stale pipe to a removed rule
            passed = WildcardSet.empty(self.width)
            for member in pipe_filter:
                passed = passed.union(region.intersect_wildcard(member))
            passed = self._clip(passed, target)
            self._route(target, passed, on_path, delivered)

    # ------------------------------------------------------------------
    # Probes
    # ------------------------------------------------------------------

    def add_probe(
        self, ingress_box: str, host: str, region: Wildcard, mode: str = "exists"
    ) -> Probe:
        probe = Probe(
            probe_id=self._next_probe_id,
            ingress_box=ingress_box,
            host=host,
            region=region,
            mode=mode,
        )
        self._next_probe_id += 1
        self._probes[probe.probe_id] = probe
        return probe

    def remove_probe(self, probe: Probe) -> None:
        del self._probes[probe.probe_id]

    def check_probes(self) -> list[Probe]:
        """Evaluate all standing probes; returns the violated ones."""
        violated: list[Probe] = []
        by_ingress: dict[str, list[Probe]] = {}
        for probe in self._probes.values():
            by_ingress.setdefault(probe.ingress_box, []).append(probe)
        for ingress, probes in by_ingress.items():
            union = WildcardSet(self.width, [p.region for p in probes])
            delivered = self.reach_region(union, ingress)
            for probe in probes:
                region = delivered.get(probe.host, WildcardSet.empty(self.width))
                hits = region.intersect_wildcard(probe.region)
                if probe.mode == "exists" and hits.is_empty:
                    violated.append(probe)
                elif probe.mode == "none" and not hits.is_empty:
                    violated.append(probe)
        return violated

    def __repr__(self) -> str:
        pipe_count = sum(len(node.pipes) for node in self._nodes.values())
        return (
            f"NetPlumber({len(self._nodes)} rule nodes, {pipe_count} pipes, "
            f"{len(self._probes)} probes)"
        )
