"""PScan baseline: evaluate the query packet against every predicate.

The second comparator of Section VII-E: no atoms, no tree -- for each query
the packet is checked against all ``k`` predicate BDDs, and the resulting
verdict vector drives the same topology walk as stage 2 (with membership
tests replaced by the precomputed verdicts).
"""

from __future__ import annotations

from ..core.behavior import (
    DROP_INPUT_ACL,
    DROP_NO_ROUTE,
    DROP_OUTPUT_ACL,
    STOP_LOOP,
    Behavior,
    TraceEdge,
    TraceNode,
)
from ..core.compiled import FlatBDDSet
from ..headerspace.header import Packet
from ..network.dataplane import DataPlane
from .aplinear import _headers_of

__all__ = ["PScanIdentifier"]


class PScanIdentifier:
    """Full predicate scan per query."""

    def __init__(self, dataplane: DataPlane) -> None:
        self.dataplane = dataplane
        self.topology = dataplane.network.topology
        self._flat: FlatBDDSet | None = None
        self._flat_pids: list[int] = []

    def verdicts(self, packet: Packet | int) -> dict[int, bool]:
        """pid -> does the predicate evaluate true for the packet.

        This is the whole per-query cost of PScan: ``k`` BDD evaluations.
        """
        header = packet.value if isinstance(packet, Packet) else packet
        return {
            predicate.pid: predicate.fn.evaluate(header)
            for predicate in self.dataplane.predicates()
        }

    def compile(self, backend: str | None = None) -> FlatBDDSet:
        """Flatten the predicate BDDs for batched verdict computation.

        Snapshot semantics: describes the data plane as of this call;
        recompile after rule changes.
        """
        labeled = list(self.dataplane.predicates())
        self._flat_pids = [predicate.pid for predicate in labeled]
        self._flat = FlatBDDSet.compile(
            self.dataplane.manager,
            [predicate.fn.node for predicate in labeled],
            backend=backend,
        )
        return self._flat

    def verdict_bits(self, packet: Packet | int) -> int:
        """The verdict vector folded into one int (predicate order of
        :meth:`DataPlane.predicates`; first predicate at the top bit)."""
        header = packet.value if isinstance(packet, Packet) else packet
        acc = 0
        for predicate in self.dataplane.predicates():
            acc = (acc << 1) | predicate.fn.evaluate(header)
        return acc

    def verdict_bits_batch(self, packets) -> list[int]:
        """Batched :meth:`verdict_bits` via the flattened predicate set."""
        headers = _headers_of(packets)
        if self._flat is None:
            verdict_bits = self.verdict_bits
            return [verdict_bits(header) for header in headers]
        return self._flat.truth_bits_batch(headers)

    def query(
        self, packet: Packet | int, ingress_box: str, in_port: str | None = None
    ) -> Behavior:
        verdicts = self.verdicts(packet)
        root = self._visit(verdicts, ingress_box, in_port, frozenset())
        return Behavior(ingress_box=ingress_box, atom_id=-1, root=root)

    def _visit(
        self,
        verdicts: dict[int, bool],
        box: str,
        in_port: str | None,
        on_path: frozenset[str],
    ) -> TraceNode:
        node = TraceNode(box=box, in_port=in_port)
        if in_port is not None:
            acl_in = self.dataplane.input_acl_predicate(box, in_port)
            if acl_in is not None and not verdicts[acl_in.pid]:
                node.dropped = DROP_INPUT_ACL
                return node
        on_path = on_path | {box}
        forwarded = False
        for entry in self.dataplane.forwarding_entries(box):
            if not verdicts[entry.pid]:
                continue
            forwarded = True
            edge = TraceEdge(out_port=entry.port)
            node.edges.append(edge)
            acl_out = self.dataplane.output_acl_predicate(box, entry.port)
            if acl_out is not None and not verdicts[acl_out.pid]:
                edge.stopped = DROP_OUTPUT_ACL
                continue
            host = self.topology.host_at(box, entry.port)
            if host is not None:
                edge.to_host = host
                continue
            next_ref = self.topology.next_hop(box, entry.port)
            if next_ref is None:
                edge.stopped = "egress"
                continue
            if next_ref.box in on_path:
                edge.stopped = STOP_LOOP
                continue
            edge.child = self._visit(verdicts, next_ref.box, next_ref.port, on_path)
        if not forwarded:
            node.dropped = DROP_NO_ROUTE
        return node
