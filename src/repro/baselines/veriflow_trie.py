"""Veriflow-style multi-dimensional trie baseline.

Veriflow (NSDI'13) stores all data plane rules in a prefix trie and, per
query, collects the rules overlapping the queried packet to derive its
equivalence class and forwarding graph.  Section II discusses using this
trie for packet behavior identification: workable but memory-hungry and
slow, since every query walks the trie and then simulates forwarding over
the collected rules.

The trie here is a bit-level binary trie with a third ``*`` branch per
node (the classic ternary trie over header bits).  Rules from all boxes
share one trie; each payload records its box, priority, and action.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.behavior import (
    DROP_INPUT_ACL,
    DROP_NO_ROUTE,
    Behavior,
    STOP_LOOP,
    TraceEdge,
    TraceNode,
)
from ..headerspace.header import Packet
from ..network.builder import Network

__all__ = ["VeriflowTrie", "TrieRule"]


@dataclass(frozen=True)
class TrieRule:
    """One forwarding rule as stored in the trie."""

    box: str
    priority: int
    order: int  # insertion order; earlier wins priority ties
    out_ports: tuple[str, ...]


@dataclass
class _TrieNode:
    zero: "_TrieNode | None" = None
    one: "_TrieNode | None" = None
    star: "_TrieNode | None" = None
    rules: list[TrieRule] = field(default_factory=list)


class VeriflowTrie:
    """All-rules ternary trie plus per-packet forwarding simulation."""

    def __init__(self, network: Network) -> None:
        self.network = network
        self.topology = network.topology
        self.width = network.layout.total_width
        self._root = _TrieNode()
        self._node_count = 1
        self._next_order = 0
        for name, box in network.boxes.items():
            for rule in box.table:
                self.insert_rule(name, rule)

    # ------------------------------------------------------------------
    # Trie maintenance
    # ------------------------------------------------------------------

    def _insert(self, mask: int, value: int, payload: TrieRule) -> None:
        node = self._root
        for position in range(self.width - 1, -1, -1):
            bit = 1 << position
            if not mask & bit:
                branch = "star"
            elif value & bit:
                branch = "one"
            else:
                branch = "zero"
            child = getattr(node, branch)
            if child is None:
                child = _TrieNode()
                setattr(node, branch, child)
                self._node_count += 1
            node = child
        node.rules.append(payload)

    @property
    def node_count(self) -> int:
        return self._node_count

    # ------------------------------------------------------------------
    # Incremental updates (Veriflow sits on the controller's update path)
    # ------------------------------------------------------------------

    def insert_rule(self, box: str, rule) -> TrieRule:
        """Index one forwarding rule; returns the stored payload.

        Does NOT touch the network model -- callers updating a live plane
        mutate the box's table and mirror the change here (as Veriflow
        mirrors switch state).
        """
        wildcard = rule.match.to_wildcard(self.network.layout)
        payload = TrieRule(box, rule.priority, self._next_order, rule.out_ports)
        self._next_order += 1
        self._insert(wildcard.mask, wildcard.value, payload)
        return payload

    def remove_rule(self, box: str, rule) -> None:
        """Un-index one forwarding rule (first matching payload)."""
        wildcard = rule.match.to_wildcard(self.network.layout)
        node = self._root
        for position in range(self.width - 1, -1, -1):
            bit = 1 << position
            if not wildcard.mask & bit:
                branch = "star"
            elif wildcard.value & bit:
                branch = "one"
            else:
                branch = "zero"
            child = getattr(node, branch)
            if child is None:
                raise KeyError(f"rule not indexed: {rule}")
            node = child
        for index, payload in enumerate(node.rules):
            if (
                payload.box == box
                and payload.priority == rule.priority
                and payload.out_ports == rule.out_ports
            ):
                del node.rules[index]
                return
        raise KeyError(f"rule not indexed: {rule}")

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------

    def matching_rules(self, header: int) -> list[TrieRule]:
        """All rules (any box) whose match covers the packet.

        Walks the trie following, at each level, both the packet's bit
        branch and the ``*`` branch -- the per-query cost Veriflow pays.
        """
        matches: list[TrieRule] = []
        frontier = [self._root]
        for position in range(self.width - 1, -1, -1):
            bit_set = bool(header & (1 << position))
            next_frontier: list[_TrieNode] = []
            for node in frontier:
                exact = node.one if bit_set else node.zero
                if exact is not None:
                    next_frontier.append(exact)
                if node.star is not None:
                    next_frontier.append(node.star)
            frontier = next_frontier
            if not frontier:
                return []
        for node in frontier:
            matches.extend(node.rules)
        return matches

    def query(
        self, packet: Packet | int, ingress_box: str, in_port: str | None = None
    ) -> Behavior:
        """Packet behavior from the trie-collected rules.

        ACLs are evaluated from the raw network model (Veriflow's trie
        holds forwarding rules; its ACL handling was out of scope, so this
        baseline consults the model directly, which only makes it faster).
        """
        concrete = (
            packet if isinstance(packet, Packet) else Packet(self.network.layout, packet)
        )
        rules = self.matching_rules(concrete.value)
        by_box: dict[str, TrieRule] = {}
        for rule in rules:
            winner = by_box.get(rule.box)
            if (
                winner is None
                or rule.priority > winner.priority
                or (rule.priority == winner.priority and rule.order < winner.order)
            ):
                by_box[rule.box] = rule
        root = self._visit(concrete, by_box, ingress_box, in_port, frozenset())
        return Behavior(ingress_box=ingress_box, atom_id=-1, root=root)

    def _visit(
        self,
        packet: Packet,
        by_box: dict[str, TrieRule],
        box: str,
        in_port: str | None,
        on_path: frozenset[str],
    ) -> TraceNode:
        node = TraceNode(box=box, in_port=in_port)
        model_box = self.network.box(box)
        if in_port is not None and not model_box.admits(packet, in_port):
            node.dropped = DROP_INPUT_ACL
            return node
        winner = by_box.get(box)
        if winner is None or not winner.out_ports:
            node.dropped = DROP_NO_ROUTE
            return node
        on_path = on_path | {box}
        for port in winner.out_ports:
            edge = TraceEdge(out_port=port)
            node.edges.append(edge)
            if not model_box.emits(packet, port):
                edge.stopped = "output_acl"
                continue
            host = self.topology.host_at(box, port)
            if host is not None:
                edge.to_host = host
                continue
            next_ref = self.topology.next_hop(box, port)
            if next_ref is None:
                edge.stopped = "egress"
                continue
            if next_ref.box in on_path:
                edge.stopped = STOP_LOOP
                continue
            edge.child = self._visit(packet, by_box, next_ref.box, next_ref.port, on_path)
        return node

    # ------------------------------------------------------------------
    # Equivalence classes (Veriflow's per-dimension interval cut)
    # ------------------------------------------------------------------

    def field_boundaries(self) -> dict[str, list[int]]:
        """Per-field sorted cut points induced by all rules and ACLs.

        Veriflow slices each header dimension at every rule boundary; an
        equivalence class is one cell of the resulting grid. Because the
        cut is per-dimension (no cross-field reasoning), the grid is a
        refinement of the true behavioral partition -- it can only have
        *more* classes than the atomic predicates, which is the paper's
        minimality claim in testable form.
        """
        layout = self.network.layout
        boundaries: dict[str, set[int]] = {
            field.name: {0, 1 << field.width} for field in layout.fields
        }

        def add_match(match) -> None:
            for constraint in match.constraints():
                if constraint.prefix_len == 0:
                    continue
                field = layout.field(constraint.field)
                shift = field.width - constraint.prefix_len
                start = (constraint.value >> shift) << shift
                boundaries[constraint.field].add(start)
                boundaries[constraint.field].add(start + (1 << shift))

        for box in self.network.boxes.values():
            for rule in box.table:
                add_match(rule.match)
            for acl in list(box.input_acls.values()) + list(box.output_acls.values()):
                for acl_rule in acl:
                    add_match(acl_rule.match)
        return {name: sorted(values) for name, values in boundaries.items()}

    def equivalence_class_count(self) -> int:
        """Number of grid cells (Veriflow's EC count upper bound)."""
        count = 1
        for cuts in self.field_boundaries().values():
            count *= len(cuts) - 1
        return count

    def equivalence_class_of(self, packet: Packet | int) -> tuple[int, ...]:
        """The grid cell containing a packet, as per-field interval ids."""
        import bisect

        concrete = (
            packet if isinstance(packet, Packet) else Packet(self.network.layout, packet)
        )
        boundaries = self.field_boundaries()
        cell = []
        for field in self.network.layout.fields:
            cuts = boundaries[field.name]
            value = concrete.field(field.name)
            cell.append(bisect.bisect_right(cuts, value) - 1)
        return tuple(cell)

    def __repr__(self) -> str:
        return f"VeriflowTrie({self._node_count} trie nodes)"
