"""Pure-Python ROBDD engine (substrate for all predicates).

The paper represents every packet filter as a BDD (Section III).  This
subpackage is a self-contained replacement for the JDD library the authors
used: a hash-consed manager (:class:`BDDManager`), an operator-friendly
handle type (:class:`Function`), and flat serialization helpers.
"""

from .function import Function
from .manager import FALSE, TRUE, BDDManager
from .serialize import dump_functions, dump_node, load_functions, load_node, to_dot

__all__ = [
    "BDDManager",
    "Function",
    "FALSE",
    "TRUE",
    "dump_node",
    "load_node",
    "dump_functions",
    "load_functions",
    "to_dot",
]
