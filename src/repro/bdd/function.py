"""Operator-friendly wrapper around raw BDD node ids.

:class:`BDDManager` works on bare integers for speed; :class:`Function`
wraps one ``(manager, node)`` pair and gives predicates natural Boolean
syntax (``&``, ``|``, ``~``, ``^``, ``-``).  Two functions compare equal iff
they denote the same Boolean function in the same manager -- hash-consing
makes that a pair of integer comparisons.
"""

from __future__ import annotations

from typing import Iterator

from .manager import FALSE, TRUE, BDDManager

__all__ = ["Function"]


class Function:
    """An immutable Boolean function handle tied to a manager."""

    __slots__ = ("manager", "node")

    def __init__(self, manager: BDDManager, node: int) -> None:
        self.manager = manager
        self.node = node

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def true(cls, manager: BDDManager) -> "Function":
        return cls(manager, TRUE)

    @classmethod
    def false(cls, manager: BDDManager) -> "Function":
        return cls(manager, FALSE)

    @classmethod
    def variable(cls, manager: BDDManager, index: int) -> "Function":
        return cls(manager, manager.var(index))

    @classmethod
    def cube(cls, manager: BDDManager, literals: dict[int, bool]) -> "Function":
        return cls(manager, manager.cube(literals))

    # ------------------------------------------------------------------
    # Boolean algebra
    # ------------------------------------------------------------------

    def _coerce(self, other: "Function") -> int:
        if not isinstance(other, Function):
            raise TypeError(f"expected Function, got {type(other).__name__}")
        if other.manager is not self.manager:
            raise ValueError("cannot combine functions from different managers")
        return other.node

    def __and__(self, other: "Function") -> "Function":
        return Function(self.manager, self.manager.apply_and(self.node, self._coerce(other)))

    def __or__(self, other: "Function") -> "Function":
        return Function(self.manager, self.manager.apply_or(self.node, self._coerce(other)))

    def __xor__(self, other: "Function") -> "Function":
        return Function(self.manager, self.manager.apply_xor(self.node, self._coerce(other)))

    def __sub__(self, other: "Function") -> "Function":
        """Set difference: ``self AND NOT other``."""
        return Function(self.manager, self.manager.apply_diff(self.node, self._coerce(other)))

    def __invert__(self) -> "Function":
        return Function(self.manager, self.manager.negate(self.node))

    def implies(self, other: "Function") -> bool:
        return self.manager.implies(self.node, self._coerce(other))

    def ite(self, then_fn: "Function", else_fn: "Function") -> "Function":
        return Function(
            self.manager,
            self.manager.ite(self.node, self._coerce(then_fn), self._coerce(else_fn)),
        )

    def restrict(self, var: int, value: bool) -> "Function":
        return Function(self.manager, self.manager.restrict(self.node, var, value))

    def exists(self, variables: set[int]) -> "Function":
        """Existentially quantify out ``variables`` (field projection)."""
        return Function(self.manager, self.manager.exists(self.node, variables))

    def forall(self, variables: set[int]) -> "Function":
        """Universally quantify out ``variables``."""
        return Function(self.manager, self.manager.forall(self.node, variables))

    # ------------------------------------------------------------------
    # Predicates about the function
    # ------------------------------------------------------------------

    @property
    def is_false(self) -> bool:
        return self.node == FALSE

    @property
    def is_true(self) -> bool:
        return self.node == TRUE

    def evaluate(self, assignment: int) -> bool:
        return self.manager.evaluate(self.node, assignment)

    def sat_count(self) -> int:
        return self.manager.sat_count(self.node)

    def random_sat(self, rng) -> int:
        return self.manager.random_sat(self.node, rng)

    def first_sat(self) -> int:
        """Smallest satisfying assignment (canonical witness)."""
        return self.manager.first_sat(self.node)

    def count_nodes(self) -> int:
        return self.manager.count_nodes(self.node)

    def support(self) -> set[int]:
        return self.manager.support(self.node)

    def iter_cubes(self) -> Iterator[dict[int, bool]]:
        return self.manager.iter_cubes(self.node)

    def disjoint(self, other: "Function") -> bool:
        return self.manager.apply_and(self.node, self._coerce(other)) == FALSE

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Function)
            and other.manager is self.manager
            and other.node == self.node
        )

    def __hash__(self) -> int:
        return hash((id(self.manager), self.node))

    def __bool__(self) -> bool:
        raise TypeError(
            "Function truth value is ambiguous; use .is_true / .is_false"
        )

    def __repr__(self) -> str:
        if self.is_false:
            body = "FALSE"
        elif self.is_true:
            body = "TRUE"
        else:
            body = f"node={self.node}, size={self.count_nodes()}"
        return f"Function({body})"
