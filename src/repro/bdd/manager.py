"""Hash-consed reduced ordered binary decision diagram (ROBDD) manager.

The paper represents every predicate -- every ACL and every forwarding-table
output port -- as a BDD over the bits of the packet header (Section III,
footnote 3).  The authors used the JDD Java library; this module is a
from-scratch pure-Python replacement providing the same operation set.

Design notes
------------
* Nodes are identified by small integers.  ``0`` and ``1`` are the FALSE and
  TRUE terminals.  Every internal node is a triple ``(var, low, high)`` where
  ``low`` is followed when the variable is 0 and ``high`` when it is 1.
* The manager keeps a *unique table* mapping triples to node ids, so
  structurally equal functions always share the same id.  Equality of Boolean
  functions is therefore integer equality, which the rest of the library
  leans on heavily (e.g. atomic-predicate deduplication).
* Binary operations are computed by the classic memoized Shannon-expansion
  ``apply`` algorithm.  Negation is a memoized terminal swap (no complement
  edges; simplicity wins over the constant-factor saving).
* Variable order is fixed at construction time: variable 0 is closest to the
  root.  Callers lay out header bits most-significant-first per field, which
  keeps prefix-match predicates linear in prefix length.
"""

from __future__ import annotations

from time import perf_counter as _perf_counter
from typing import Iterator

__all__ = ["BDDManager", "DEFAULT_CACHE_LIMIT", "FALSE", "TRUE"]

FALSE = 0
TRUE = 1

# Operator codes for the shared apply cache.  Using small ints keeps the
# cache keys cheap to hash.
_OP_AND = 0
_OP_OR = 1
_OP_XOR = 2
_OP_DIFF = 3

_OP_NAMES = {_OP_AND: "and", _OP_OR: "or", _OP_XOR: "xor", _OP_DIFF: "diff"}

_TERMINAL_VAR = 1 << 30  # sentinel "variable" for terminals; orders last

#: Entries allowed in each memo cache (apply / ite / not) before a
#: size-triggered :meth:`BDDManager.clear_caches`.  The memo caches are
#: pure accelerators -- unlike the unique table they carry no canonicity
#: obligation -- but they referenced every operand pair ever combined, so
#: long dynamic-update runs grew them without bound.  At roughly 200
#: bytes per entry this bounds each cache to ~100 MB worst case.
DEFAULT_CACHE_LIMIT = 1 << 19


class BDDManager:
    """Owns a universe of BDD nodes over ``num_vars`` Boolean variables.

    All node ids returned by one manager are only meaningful within that
    manager.  The manager never garbage-collects nodes; for this workload
    (predicates of a data plane snapshot) the node population is small and
    stable, and keeping ids immortal keeps every cache valid forever.
    """

    def __init__(
        self, num_vars: int, cache_limit: int = DEFAULT_CACHE_LIMIT
    ) -> None:
        if num_vars <= 0:
            raise ValueError(f"num_vars must be positive, got {num_vars}")
        if cache_limit <= 0:
            raise ValueError(f"cache_limit must be positive, got {cache_limit}")
        self.num_vars = num_vars
        #: Per-memo-cache entry budget; crossing it on a top-level
        #: operation clears all three memo caches (see ``clear_caches``).
        self.cache_limit = cache_limit
        #: Optional :class:`repro.obs.Recorder`.  ``None`` (the default)
        #: keeps every hot path on its uninstrumented branch; the off
        #: state costs one attribute check per operation.
        self.recorder = None
        self._cache_clears = 0
        # Evaluation reads variable i at bit position num_vars - 1 - i;
        # cache the shift base so the hot loop never recomputes it.
        self._shift = num_vars - 1
        # Parallel arrays for node fields; indices 0/1 are terminals and the
        # var entries hold a sentinel that sorts after every real variable.
        self._var = [_TERMINAL_VAR, _TERMINAL_VAR]
        self._low = [0, 1]
        self._high = [0, 1]
        self._unique: dict[tuple[int, int, int], int] = {}
        self._apply_cache: dict[tuple[int, int, int], int] = {}
        self._not_cache: dict[int, int] = {}
        self._ite_cache: dict[tuple[int, int, int], int] = {}
        # Single-variable nodes are requested constantly; precompute them.
        self._var_nodes = [self._mk(i, FALSE, TRUE) for i in range(num_vars)]
        self._nvar_nodes = [self._mk(i, TRUE, FALSE) for i in range(num_vars)]
        # Prebound evaluation entry point; see :meth:`make_evaluator`.
        self.evaluate_from = self.make_evaluator()

    # ------------------------------------------------------------------
    # Node construction
    # ------------------------------------------------------------------

    def _mk(self, var: int, low: int, high: int) -> int:
        """Return the node for ``var ? high : low``, reusing or creating it."""
        if low == high:
            return low
        key = (var, low, high)
        node = self._unique.get(key)
        if node is None:
            node = len(self._var)
            self._var.append(var)
            self._low.append(low)
            self._high.append(high)
            self._unique[key] = node
        return node

    def var(self, index: int) -> int:
        """BDD for the single variable ``index``."""
        return self._var_nodes[index]

    def nvar(self, index: int) -> int:
        """BDD for the negation of variable ``index``."""
        return self._nvar_nodes[index]

    # ------------------------------------------------------------------
    # Node inspection
    # ------------------------------------------------------------------

    def top_var(self, node: int) -> int:
        """Topmost variable of ``node`` (sentinel for terminals)."""
        return self._var[node]

    def low(self, node: int) -> int:
        return self._low[node]

    def high(self, node: int) -> int:
        return self._high[node]

    def is_terminal(self, node: int) -> bool:
        return node <= TRUE

    def __len__(self) -> int:
        """Total number of nodes ever created (including terminals)."""
        return len(self._var)

    # ------------------------------------------------------------------
    # Boolean operations
    # ------------------------------------------------------------------

    def apply_and(self, u: int, v: int) -> int:
        return self._top_apply(_OP_AND, u, v)

    def apply_or(self, u: int, v: int) -> int:
        return self._top_apply(_OP_OR, u, v)

    def apply_xor(self, u: int, v: int) -> int:
        return self._top_apply(_OP_XOR, u, v)

    def apply_diff(self, u: int, v: int) -> int:
        """``u AND NOT v`` without materializing ``NOT v``."""
        return self._top_apply(_OP_DIFF, u, v)

    def _top_apply(self, op: int, u: int, v: int) -> int:
        """Top-level apply entry: cache budget check + optional timing.

        Recursive work goes straight to :meth:`_apply`; only the public
        wrappers route through here, so the budget check and the per-op
        clock run once per user-visible operation, not once per node.
        """
        if len(self._apply_cache) >= self.cache_limit:
            self.clear_caches()
        rec = self.recorder
        if rec is None or not rec.time_bdd_ops:
            return self._apply(op, u, v)
        started = _perf_counter()
        result = self._apply(op, u, v)
        rec.bdd.record_op(_OP_NAMES[op], _perf_counter() - started)
        return result

    def _apply(self, op: int, u: int, v: int) -> int:
        # Terminal short-cuts keep the recursion shallow for the common
        # "predicate vs. complement" pattern of atomic-predicate refinement.
        if op == _OP_AND:
            if u == FALSE or v == FALSE:
                return FALSE
            if u == TRUE:
                return v
            if v == TRUE:
                return u
            if u == v:
                return u
            if u > v:  # AND commutes; canonicalize for the cache
                u, v = v, u
        elif op == _OP_OR:
            if u == TRUE or v == TRUE:
                return TRUE
            if u == FALSE:
                return v
            if v == FALSE:
                return u
            if u == v:
                return u
            if u > v:
                u, v = v, u
        elif op == _OP_XOR:
            if u == v:
                return FALSE
            if u == FALSE:
                return v
            if v == FALSE:
                return u
            if u == TRUE:
                return self._negate(v)
            if v == TRUE:
                return self._negate(u)
            if u > v:
                u, v = v, u
        else:  # _OP_DIFF: u AND NOT v
            if u == FALSE or v == TRUE:
                return FALSE
            if v == FALSE:
                return u
            if u == v:
                return FALSE
            if u == TRUE:
                return self._negate(v)

        key = (op, u, v)
        cached = self._apply_cache.get(key)
        rec = self.recorder
        if cached is not None:
            if rec is not None:
                rec.bdd.apply_hits += 1
            return cached
        if rec is not None:
            rec.bdd.apply_misses += 1

        var_u = self._var[u]
        var_v = self._var[v]
        if var_u == var_v:
            result = self._mk(
                var_u,
                self._apply(op, self._low[u], self._low[v]),
                self._apply(op, self._high[u], self._high[v]),
            )
        elif var_u < var_v:
            result = self._mk(
                var_u,
                self._apply(op, self._low[u], v),
                self._apply(op, self._high[u], v),
            )
        else:
            result = self._mk(
                var_v,
                self._apply(op, u, self._low[v]),
                self._apply(op, u, self._high[v]),
            )
        self._apply_cache[key] = result
        return result

    def negate(self, u: int) -> int:
        """Logical NOT, via a memoized terminal swap."""
        if len(self._not_cache) >= self.cache_limit:
            self.clear_caches()
        rec = self.recorder
        if rec is None or not rec.time_bdd_ops:
            return self._negate(u)
        started = _perf_counter()
        result = self._negate(u)
        rec.bdd.record_op("not", _perf_counter() - started)
        return result

    def _negate(self, u: int) -> int:
        if u == FALSE:
            return TRUE
        if u == TRUE:
            return FALSE
        cached = self._not_cache.get(u)
        rec = self.recorder
        if cached is not None:
            if rec is not None:
                rec.bdd.not_hits += 1
            return cached
        if rec is not None:
            rec.bdd.not_misses += 1
        result = self._mk(
            self._var[u], self._negate(self._low[u]), self._negate(self._high[u])
        )
        self._not_cache[u] = result
        self._not_cache[result] = u
        return result

    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else: ``(f AND g) OR (NOT f AND h)``."""
        if len(self._ite_cache) >= self.cache_limit:
            self.clear_caches()
        rec = self.recorder
        if rec is None or not rec.time_bdd_ops:
            return self._ite(f, g, h)
        started = _perf_counter()
        result = self._ite(f, g, h)
        rec.bdd.record_op("ite", _perf_counter() - started)
        return result

    def _ite(self, f: int, g: int, h: int) -> int:
        if f == TRUE:
            return g
        if f == FALSE:
            return h
        if g == h:
            return g
        if g == TRUE and h == FALSE:
            return f
        key = (f, g, h)
        cached = self._ite_cache.get(key)
        rec = self.recorder
        if cached is not None:
            if rec is not None:
                rec.bdd.ite_hits += 1
            return cached
        if rec is not None:
            rec.bdd.ite_misses += 1
        top = min(self._var[f], self._var[g], self._var[h])
        f0, f1 = self._branches(f, top)
        g0, g1 = self._branches(g, top)
        h0, h1 = self._branches(h, top)
        result = self._mk(top, self._ite(f0, g0, h0), self._ite(f1, g1, h1))
        self._ite_cache[key] = result
        return result

    def _branches(self, node: int, var: int) -> tuple[int, int]:
        """Cofactors of ``node`` with respect to ``var``."""
        if self._var[node] == var:
            return self._low[node], self._high[node]
        return node, node

    def implies(self, u: int, v: int) -> bool:
        """True iff the function of ``u`` implies that of ``v``."""
        return self.apply_diff(u, v) == FALSE

    # ------------------------------------------------------------------
    # Cube and cofactor helpers
    # ------------------------------------------------------------------

    def cube(self, literals: dict[int, bool]) -> int:
        """Conjunction of literals given as ``{var_index: polarity}``.

        Built bottom-up in descending variable order so construction is
        linear and needs no apply calls -- the hot path when converting
        thousands of prefix rules.
        """
        node = TRUE
        for index in sorted(literals, reverse=True):
            if literals[index]:
                node = self._mk(index, FALSE, node)
            else:
                node = self._mk(index, node, FALSE)
        return node

    def restrict(self, u: int, var: int, value: bool) -> int:
        """Cofactor of ``u`` with variable ``var`` fixed to ``value``."""
        memo: dict[int, int] = {}

        def walk(node: int) -> int:
            if self._var[node] > var:
                return node
            hit = memo.get(node)
            if hit is not None:
                return hit
            if self._var[node] == var:
                result = self._high[node] if value else self._low[node]
            else:
                result = self._mk(
                    self._var[node],
                    walk(self._low[node]),
                    walk(self._high[node]),
                )
            memo[node] = result
            return result

        return walk(u)

    def exists(self, u: int, variables: set[int]) -> int:
        """Existential quantification over ``variables``.

        ``exists(u, V)`` is true for an assignment iff *some* completion
        of the V-bits satisfies ``u``. Used to project predicates onto a
        subset of header fields (e.g. "which destinations does this
        predicate cover, for any source?").
        """
        if not variables:
            return u
        frozen = frozenset(variables)
        memo: dict[int, int] = {}

        def walk(node: int) -> int:
            if node <= TRUE:
                return node
            hit = memo.get(node)
            if hit is not None:
                return hit
            var = self._var[node]
            low = walk(self._low[node])
            high = walk(self._high[node])
            if var in frozen:
                result = self.apply_or(low, high)
            else:
                result = self._mk(var, low, high)
            memo[node] = result
            return result

        return walk(u)

    def forall(self, u: int, variables: set[int]) -> int:
        """Universal quantification: true iff *every* completion satisfies."""
        if not variables:
            return u
        frozen = frozenset(variables)
        memo: dict[int, int] = {}

        def walk(node: int) -> int:
            if node <= TRUE:
                return node
            hit = memo.get(node)
            if hit is not None:
                return hit
            var = self._var[node]
            low = walk(self._low[node])
            high = walk(self._high[node])
            if var in frozen:
                result = self.apply_and(low, high)
            else:
                result = self._mk(var, low, high)
            memo[node] = result
            return result

        return walk(u)

    # ------------------------------------------------------------------
    # Evaluation and model counting
    # ------------------------------------------------------------------

    def evaluate(self, u: int, assignment: int) -> bool:
        """Evaluate ``u`` under a packed assignment.

        ``assignment`` carries variable ``i`` in bit position
        ``num_vars - 1 - i`` so that the integer reads naturally as the
        packet header with variable 0 as the most significant bit.  This is
        the single hottest operation of the whole library: every AP Tree
        node visit and every linear-scan baseline step lands here.  Hot
        loops should prefer :attr:`evaluate_from`, which has the node
        arrays and shift prebound.
        """
        var = self._var
        low = self._low
        high = self._high
        shift = self._shift
        while u > TRUE:
            if (assignment >> (shift - var[u])) & 1:
                u = high[u]
            else:
                u = low[u]
        return u == TRUE

    def make_evaluator(self):
        """Build ``evaluate_from(entry, header)`` with prebound locals.

        The closure captures the node arrays and the shift base once, so
        repeated calls skip every ``self.`` lookup of :meth:`evaluate`.
        It stays valid as the manager grows: the arrays are only ever
        appended to in place, never replaced.  An instance is installed as
        :attr:`evaluate_from` at construction.
        """
        var = self._var
        low = self._low
        high = self._high
        shift = self._shift

        def evaluate_from(entry: int, assignment: int) -> bool:
            u = entry
            while u > TRUE:
                if (assignment >> (shift - var[u])) & 1:
                    u = high[u]
                else:
                    u = low[u]
            return u == TRUE

        return evaluate_from

    def node_arrays(self) -> tuple[list[int], list[int], list[int]]:
        """The live ``(var, low, high)`` parallel lists.

        Read-only views for compilers that flatten BDDs into other
        layouts (:mod:`repro.core.compiled`); mutating them corrupts the
        manager.
        """
        return self._var, self._low, self._high

    def sat_count(self, u: int) -> int:
        """Number of satisfying assignments over all ``num_vars`` variables."""
        if u == FALSE:
            return 0
        if u == TRUE:
            return 1 << self.num_vars
        memo: dict[int, int] = {}

        def models(node: int) -> int:
            """Models of ``node`` over variables var(node)..num_vars-1."""
            if node == FALSE:
                return 0
            if node == TRUE:
                return 1
            hit = memo.get(node)
            if hit is not None:
                return hit
            var = self._var[node]
            lo, hi = self._low[node], self._high[node]
            result = (models(lo) << (self._gap(var, lo) - 1)) + (
                models(hi) << (self._gap(var, hi) - 1)
            )
            memo[node] = result
            return result

        # Scale for variables skipped above the root.
        return models(u) << (self._gap(-1, u) - 1)

    def _gap(self, var: int, node: int) -> int:
        """Number of variable levels skipped from ``var`` down to ``node``."""
        below = self.num_vars if node <= TRUE else self._var[node]
        return below - var

    def random_sat(self, u: int, rng) -> int:
        """Sample a uniformly random satisfying assignment of ``u``.

        Returns a packed integer in the same layout as :meth:`evaluate`.
        Used by workload generators to synthesize packets "randomly with
        respect to the atomic predicates" (Section VII-D).
        """
        if u == FALSE:
            raise ValueError("cannot sample from an unsatisfiable BDD")
        memo: dict[int, int] = {}

        def models(node: int) -> int:
            if node == FALSE:
                return 0
            if node == TRUE:
                return 1
            hit = memo.get(node)
            if hit is None:
                var = self._var[node]
                hit = models(self._low[node]) << (
                    self._gap(var, self._low[node]) - 1
                )
                hit += models(self._high[node]) << (
                    self._gap(var, self._high[node]) - 1
                )
                memo[node] = hit
            return hit

        assignment = 0
        shift = self.num_vars - 1
        var = 0
        node = u
        while var < self.num_vars:
            if node <= TRUE or self._var[node] > var:
                # Variable unconstrained here: flip a fair coin.
                if rng.random() < 0.5:
                    assignment |= 1 << (shift - var)
                var += 1
                continue
            lo, hi = self._low[node], self._high[node]
            lo_weight = models(lo) << (self._gap(var, lo) - 1)
            hi_weight = models(hi) << (self._gap(var, hi) - 1)
            total = lo_weight + hi_weight
            if rng.randrange(total) < hi_weight:
                assignment |= 1 << (shift - var)
                node = hi
            else:
                node = lo
            var += 1
        return assignment

    def first_sat(self, u: int) -> int:
        """The smallest satisfying assignment of ``u`` as a packed integer.

        Walks from the root preferring the low (0) branch whenever it is
        satisfiable; variables the BDD does not constrain stay 0.  Because
        variable ``i`` sits at bit ``num_vars - 1 - i``, this greedy walk
        yields the numerically minimal witness -- a canonical, label-free
        representative of the satisfying set, which the parallel pipeline
        uses both to locate overlapping atoms during universe merges and
        to renumber atoms deterministically.
        """
        if u == FALSE:
            raise ValueError("cannot extract a witness from an unsatisfiable BDD")
        assignment = 0
        shift = self._shift
        node = u
        while node > TRUE:
            low = self._low[node]
            if low != FALSE:
                node = low
            else:
                assignment |= 1 << (shift - self._var[node])
                node = self._high[node]
        return assignment

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------

    def count_nodes(self, u: int) -> int:
        """Number of distinct nodes reachable from ``u`` (incl. terminals)."""
        seen: set[int] = set()
        stack = [u]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            if node > TRUE:
                stack.append(self._low[node])
                stack.append(self._high[node])
        return len(seen)

    def support(self, u: int) -> set[int]:
        """Set of variable indices the function of ``u`` depends on."""
        result: set[int] = set()
        seen: set[int] = set()
        stack = [u]
        while stack:
            node = stack.pop()
            if node <= TRUE or node in seen:
                continue
            seen.add(node)
            result.add(self._var[node])
            stack.append(self._low[node])
            stack.append(self._high[node])
        return result

    def iter_cubes(self, u: int) -> Iterator[dict[int, bool]]:
        """Yield the cubes (partial assignments) of each path to TRUE."""
        path: dict[int, bool] = {}

        def walk(node: int) -> Iterator[dict[int, bool]]:
            if node == FALSE:
                return
            if node == TRUE:
                yield dict(path)
                return
            var = self._var[node]
            path[var] = False
            yield from walk(self._low[node])
            path[var] = True
            yield from walk(self._high[node])
            del path[var]

        yield from walk(u)

    def cache_stats(self) -> dict[str, int]:
        """Sizes of the internal caches, for memory accounting."""
        return {
            "nodes": len(self._var),
            "unique_table": len(self._unique),
            "apply_cache": len(self._apply_cache),
            "not_cache": len(self._not_cache),
            "ite_cache": len(self._ite_cache),
            "cache_entries": (
                len(self._apply_cache)
                + len(self._not_cache)
                + len(self._ite_cache)
            ),
            "cache_limit": self.cache_limit,
            "cache_clears": self._cache_clears,
        }

    def clear_caches(self) -> None:
        """Drop the apply/ite/not memo caches.

        The *unique table* is untouched -- node ids are immortal and every
        previously returned id stays canonical -- so clearing costs only
        recomputation, never correctness.  Called automatically when any
        memo cache crosses :attr:`cache_limit` (long dynamic-update runs
        otherwise grow them without bound), and available to callers that
        want a deterministic memory floor between phases.
        """
        self._apply_cache.clear()
        self._not_cache.clear()
        self._ite_cache.clear()
        self._cache_clears += 1
        rec = self.recorder
        if rec is not None:
            rec.bdd.cache_clears += 1
