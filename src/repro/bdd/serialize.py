"""Flat serialization of BDD functions for snapshotting and debugging.

A serialized function is a topologically ordered list of
``(var, low_ref, high_ref)`` triples where references index earlier entries
(with ``-2``/``-1`` denoting FALSE/TRUE).  This is enough to move predicate
sets between processes (e.g. the reconstruction process of Section VI-B) or
persist a data plane snapshot to disk.
"""

from __future__ import annotations

import json
from typing import Sequence

from .function import Function
from .manager import FALSE, TRUE, BDDManager

__all__ = [
    "dump_node",
    "load_node",
    "dump_functions",
    "load_functions",
    "to_dot",
]

_FALSE_REF = -2
_TRUE_REF = -1


def dump_node(manager: BDDManager, node: int) -> list[tuple[int, int, int]]:
    """Flatten the DAG under ``node`` into a list of triples.

    The postorder walk uses an explicit stack: a node stays on the stack
    until both children are indexed, then gets its slot.  Deep BDDs (a
    chain cube has one level per constrained variable) would blow the
    interpreter's recursion limit otherwise, and serialization is exactly
    what wide synthetic datasets hit when they ship predicates between
    worker processes.
    """
    order: list[int] = []
    index: dict[int, int] = {}
    stack = [node]
    while stack:
        current = stack[-1]
        if current <= TRUE or current in index:
            stack.pop()
            continue
        low = manager.low(current)
        high = manager.high(current)
        ready = True
        if high > TRUE and high not in index:
            stack.append(high)
            ready = False
        if low > TRUE and low not in index:
            stack.append(low)
            ready = False
        if ready:
            stack.pop()
            index[current] = len(order)
            order.append(current)

    def ref(current: int) -> int:
        if current == FALSE:
            return _FALSE_REF
        if current == TRUE:
            return _TRUE_REF
        return index[current]

    triples = [
        (manager.top_var(n), ref(manager.low(n)), ref(manager.high(n)))
        for n in order
    ]
    # The root must be resolvable by the loader: encode it as a final ref.
    triples.append((-1, ref(node), ref(node)))
    return triples


def load_node(manager: BDDManager, triples: Sequence[Sequence[int]]) -> int:
    """Rebuild a node in ``manager`` from :func:`dump_node` output."""
    if not triples:
        raise ValueError("empty serialization")
    built: list[int] = []

    def deref(ref: int) -> int:
        if ref == _FALSE_REF:
            return FALSE
        if ref == _TRUE_REF:
            return TRUE
        return built[ref]

    *body, root_marker = triples
    for var, low_ref, high_ref in body:
        built.append(manager._mk(var, deref(low_ref), deref(high_ref)))
    marker_var, root_ref, _ = root_marker
    if marker_var != -1:
        raise ValueError("malformed serialization: missing root marker")
    return deref(root_ref)


def to_dot(
    manager: BDDManager,
    node: int,
    name: str = "bdd",
    var_names: dict[int, str] | None = None,
) -> str:
    """Render the DAG under ``node`` as Graphviz DOT (debugging aid).

    Dashed edges are the low (false) branch, solid edges the high (true)
    branch, following the usual BDD drawing convention.
    """
    lines = [f"digraph {name} {{", "  rankdir=TB;"]
    lines.append('  node_F [label="0", shape=box];')
    lines.append('  node_T [label="1", shape=box];')
    seen: set[int] = set()

    def label(current: int) -> str:
        if current == FALSE:
            return "node_F"
        if current == TRUE:
            return "node_T"
        return f"node_{current}"

    def visit(current: int) -> None:
        if current <= TRUE or current in seen:
            return
        seen.add(current)
        var = manager.top_var(current)
        var_label = (var_names or {}).get(var, f"x{var}")
        lines.append(f'  node_{current} [label="{var_label}", shape=circle];')
        low, high = manager.low(current), manager.high(current)
        lines.append(f"  node_{current} -> {label(low)} [style=dashed];")
        lines.append(f"  node_{current} -> {label(high)};")
        visit(low)
        visit(high)

    visit(node)
    lines.append("}")
    return "\n".join(lines)


def dump_functions(functions: Sequence[Function]) -> str:
    """Serialize functions sharing one manager to a JSON string."""
    if not functions:
        return json.dumps({"num_vars": 0, "functions": []})
    manager = functions[0].manager
    for fn in functions:
        if fn.manager is not manager:
            raise ValueError("all functions must share one manager")
    payload = {
        "num_vars": manager.num_vars,
        "functions": [dump_node(manager, fn.node) for fn in functions],
    }
    return json.dumps(payload)


def load_functions(text: str, manager: BDDManager | None = None) -> list[Function]:
    """Inverse of :func:`dump_functions`; creates a manager if none given."""
    payload = json.loads(text)
    if manager is None:
        manager = BDDManager(max(payload["num_vars"], 1))
    elif payload["functions"] and manager.num_vars != payload["num_vars"]:
        raise ValueError(
            f"manager has {manager.num_vars} vars, payload needs "
            f"{payload['num_vars']}"
        )
    return [
        Function(manager, load_node(manager, triples))
        for triples in payload["functions"]
    ]
