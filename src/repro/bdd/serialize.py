"""Flat serialization of BDD functions for snapshotting and debugging.

A serialized function is a topologically ordered list of
``(var, low_ref, high_ref)`` triples where references index earlier entries
(with ``-2``/``-1`` denoting FALSE/TRUE).  This is enough to move predicate
sets between processes (e.g. the reconstruction process of Section VI-B) or
persist a data plane snapshot to disk.
"""

from __future__ import annotations

import json
from typing import Sequence

from .function import Function
from .manager import FALSE, TRUE, BDDManager

__all__ = [
    "dump_node",
    "load_node",
    "dump_nodes_flat",
    "load_nodes_flat",
    "dump_functions",
    "load_functions",
    "to_dot",
]

_FALSE_REF = -2
_TRUE_REF = -1


def dump_node(manager: BDDManager, node: int) -> list[tuple[int, int, int]]:
    """Flatten the DAG under ``node`` into a list of triples.

    The postorder walk uses an explicit stack: a node stays on the stack
    until both children are indexed, then gets its slot.  Deep BDDs (a
    chain cube has one level per constrained variable) would blow the
    interpreter's recursion limit otherwise, and serialization is exactly
    what wide synthetic datasets hit when they ship predicates between
    worker processes.
    """
    order: list[int] = []
    index: dict[int, int] = {}
    stack = [node]
    while stack:
        current = stack[-1]
        if current <= TRUE or current in index:
            stack.pop()
            continue
        low = manager.low(current)
        high = manager.high(current)
        ready = True
        if high > TRUE and high not in index:
            stack.append(high)
            ready = False
        if low > TRUE and low not in index:
            stack.append(low)
            ready = False
        if ready:
            stack.pop()
            index[current] = len(order)
            order.append(current)

    def ref(current: int) -> int:
        if current == FALSE:
            return _FALSE_REF
        if current == TRUE:
            return _TRUE_REF
        return index[current]

    triples = [
        (manager.top_var(n), ref(manager.low(n)), ref(manager.high(n)))
        for n in order
    ]
    # The root must be resolvable by the loader: encode it as a final ref.
    triples.append((-1, ref(node), ref(node)))
    return triples


def load_node(manager: BDDManager, triples: Sequence[Sequence[int]]) -> int:
    """Rebuild a node in ``manager`` from :func:`dump_node` output."""
    if not triples:
        raise ValueError("empty serialization")
    built: list[int] = []

    def deref(ref: int) -> int:
        if ref == _FALSE_REF:
            return FALSE
        if ref == _TRUE_REF:
            return TRUE
        return built[ref]

    *body, root_marker = triples
    for var, low_ref, high_ref in body:
        built.append(manager._mk(var, deref(low_ref), deref(high_ref)))
    marker_var, root_ref, _ = root_marker
    if marker_var != -1:
        raise ValueError("malformed serialization: missing root marker")
    return deref(root_ref)


def dump_nodes_flat(
    manager: BDDManager, nodes: Sequence[int]
) -> tuple[list[int], list[int]]:
    """Concatenate :func:`dump_node` output for many roots into one flat
    int list (3 ints per triple, root markers included) plus offsets.

    ``offsets`` has ``len(nodes) + 1`` entries in *triple* units:
    function ``i`` occupies flat triples ``offsets[i]:offsets[i+1]``.
    This is the shape the binary artifact stores -- two integer sections
    instead of per-function JSON.
    """
    flat: list[int] = []
    extend = flat.extend
    offsets = [0]
    for node in nodes:
        for triple in dump_node(manager, node):
            extend(triple)
        offsets.append(len(flat) // 3)
    return flat, offsets


def load_nodes_flat(
    manager: BDDManager, flat: Sequence[int], offsets: Sequence[int]
) -> list[int]:
    """Inverse of :func:`dump_nodes_flat`; returns one node per root.

    The loop inlines :func:`load_node`'s dereferencing (no tuple
    objects, hoisted locals): artifact warm starts rebuild every atom
    BDD through here, so this is the hot path of a classifier load.
    """
    if hasattr(flat, "tolist"):  # numpy / array.array: python ints are
        flat = flat.tolist()  # faster than numpy scalars in this loop
    if hasattr(offsets, "tolist"):
        offsets = offsets.tolist()
    if offsets and offsets[-1] * 3 != len(flat):
        raise ValueError(
            f"flat triples length {len(flat)} disagrees with final offset "
            f"{offsets[-1]}"
        )
    mk = manager._mk
    out: list[int] = []
    for index in range(len(offsets) - 1):
        start = offsets[index] * 3
        stop = offsets[index + 1] * 3
        if stop <= start:
            raise ValueError(f"empty serialization for function {index}")
        built: list[int] = []
        append = built.append
        marker = stop - 3
        k = start
        while k < marker:
            low_ref = flat[k + 1]
            high_ref = flat[k + 2]
            append(
                mk(
                    flat[k],
                    FALSE if low_ref == _FALSE_REF
                    else TRUE if low_ref == _TRUE_REF
                    else built[low_ref],
                    FALSE if high_ref == _FALSE_REF
                    else TRUE if high_ref == _TRUE_REF
                    else built[high_ref],
                )
            )
            k += 3
        if flat[marker] != -1:
            raise ValueError(
                f"malformed serialization: function {index} has no root marker"
            )
        root_ref = flat[marker + 1]
        out.append(
            FALSE if root_ref == _FALSE_REF
            else TRUE if root_ref == _TRUE_REF
            else built[root_ref]
        )
    return out


def to_dot(
    manager: BDDManager,
    node: int,
    name: str = "bdd",
    var_names: dict[int, str] | None = None,
) -> str:
    """Render the DAG under ``node`` as Graphviz DOT (debugging aid).

    Dashed edges are the low (false) branch, solid edges the high (true)
    branch, following the usual BDD drawing convention.
    """
    lines = [f"digraph {name} {{", "  rankdir=TB;"]
    lines.append('  node_F [label="0", shape=box];')
    lines.append('  node_T [label="1", shape=box];')
    seen: set[int] = set()

    def label(current: int) -> str:
        if current == FALSE:
            return "node_F"
        if current == TRUE:
            return "node_T"
        return f"node_{current}"

    def visit(current: int) -> None:
        if current <= TRUE or current in seen:
            return
        seen.add(current)
        var = manager.top_var(current)
        var_label = (var_names or {}).get(var, f"x{var}")
        lines.append(f'  node_{current} [label="{var_label}", shape=circle];')
        low, high = manager.low(current), manager.high(current)
        lines.append(f"  node_{current} -> {label(low)} [style=dashed];")
        lines.append(f"  node_{current} -> {label(high)};")
        visit(low)
        visit(high)

    visit(node)
    lines.append("}")
    return "\n".join(lines)


def dump_functions(functions: Sequence[Function]) -> str:
    """Serialize functions sharing one manager to a JSON string."""
    if not functions:
        return json.dumps({"num_vars": 0, "functions": []})
    manager = functions[0].manager
    for fn in functions:
        if fn.manager is not manager:
            raise ValueError("all functions must share one manager")
    payload = {
        "num_vars": manager.num_vars,
        "functions": [dump_node(manager, fn.node) for fn in functions],
    }
    return json.dumps(payload)


def load_functions(text: str, manager: BDDManager | None = None) -> list[Function]:
    """Inverse of :func:`dump_functions`; creates a manager if none given."""
    payload = json.loads(text)
    if manager is None:
        manager = BDDManager(max(payload["num_vars"], 1))
    elif payload["functions"] and manager.num_vars != payload["num_vars"]:
        raise ValueError(
            f"manager has {manager.num_vars} vars, payload needs "
            f"{payload['num_vars']}"
        )
    return [
        Function(manager, load_node(manager, triples))
        for triples in payload["functions"]
    ]
