"""Command-line interface: inspect datasets, query behaviors, verify
invariants, snapshot networks, and run the online query service.

Examples::

    ap-classifier scenarios
    ap-classifier stats --dataset internet2
    ap-classifier stats --dataset acl-heavy:lists=16,overlap=0.9
    ap-classifier query --dataset internet2 --dst-ip 10.1.0.1 --ingress SEAT
    ap-classifier tree --dataset stanford --strategy quick_ordering
    ap-classifier verify --dataset fattree --ingress edge_0_0
    ap-classifier save --dataset internet2 --out /tmp/i2.apc
    ap-classifier save --dataset internet2 --format network --out /tmp/i2.json
    ap-classifier load /tmp/i2.apc
    ap-classifier query --artifact /tmp/i2.apc --dst-ip 10.1.0.1 --ingress SEAT
    ap-classifier query --snapshot /tmp/i2.json --dst-ip 10.1.0.1 --ingress SEAT
    ap-classifier diff /tmp/before.apc /tmp/after.apc --ingress SEAT
    ap-classifier whatif --dataset internet2 --ingress SEAT \
        --add-rule 'SEAT:dst_ip=10.3.0.0/24->to_SALT'
    ap-classifier serve --dataset internet2 --port 9000 --serve-workers 4

Error contract: operational failures (unknown dataset names, missing or
malformed snapshot files, unknown boxes) exit non-zero with a one-line
``error: ...`` message on stderr -- never a traceback.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from .analysis.memory import memory_report
from .analysis.reporting import render_table
from .core.classifier import APClassifier
from .core.verifier import NetworkVerifier
from .datasets import ScenarioError, get_scenario, list_scenarios
from .headerspace.fields import parse_ipv4
from .headerspace.header import Packet
from .network.builder import Network
from .network.serialize import load_network, save_network

__all__ = ["main"]


class CLIError(Exception):
    """Operational failure reported as a one-line message (exit code 2)."""


def _parse_dataset_spec(spec: str) -> tuple[str, dict[str, str]]:
    """Split ``name[:key=val,...]`` into the scenario name and params.

    Values stay strings; the registry coerces them to each param's
    declared type (and rejects unknown keys or bad values).
    """
    name, _, param_text = spec.partition(":")
    params: dict[str, str] = {}
    if param_text:
        for pair in param_text.split(","):
            key, eq, value = pair.partition("=")
            if not eq or not key.strip():
                raise CLIError(
                    f"malformed dataset param {pair!r} in {spec!r} "
                    "(expected key=value)"
                )
            params[key.strip()] = value.strip()
    return name, params


def _get_scenario(spec: str):
    """A bound :class:`repro.datasets.Scenario` from a CLI dataset spec."""
    name, params = _parse_dataset_spec(spec)
    if name not in list_scenarios():
        raise CLIError(
            f"unknown dataset {name!r}; choose from {list_scenarios()}"
        )
    try:
        return get_scenario(name, **params)
    except ScenarioError as exc:
        raise CLIError(str(exc)) from exc


def _load(args: argparse.Namespace) -> Network:
    snapshot = getattr(args, "snapshot", "")
    if snapshot:
        try:
            return load_network(snapshot)
        except OSError as exc:
            raise CLIError(f"cannot read snapshot {snapshot!r}: {exc}") from exc
        except ValueError as exc:
            raise CLIError(f"malformed snapshot {snapshot!r}: {exc}") from exc
    return _get_scenario(args.dataset).network()


def _load_snapshot(path: str) -> Network:
    try:
        return load_network(path)
    except OSError as exc:
        raise CLIError(f"cannot read snapshot {path!r}: {exc}") from exc
    except ValueError as exc:
        raise CLIError(f"malformed snapshot {path!r}: {exc}") from exc


def _build(args: argparse.Namespace) -> APClassifier:
    artifact = getattr(args, "artifact", "")
    if artifact:
        return _load_classifier_file(artifact)
    return APClassifier.build(
        _load(args), strategy=args.strategy, workers=args.workers
    )


def _load_classifier_file(path: str) -> APClassifier:
    """A ready classifier from an artifact or classifier-JSON file."""
    from . import persist
    from .artifact import ArtifactError

    try:
        return persist.load(path)
    except OSError as exc:
        raise CLIError(f"cannot read {path!r}: {exc}") from exc
    except (ArtifactError, ValueError, KeyError) as exc:
        # SnapshotMismatch is a ValueError; so are malformed JSON payloads.
        raise CLIError(f"cannot load {path!r}: {exc}") from exc


def _instrumented_stats(args: argparse.Namespace) -> int:
    """``stats --instrument``: run a small observed workload, print JSON.

    The workload exercises every instrumented surface on the selected
    dataset: an interpreted classify pass (depth histogram), a compile +
    rule-update churn (update metrics, BDD cache traffic), and a
    post-update query (compiled-artifact staleness fallback).  Output is
    a single strict-JSON :meth:`Recorder.snapshot` document on stdout.
    """
    import json
    import random

    from .datasets import rule_update_stream, uniform_over_atoms
    from .obs import Recorder, validate_snapshot

    classifier = _build(args)
    recorder = Recorder(time_bdd_ops=True)
    if not getattr(args, "snapshot", "") and not getattr(args, "artifact", ""):
        recorder.set_scenario(_get_scenario(args.dataset))
    rng = random.Random(7)
    with recorder.observe(classifier):
        trace = uniform_over_atoms(classifier.universe, 512, rng)
        classifier.classify_batch(trace.headers)
        classifier.compile()
        for update in rule_update_stream(
            classifier.dataplane.network, 24, rng
        ):
            if update.kind == "insert":
                classifier.insert_rule(update.box, update.rule)
            else:
                classifier.remove_rule(update.box, update.rule)
        # The churn staled the artifact; this query takes (and records)
        # the interpreted fallback path.
        classifier.classify(trace.headers[0])
        snapshot = validate_snapshot(recorder.snapshot())
    print(json.dumps(snapshot, indent=2, allow_nan=False))
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    if args.instrument:
        return _instrumented_stats(args)
    classifier = _build(args)
    network_stats = classifier.dataplane.network.stats()
    stats = classifier.stats()
    rows = [
        ("boxes", network_stats["boxes"]),
        ("links", network_stats["links"]),
        ("forwarding rules", network_stats["forwarding_rules"]),
        ("ACL rules", network_stats["acl_rules"]),
        ("predicates", stats.predicates),
        ("atomic predicates", stats.atoms),
        ("AP Tree leaves", stats.tree_leaves),
        ("AP Tree avg depth", f"{stats.tree_average_depth:.2f}"),
        ("AP Tree max depth", stats.tree_max_depth),
        ("BDD nodes", stats.bdd_nodes),
        ("estimated memory", f"{stats.estimated_bytes / 1e6:.2f} MB"),
    ]
    print(render_table(f"dataset: {args.dataset}", ["metric", "value"], rows))
    if args.memory:
        print()
        print(
            render_table(
                "memory breakdown",
                ["component", "value"],
                memory_report(classifier).rows(),
            )
        )
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    classifier = _build(args)
    layout = classifier.dataplane.layout
    fields = {"dst_ip": parse_ipv4(args.dst_ip)}
    if "src_ip" in layout and args.src_ip:
        fields["src_ip"] = parse_ipv4(args.src_ip)
    if "dst_port" in layout:
        fields["dst_port"] = args.dst_port
    if "src_port" in layout:
        fields["src_port"] = args.src_port
    if "proto" in layout:
        fields["proto"] = args.proto
    packet = Packet(layout, layout.pack(fields))
    if args.ingress not in classifier.dataplane.network.boxes:
        raise CLIError(f"unknown ingress box {args.ingress!r}")
    behavior = classifier.query(packet, ingress_box=args.ingress)
    print(f"packet: {packet}")
    print(f"atomic predicate: a{behavior.atom_id}")
    for path in behavior.paths():
        print("path: " + " -> ".join(path))
    hosts = sorted(behavior.delivered_hosts())
    print(f"delivered to: {hosts if hosts else 'nowhere (dropped)'}")
    for box, reason in behavior.drops():
        print(f"dropped at {box}: {reason}")
    if args.trace:
        print("\ntrace:")
        print(behavior.format_trace())
        print("\nAP Tree search:")
        for pid, verdict in classifier.tree.explain(packet.value):
            labeled = classifier.dataplane.predicate(pid)
            print(
                f"  {labeled.kind} {labeled.box}:{labeled.port} -> "
                f"{'true' if verdict else 'false'}"
            )
    return 0


def _cmd_reachability(args: argparse.Namespace) -> int:
    from .core.propagation import AtomPropagation

    classifier = _build(args)
    propagation = AtomPropagation(classifier.dataplane, classifier.universe)
    matrix = propagation.all_pairs_host_reachability()
    hosts = sorted({host for _, host in matrix})
    boxes = sorted({box for box, _ in matrix})
    rows = [
        (box, *(len(matrix[(box, host)]) for host in hosts)) for box in boxes
    ]
    print(
        render_table(
            f"reachability matrix ({args.dataset}): packet classes delivered",
            ["ingress \\ host", *hosts],
            rows,
        )
    )
    return 0


def _cmd_tree(args: argparse.Namespace) -> int:
    classifier = _build(args)
    depths = sorted(classifier.tree.leaf_depths().values())
    stats = classifier.stats()
    rows = [
        ("strategy", args.strategy),
        ("leaves", stats.tree_leaves),
        ("average depth", f"{stats.tree_average_depth:.2f}"),
        ("median depth", depths[len(depths) // 2] if depths else 0),
        ("max depth", stats.tree_max_depth),
    ]
    print(render_table(f"AP Tree ({args.dataset})", ["metric", "value"], rows))
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    classifier = _build(args)
    if args.ingress not in classifier.dataplane.network.boxes:
        raise CLIError(f"unknown ingress box {args.ingress!r}")
    verifier = NetworkVerifier.from_classifier(classifier)
    loops = verifier.find_loops(args.ingress)
    blackholes = verifier.find_blackholes(args.ingress)
    rows = [
        ("atomic predicates checked", classifier.universe.atom_count),
        ("looping classes", len(loops)),
        ("undeliverable classes", len(blackholes)),
    ]
    exit_code = 0
    if args.waypoint and args.host:
        violations = verifier.verify_waypoint(args.ingress, args.host, args.waypoint)
        rows.append(
            (f"waypoint {args.waypoint} -> {args.host} violations", len(violations))
        )
        if violations:
            exit_code = 1
    print(
        render_table(
            f"verification from {args.ingress} ({args.dataset})",
            ["check", "result"],
            rows,
        )
    )
    for atom_id in sorted(loops)[:5]:
        print(f"loop witness: {verifier.describe_atom(atom_id)}")
    if loops:
        exit_code = 1
    return exit_code


def _cmd_save(args: argparse.Namespace) -> int:
    """``save``: persist the network or the built classifier to a file.

    ``--format network`` writes the bare network JSON (readable back via
    ``--snapshot``); ``--format artifact``/``json`` build the classifier
    and persist it through :mod:`repro.persist` (readable back via
    ``--artifact`` or ``load``).
    """
    if args.format == "network":
        network = _load(args)
        try:
            save_network(network, args.out)
        except OSError as exc:
            raise CLIError(f"cannot write snapshot {args.out!r}: {exc}") from exc
        print(f"wrote {args.dataset} snapshot to {args.out}")
        return 0
    from . import persist
    from .artifact import ArtifactError

    classifier = _build(args)
    try:
        written = persist.save(
            classifier,
            args.out,
            format=args.format,
            backend=getattr(args, "engine", None),
        )
    except OSError as exc:
        raise CLIError(f"cannot write {args.out!r}: {exc}") from exc
    except ArtifactError as exc:
        raise CLIError(f"cannot save classifier: {exc}") from exc
    print(f"wrote {args.format} classifier ({written} bytes) to {args.out}")
    return 0


def _cmd_snapshot(args: argparse.Namespace) -> int:
    """Hidden legacy alias: ``snapshot`` == ``save --format network``."""
    args.format = "network"
    return _cmd_save(args)


def _cmd_load(args: argparse.Namespace) -> int:
    """``load``: summarize (and check) a persisted classifier."""
    from . import persist
    from .artifact import ArtifactError, describe_artifact

    try:
        fmt = persist.detect_format(args.path)
    except OSError as exc:
        raise CLIError(f"cannot read {args.path!r}: {exc}") from exc
    if fmt == "artifact" and not args.deep_verify:
        try:
            summary = describe_artifact(args.path)
        except ArtifactError as exc:
            raise CLIError(f"cannot load {args.path!r}: {exc}") from exc
        rows = [(key, summary[key]) for key in sorted(summary) if key != "sections"]
        rows.append(("sections", len(summary["sections"])))
    else:
        if fmt == "artifact":
            from .artifact import load_artifact

            try:
                classifier = load_artifact(args.path, deep_verify=True)
            except ArtifactError as exc:
                raise CLIError(f"cannot load {args.path!r}: {exc}") from exc
        else:
            classifier = _load_classifier_file(args.path)
        stats = classifier.stats()
        rows = [
            ("format", fmt),
            ("predicates", stats.predicates),
            ("atomic predicates", stats.atoms),
            ("AP Tree leaves", stats.tree_leaves),
            ("AP Tree max depth", stats.tree_max_depth),
            ("verified", "deep" if args.deep_verify else "full restore"),
        ]
    print(render_table(f"persisted classifier: {args.path}", ["field", "value"], rows))
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    """``diff``: which packets changed behavior between two generations?

    Two modes share the subcommand:

    * two positional paths -- saved classifiers (binary artifact or
      classifier JSON); the exact atom-pairing sweep of
      :mod:`repro.diff` runs across their managers and the full report
      (changed classes, sat-count volumes, witnesses) prints as strict
      JSON;
    * ``--before``/``--after`` -- bare network snapshot JSONs; both are
      built fresh on one manager and the human-readable delta list of
      :func:`repro.core.delta.behavior_delta` prints instead.

    Exit code 1 when any class changed behavior, 0 when none did.
    """
    if args.generations:
        if len(args.generations) != 2:
            raise CLIError(
                "diff takes exactly two saved classifier files "
                "(or --before/--after network snapshots)"
            )
        if args.before or args.after:
            raise CLIError(
                "positional generation files and --before/--after are exclusive"
            )
        return _diff_generation_files(args)
    if not args.before or not args.after:
        raise CLIError(
            "diff needs two saved classifier files or both "
            "--before and --after network snapshots"
        )
    return _diff_snapshots(args)


def _diff_generation_files(args: argparse.Namespace) -> int:
    from .diff import diff_generations

    before = _load_classifier_file(args.generations[0])
    after = _load_classifier_file(args.generations[1])
    for classifier in (before, after):
        if args.ingress not in classifier.dataplane.network.boxes:
            raise CLIError(f"unknown ingress box {args.ingress!r}")
    try:
        report = diff_generations(before, after, args.ingress)
    except ValueError as exc:
        raise CLIError(str(exc)) from exc
    print(json.dumps(report.to_json(args.limit), indent=2, allow_nan=False))
    return 1 if report.entries else 0


def _diff_snapshots(args: argparse.Namespace) -> int:
    from .core.delta import behavior_delta
    from .network.dataplane import DataPlane

    before_net = _load_snapshot(args.before)
    after_net = _load_snapshot(args.after)
    if before_net.layout != after_net.layout:
        raise CLIError("snapshots use different header layouts")
    before = APClassifier.build(before_net, strategy=args.strategy)
    # Share the manager so the delta sweep is exact.
    after = APClassifier.from_dataplane(
        DataPlane(after_net, before.dataplane.manager), strategy=args.strategy
    )
    if args.ingress not in before_net.boxes or args.ingress not in after_net.boxes:
        raise CLIError(f"unknown ingress box {args.ingress!r}")
    deltas = behavior_delta(before, after, args.ingress)
    if not deltas:
        print(f"no behavior changes from {args.ingress}")
        return 0
    print(f"{len(deltas)} packet class(es) changed behavior from {args.ingress}:")
    for delta in deltas[: args.limit]:
        print(f"  {delta.describe()}")
    if len(deltas) > args.limit:
        print(f"  ... and {len(deltas) - args.limit} more")
    return 1


def _cmd_whatif(args: argparse.Namespace) -> int:
    """``whatif``: diff a candidate rule change without applying it.

    The base classifier (``--dataset``/``--snapshot``/``--artifact``) is
    never modified: the candidate ``--add-rule``/``--remove-rule`` specs
    are applied to a shadow fork through the incremental engine and the
    shadow is diffed against the base generation.  The report prints as
    strict JSON; exit code is 0 whether or not behavior would change
    (the answer is the report, not a verdict).
    """
    from .diff import parse_rule_spec, what_if

    classifier = _build(args)
    if args.ingress not in classifier.dataplane.network.boxes:
        raise CLIError(f"unknown ingress box {args.ingress!r}")
    layout = classifier.dataplane.layout
    try:
        add = [parse_rule_spec(spec, layout) for spec in args.add_rule]
        remove = [parse_rule_spec(spec, layout) for spec in args.remove_rule]
    except ValueError as exc:
        raise CLIError(str(exc)) from exc
    if not add and not remove:
        raise CLIError("whatif needs at least one --add-rule/--remove-rule")
    try:
        report = what_if(classifier, args.ingress, add=add, remove=remove)
    except (KeyError, ValueError) as exc:
        raise CLIError(str(exc)) from exc
    print(json.dumps(report.to_json(args.limit), indent=2, allow_nan=False))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """``serve``: run the asyncio query service behind the TCP endpoint.

    Builds the classifier for the selected dataset/snapshot, wires a
    :class:`repro.obs.Recorder` (so the ``metrics`` op reports live
    ``serve`` counters), and serves newline-JSON requests until
    interrupted.  See ``docs/serving.md`` for the wire protocol and the
    batching/backpressure knobs.
    """
    import asyncio

    from . import config
    from .obs import Recorder
    from .serve import QueryService, serve_forever

    if args.max_delay_ms < 0:
        raise CLIError("--max-delay-ms must be >= 0")
    try:
        serve_workers = config.serve_workers(args.serve_workers)
    except ValueError as exc:
        raise CLIError(str(exc)) from exc
    classifier = _build(args)
    if args.shards > 0:
        if serve_workers > 1:
            raise CLIError("--shards and --serve-workers are exclusive")
        return _serve_sharded(args, classifier)
    if serve_workers > 1:
        return _serve_multi(args, classifier, serve_workers)
    recorder = Recorder()
    service = QueryService(
        classifier,
        max_batch=args.max_batch,
        max_delay_s=args.max_delay_ms / 1e3,
        queue_limit=args.queue_limit,
        overflow=args.overflow,
        timeout_s=args.timeout_ms / 1e3 if args.timeout_ms else None,
        recorder=recorder,
        backend=args.engine,
        cache_size=args.cache_size,
    )
    try:
        asyncio.run(serve_forever(service, args.host, args.port))
    except KeyboardInterrupt:
        print("interrupted; shutting down")
    return 0


def _serve_multi(
    args: argparse.Namespace, classifier: APClassifier, serve_workers: int
) -> int:
    """``serve --serve-workers N``: the shared-memory worker pool."""
    import time

    from .artifact import ArtifactError
    from .serve import ServeWorkerPool

    try:
        pool = ServeWorkerPool(
            classifier,
            workers=serve_workers,
            host=args.host,
            port=args.port,
            backend=args.engine,
            service_options={
                "max_batch": args.max_batch,
                "max_delay_s": args.max_delay_ms / 1e3,
                "queue_limit": args.queue_limit,
                "overflow": args.overflow,
                "timeout_s": args.timeout_ms / 1e3 if args.timeout_ms else None,
                "cache_size": args.cache_size,
            },
        )
    except ArtifactError as exc:
        raise CLIError(f"cannot build serving artifact: {exc}") from exc
    try:
        port = pool.start()
    except (RuntimeError, OSError) as exc:
        raise CLIError(f"cannot start serve workers: {exc}") from exc
    print(json.dumps({
        "listening": [args.host, port],
        "workers": pool.workers,
        "protocols": ["framed", "json"],
    }), flush=True)
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        print("interrupted; shutting down")
    finally:
        pool.stop()
    return 0


def _serve_sharded(args: argparse.Namespace, classifier: APClassifier) -> int:
    """``serve --shards N [--replicas R]``: router + shard backends.

    Spawns an ``N x R`` grid of replica processes each serving its
    shard's slice artifact out of shared memory, then runs the framed +
    newline-JSON front tier routing over the AP Tree prefix.  The bound
    front address is announced as one JSON line on stdout.
    """
    import asyncio

    from .artifact import ArtifactError
    from .obs import Recorder
    from .serve import ShardCluster, ShardRouter, serve_front_forever

    if args.replicas < 1:
        raise CLIError("--replicas must be >= 1")
    recorder = Recorder()
    try:
        cluster = ShardCluster(
            classifier,
            shards=args.shards,
            replicas=args.replicas,
            depth=args.shard_depth,
            host="127.0.0.1",
            backend=args.engine,
            recorder=recorder,
        )
    except (ArtifactError, ValueError) as exc:
        raise CLIError(f"cannot build shard slices: {exc}") from exc
    try:
        cluster.start()
    except (RuntimeError, OSError) as exc:
        raise CLIError(f"cannot start shard replicas: {exc}") from exc

    async def _run() -> None:
        router = ShardRouter.from_cluster(cluster)
        try:
            await serve_front_forever(router, args.host, args.port)
        finally:
            await router.close()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        print("interrupted; shutting down")
    finally:
        cluster.stop()
    return 0


def _cmd_scenarios(args: argparse.Namespace) -> int:
    """``scenarios``: the registry catalog as strict JSON.

    Without an argument, one array entry per registered scenario (name,
    description, stress axis, typed params with defaults). With a
    ``name[:key=val,...]`` spec, the single bound scenario -- so scripts
    can check how a param string resolves before paying for a build.
    Unknown names and params follow the standard error contract (one
    ``error:`` line, exit code 2).
    """
    from .datasets import describe_scenarios

    if args.name:
        payload: object = _get_scenario(args.name).describe()
    else:
        payload = describe_scenarios()
    print(json.dumps(payload, indent=2, allow_nan=False, sort_keys=True))
    return 0


def _cmd_shard_split(args: argparse.Namespace) -> int:
    """``shard-split``: write per-shard slice artifacts + cluster manifest."""
    from .artifact import ArtifactError, write_shard_split

    if args.shards < 1:
        raise CLIError("--shards must be >= 1")
    classifier = _build(args)
    try:
        summary = write_shard_split(
            classifier,
            args.out,
            shards=args.shards,
            depth=args.depth,
            backend=args.engine,
        )
    except (ArtifactError, ValueError) as exc:
        raise CLIError(f"cannot write shard split: {exc}") from exc
    print(json.dumps(summary, indent=2, sort_keys=True))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ap-classifier",
        description="Network-wide packet behavior identification (AP Classifier).",
    )
    parser.add_argument(
        "--strategy",
        default="oapt",
        choices=("random", "best_from_random", "quick_ordering", "oapt"),
        help="AP Tree construction strategy (default: oapt)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for the offline build (default: the "
        "REPRO_WORKERS environment variable, else serial)",
    )
    # The metavar controls the usage listing; "snapshot" stays
    # registered below as a hidden legacy alias of `save --format network`.
    sub = parser.add_subparsers(
        dest="command",
        required=True,
        metavar="{stats,query,reachability,tree,verify,save,load,diff,whatif,"
        "serve,shard-split,scenarios}",
    )

    def common(sub_parser: argparse.ArgumentParser) -> None:
        sub_parser.add_argument(
            "--dataset",
            default="internet2",
            help="scenario name, optionally with params: name[:key=val,...] "
            "(see `scenarios` for the catalog)",
        )
        sub_parser.add_argument(
            "--snapshot", default="", help="load the network from a JSON snapshot"
        )
        sub_parser.add_argument(
            "--artifact",
            default="",
            help="skip the build: load a classifier saved by `save` "
            "(binary artifact or classifier JSON)",
        )
        # Accept the global options after the subcommand too.  SUPPRESS
        # keeps the subparser from overwriting a value already parsed at
        # the top level.
        sub_parser.add_argument(
            "--strategy",
            default=argparse.SUPPRESS,
            choices=("random", "best_from_random", "quick_ordering", "oapt"),
            help=argparse.SUPPRESS,
        )
        sub_parser.add_argument(
            "--workers", type=int, default=argparse.SUPPRESS, help=argparse.SUPPRESS
        )

    stats = sub.add_parser("stats", help="dataset and classifier statistics")
    common(stats)
    stats.add_argument(
        "--memory", action="store_true", help="include the memory breakdown"
    )
    stats.add_argument(
        "--instrument",
        action="store_true",
        help="run an observed workload and print the instrumentation "
        "snapshot as JSON instead of the table",
    )
    stats.set_defaults(func=_cmd_stats)

    query = sub.add_parser("query", help="identify one packet's behavior")
    common(query)
    query.add_argument("--dst-ip", required=True)
    query.add_argument("--src-ip", default="")
    query.add_argument("--dst-port", type=int, default=80)
    query.add_argument("--src-port", type=int, default=40000)
    query.add_argument("--proto", type=int, default=6)
    query.add_argument("--ingress", required=True)
    query.add_argument(
        "--trace",
        action="store_true",
        help="show the forwarding tree and AP Tree search trace",
    )
    query.set_defaults(func=_cmd_query)

    reach = sub.add_parser(
        "reachability", help="all-pairs (ingress, host) class counts"
    )
    common(reach)
    reach.set_defaults(func=_cmd_reachability)

    tree = sub.add_parser("tree", help="AP Tree shape statistics")
    common(tree)
    tree.set_defaults(func=_cmd_tree)

    verify = sub.add_parser(
        "verify", help="check loops/blackholes/waypoints from an ingress"
    )
    common(verify)
    verify.add_argument("--ingress", required=True)
    verify.add_argument("--waypoint", default="")
    verify.add_argument("--host", default="")
    verify.set_defaults(func=_cmd_verify)

    save = sub.add_parser(
        "save", help="persist the classifier (artifact/json) or network"
    )
    common(save)
    save.add_argument("--out", required=True)
    save.add_argument(
        "--format",
        choices=("artifact", "json", "network"),
        default="artifact",
        help="artifact: binary compiled classifier (default); json: "
        "portable classifier snapshot; network: bare network JSON",
    )
    save.add_argument(
        "--engine",
        choices=("native", "numpy", "stdlib"),
        default=None,
        help="engine the compiled artifact is built with (default: "
        "REPRO_ENGINE, else best available)",
    )
    save.set_defaults(func=_cmd_save)

    load_parser = sub.add_parser(
        "load", help="summarize and check a persisted classifier"
    )
    load_parser.add_argument("path")
    load_parser.add_argument(
        "--deep-verify",
        action="store_true",
        help="fully restore and recompile the network to check every "
        "stored predicate BDD (slow, complete)",
    )
    load_parser.set_defaults(func=_cmd_load, dataset="(file)")

    # Hidden legacy alias: pre-`save` scripts used `snapshot` for the
    # bare network JSON.  Same behavior, absent from the usage line.
    snapshot = sub.add_parser("snapshot")
    common(snapshot)
    snapshot.add_argument("--out", required=True)
    snapshot.set_defaults(func=_cmd_snapshot)

    diff = sub.add_parser(
        "diff",
        help="which packets changed behavior between two generations "
        "(saved classifiers -> strict JSON, or network snapshots)",
    )
    diff.add_argument(
        "generations",
        nargs="*",
        metavar="GENERATION",
        help="two saved classifiers (`save` artifacts or classifier "
        "JSON) to diff exactly via atom pairing",
    )
    diff.add_argument("--before", default="", help="baseline network snapshot JSON")
    diff.add_argument("--after", default="", help="changed network snapshot JSON")
    diff.add_argument("--ingress", required=True)
    diff.add_argument(
        "--limit",
        type=int,
        default=10,
        help="most changed classes shown (summary counters cover all)",
    )
    diff.set_defaults(func=_cmd_diff, dataset="(generations)")

    whatif = sub.add_parser(
        "whatif",
        help="diff a candidate rule change on a shadow fork, live "
        "classifier untouched (strict JSON)",
    )
    common(whatif)
    whatif.add_argument(
        "--add-rule",
        action="append",
        default=[],
        metavar="SPEC",
        help="candidate rule to add, as "
        "BOX:FIELD=VALUE/PLEN->PORT[,PORT...][@PRIO] "
        "(action `drop` discards; repeatable)",
    )
    whatif.add_argument(
        "--remove-rule",
        action="append",
        default=[],
        metavar="SPEC",
        help="candidate rule to remove, same spec syntax (repeatable)",
    )
    whatif.add_argument("--ingress", required=True)
    whatif.add_argument(
        "--limit",
        type=int,
        default=10,
        help="most changed classes shown (summary counters cover all)",
    )
    whatif.set_defaults(func=_cmd_whatif)

    serve = sub.add_parser(
        "serve",
        help="run the online query service (framed binary + newline-JSON "
        "over TCP; --shards for the multi-node router)",
    )
    common(serve)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="TCP port (default: pick a free one)")
    serve.add_argument("--max-batch", type=int, default=128,
                       help="most requests coalesced per classify_batch call")
    serve.add_argument("--max-delay-ms", type=float, default=1.0,
                       help="micro-batching latency budget in milliseconds")
    serve.add_argument("--queue-limit", type=int, default=1024,
                       help="admission queue bound")
    serve.add_argument("--overflow", choices=("wait", "shed"), default="wait",
                       help="policy when the queue saturates: backpressure "
                       "callers (wait) or drop with an error (shed)")
    serve.add_argument("--timeout-ms", type=float, default=0.0,
                       help="per-request deadline; 0 disables")
    serve.add_argument("--serve-workers", type=int, default=None,
                       help="worker processes sharing the compiled "
                       "classifier via shared memory (default: the "
                       "REPRO_SERVE_WORKERS environment variable, else 1)")
    serve.add_argument("--engine", choices=("native", "numpy", "stdlib"),
                       default=None,
                       help="classification engine for the compiled "
                       "artifact; an explicit choice fails if unavailable "
                       "(default: REPRO_ENGINE, else best available)")
    serve.add_argument("--cache-size", type=int, default=0,
                       help="hot-header result cache capacity; 0 (default) "
                       "disables the cache")
    serve.add_argument("--shards", type=int, default=0,
                       help="shard the classifier across N backend "
                       "processes behind a header-space router; 0 "
                       "(default) serves single-node")
    serve.add_argument("--replicas", type=int, default=1,
                       help="replicas per shard; the router fails over "
                       "between them (default: 1)")
    serve.add_argument("--shard-depth", type=int, default=None,
                       help="routing-prefix depth for --shards (default: "
                       "shallowest cut with 4 frontiers per shard)")
    serve.set_defaults(func=_cmd_serve)

    shard_split = sub.add_parser(
        "shard-split",
        help="write per-shard slice artifacts plus a cluster manifest",
    )
    common(shard_split)
    shard_split.add_argument("--out", required=True,
                             help="output directory for shard-NNN.apc "
                             "slices and cluster.json")
    shard_split.add_argument("--shards", type=int, required=True,
                             help="number of shard slices to cut")
    shard_split.add_argument("--depth", type=int, default=None,
                             help="routing-prefix depth (default: "
                             "shallowest cut with 4 frontiers per shard)")
    shard_split.add_argument("--engine",
                             choices=("native", "numpy", "stdlib"),
                             default=None,
                             help="engine slices are compiled with "
                             "(default: REPRO_ENGINE, else best available)")
    shard_split.set_defaults(func=_cmd_shard_split)

    scenarios = sub.add_parser(
        "scenarios",
        help="list registered scenarios and their params (strict JSON)",
    )
    scenarios.add_argument(
        "name",
        nargs="?",
        default="",
        help="describe one scenario; accepts name:key=val,... to show "
        "the bound values",
    )
    scenarios.set_defaults(func=_cmd_scenarios, dataset="(registry)")
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Parse and dispatch; operational failures become one-line errors.

    Returns the subcommand's exit status, or 2 after printing
    ``error: <message>`` to stderr for a :class:`CLIError` -- scripts
    get a stable non-zero code and a single greppable line instead of a
    traceback.
    """
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except CLIError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
