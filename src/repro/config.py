"""Central registry for every ``REPRO_*`` environment knob.

Before this module existed, configuration reads were scattered
(``parallel.pool`` parsed ``REPRO_WORKERS``, ``core.compiled`` peeked at
``REPRO_DISABLE_NUMPY`` at import, the benchmark conftest read
``REPRO_OBS_SIDECAR``, ...), which made it impossible to answer "what
knobs exist and what do they do?" without grepping.  Now every knob is
declared once in :data:`KNOBS` with a typed accessor next to it, and the
rest of the codebase imports from here.

Semantics shared by all knobs:

* unset or empty string means "use the default";
* boolean knobs accept ``0/1``, ``false/true``, ``no/yes``, ``off/on``
  (case-insensitive); anything else non-empty is an error;
* integer knobs must parse as a base-10 integer;
* a malformed value raises :class:`ValueError` naming the variable --
  never a silent fallback, so typos in CI matrices fail loudly.

Knob reference (also surfaced by :func:`describe` and
``docs/persistence.md`` / ``docs/parallel.md``):

``REPRO_WORKERS``
    Default worker count for the parallel offline pipeline (build,
    atoms, reconstruction).  ``1`` or unset = serial.
``REPRO_MP_START``
    Multiprocessing start method (``fork``/``spawn``/``forkserver``).
    Default: ``fork`` where available, else ``spawn``.
``REPRO_DISABLE_NUMPY``
    Truthy = never import numpy; the compiled engine and artifact loads
    use the pure-stdlib paths.  Read once at ``repro.core.compiled``
    import time.
``REPRO_ENGINE``
    Preferred classification engine: ``native`` (the optional C
    extension), ``numpy``, or ``stdlib``; unset = auto (best
    available).  A *preference*, not a demand: if the preferred engine
    is not importable in this process the next one down is used, so a
    deployment can set ``REPRO_ENGINE=native`` everywhere and hosts
    without a compiled extension degrade gracefully.  Explicit
    ``backend=`` arguments still fail loudly when unavailable.
``REPRO_OBS_SIDECAR``
    Truthy = benchmarks write ``*.obs.json`` recorder sidecars next to
    their ``BENCH_*.json`` outputs.
``REPRO_SERVE_WORKERS``
    Default process count for ``repro serve`` (the ``--serve-workers``
    flag wins).  ``1`` or unset = single-process serving.
``REPRO_ARTIFACT_MMAP``
    Falsy = artifact loads copy sections into process memory instead of
    ``mmap``-ing the file (default: mmap when the numpy backend is
    available).
``REPRO_ARTIFACT_VERIFY``
    Falsy = skip per-section CRC verification on artifact load (the
    header and manifest are always validated).  Default: verify.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass

__all__ = [
    "ENV_WORKERS",
    "ENV_MP_START",
    "ENV_DISABLE_NUMPY",
    "ENV_ENGINE",
    "ENV_OBS_SIDECAR",
    "ENV_SERVE_WORKERS",
    "ENV_ARTIFACT_MMAP",
    "ENV_ARTIFACT_VERIFY",
    "ENGINES",
    "Knob",
    "KNOBS",
    "env_flag",
    "env_int",
    "workers",
    "mp_start",
    "numpy_disabled",
    "engine",
    "obs_sidecar",
    "serve_workers",
    "artifact_mmap",
    "artifact_verify",
    "describe",
]

ENV_WORKERS = "REPRO_WORKERS"
ENV_MP_START = "REPRO_MP_START"
ENV_DISABLE_NUMPY = "REPRO_DISABLE_NUMPY"
ENV_ENGINE = "REPRO_ENGINE"
ENV_OBS_SIDECAR = "REPRO_OBS_SIDECAR"
ENV_SERVE_WORKERS = "REPRO_SERVE_WORKERS"
ENV_ARTIFACT_MMAP = "REPRO_ARTIFACT_MMAP"
ENV_ARTIFACT_VERIFY = "REPRO_ARTIFACT_VERIFY"

#: Engine names accepted by ``REPRO_ENGINE`` (and ``backend=`` args).
ENGINES = ("native", "numpy", "stdlib")


@dataclass(frozen=True)
class Knob:
    """One declared environment knob (name, type, default, one-liner)."""

    name: str
    kind: str  # "int" | "bool" | "str"
    default: str
    help: str


KNOBS: tuple[Knob, ...] = (
    Knob(ENV_WORKERS, "int", "1", "offline-pipeline worker processes"),
    Knob(ENV_MP_START, "str", "fork if available else spawn",
         "multiprocessing start method"),
    Knob(ENV_DISABLE_NUMPY, "bool", "0",
         "force the pure-stdlib compiled/artifact paths"),
    Knob(ENV_ENGINE, "str", "auto (best available)",
         "preferred classification engine: native | numpy | stdlib"),
    Knob(ENV_OBS_SIDECAR, "bool", "0",
         "benchmarks emit *.obs.json recorder sidecars"),
    Knob(ENV_SERVE_WORKERS, "int", "1",
         "default process count for `repro serve`"),
    Knob(ENV_ARTIFACT_MMAP, "bool", "1",
         "mmap artifact files for zero-copy loads (numpy backend)"),
    Knob(ENV_ARTIFACT_VERIFY, "bool", "1",
         "verify per-section CRCs on artifact load"),
)

_TRUE = frozenset({"1", "true", "yes", "on"})
_FALSE = frozenset({"0", "false", "no", "off"})


def _raw(name: str) -> str:
    return os.environ.get(name, "").strip()


def env_flag(name: str, default: bool = False) -> bool:
    """Parse a boolean knob; unset/empty means ``default``."""
    raw = _raw(name)
    if not raw:
        return default
    lowered = raw.lower()
    if lowered in _TRUE:
        return True
    if lowered in _FALSE:
        return False
    raise ValueError(
        f"{name} must be a boolean flag (0/1/true/false/...), got {raw!r}"
    )


def env_int(name: str, default: int | None = None) -> int | None:
    """Parse an integer knob; unset/empty means ``default``."""
    raw = _raw(name)
    if not raw:
        return default
    try:
        return int(raw)
    except ValueError:
        raise ValueError(f"{name} must be an integer, got {raw!r}") from None


def workers(explicit: int | None = None) -> int:
    """Effective offline-pipeline width: argument, else env, else 1."""
    if explicit is None:
        explicit = env_int(ENV_WORKERS, 1)
    return max(1, int(explicit))


def mp_start(explicit: str | None = None) -> str:
    """Validated start method: argument, else env, else fork/spawn."""
    methods = multiprocessing.get_all_start_methods()
    requested = explicit if explicit is not None else _raw(ENV_MP_START)
    if requested:
        if requested not in methods:
            raise ValueError(
                f"{ENV_MP_START}={requested!r} is not available on this "
                f"platform (choose from {methods})"
            )
        return requested
    return "fork" if "fork" in methods else "spawn"


def numpy_disabled() -> bool:
    """Truthy ``REPRO_DISABLE_NUMPY`` (legacy: any non-empty string).

    Historical values like ``yes`` predate the strict flag grammar, so
    this knob alone treats *any* unrecognized non-empty value as true --
    disabling an optional fast path is the safe direction for a typo.
    """
    raw = _raw(ENV_DISABLE_NUMPY)
    if not raw:
        return False
    return raw.lower() not in _FALSE


def engine(explicit: str | None = None) -> str | None:
    """The preferred engine: argument, else ``REPRO_ENGINE``, else None.

    ``None`` means "auto": pick the best engine importable in this
    process (native when the C extension is built, else numpy, else
    stdlib -- see :func:`repro.core.compiled.default_backend`).  A
    malformed value raises; availability is *not* checked here -- the
    compiled engine resolves the preference against what is importable
    and falls back one step at a time.
    """
    requested = explicit if explicit is not None else _raw(ENV_ENGINE)
    if not requested:
        return None
    lowered = requested.lower()
    if lowered == "auto":
        return None
    if lowered not in ENGINES:
        raise ValueError(
            f"{ENV_ENGINE} must be one of {ENGINES} (or auto/unset), "
            f"got {requested!r}"
        )
    return lowered


def obs_sidecar() -> bool:
    return env_flag(ENV_OBS_SIDECAR, False)


def serve_workers(explicit: int | None = None) -> int:
    """Effective ``repro serve`` process count: argument, else env, else 1.

    An explicit argument below 1 is a caller error and raises; a bad env
    value is clamped (the env knob must never crash startup).
    """
    if explicit is None:
        return max(1, env_int(ENV_SERVE_WORKERS, 1))
    explicit = int(explicit)
    if explicit < 1:
        raise ValueError(f"serve workers must be >= 1, got {explicit}")
    return explicit


def artifact_mmap() -> bool:
    return env_flag(ENV_ARTIFACT_MMAP, True)


def artifact_verify() -> bool:
    return env_flag(ENV_ARTIFACT_VERIFY, True)


def describe() -> list[dict[str, str]]:
    """Current settings for every declared knob (docs / debugging aid)."""
    return [
        {
            "name": knob.name,
            "kind": knob.kind,
            "default": knob.default,
            "value": _raw(knob.name),
            "help": knob.help,
        }
        for knob in KNOBS
    ]
