"""Core of the reproduction: atomic predicates, the AP Tree, and the
two-stage AP Classifier, with real-time updates and reconstruction."""

from .aptree import APTree, APTreeNode, build_ap_tree
from .atomic import AtomicUniverse, LeafSplit
from .concurrent import ConcurrentClassifier
from .delta import BehaviorDelta, behavior_delta, diff_behaviors, first_divergence
from .propagation import AtomPropagation, PropagationResult
from .verifier import NetworkVerifier, WaypointViolation
from .behavior import Behavior, BehaviorComputer, TraceEdge, TraceNode
from .classifier import APClassifier, ClassifierStats
from .compiled import (
    CompiledAPTree,
    FlatBDDSet,
    available_backends,
    default_backend,
)
from .construction import (
    ConstructionReport,
    STRATEGIES,
    best_from_random,
    build_oapt,
    build_optimal,
    build_quick_ordering,
    build_random,
    build_tree,
    build_with_order,
)
from .middlebox import (
    DETERMINISTIC,
    PAYLOAD_DEPENDENT,
    PROBABILISTIC,
    FlowEntry,
    HeaderRewrite,
    Middlebox,
    MiddleboxAwareComputer,
    MiddleboxTable,
    PossibleBehavior,
    RewriteBranch,
)
from .ordering import (
    fixed_order_chooser,
    oapt_chooser,
    optimal_subtree_cost,
    quick_ordering,
)
from .reconstruction import (
    DynamicSimulation,
    QueryCostModel,
    ThroughputSample,
    UpdateEvent,
    poisson_update_schedule,
)
from .snapshots import SnapshotMismatch, load_classifier, save_classifier
from .transactions import UpdateTransaction, VerificationFailed
from .update import UpdateEngine, UpdateResult
from .weights import VisitCounter

__all__ = [
    "APClassifier",
    "CompiledAPTree",
    "FlatBDDSet",
    "available_backends",
    "default_backend",
    "ClassifierStats",
    "ConcurrentClassifier",
    "NetworkVerifier",
    "WaypointViolation",
    "AtomPropagation",
    "PropagationResult",
    "BehaviorDelta",
    "behavior_delta",
    "diff_behaviors",
    "first_divergence",
    "APTree",
    "APTreeNode",
    "build_ap_tree",
    "AtomicUniverse",
    "LeafSplit",
    "Behavior",
    "BehaviorComputer",
    "TraceNode",
    "TraceEdge",
    "ConstructionReport",
    "STRATEGIES",
    "best_from_random",
    "build_oapt",
    "build_optimal",
    "build_quick_ordering",
    "build_random",
    "build_tree",
    "build_with_order",
    "fixed_order_chooser",
    "oapt_chooser",
    "optimal_subtree_cost",
    "quick_ordering",
    "UpdateEngine",
    "UpdateResult",
    "UpdateTransaction",
    "VerificationFailed",
    "save_classifier",
    "load_classifier",
    "SnapshotMismatch",
    "VisitCounter",
    "DynamicSimulation",
    "QueryCostModel",
    "ThroughputSample",
    "UpdateEvent",
    "poisson_update_schedule",
    "Middlebox",
    "MiddleboxTable",
    "MiddleboxAwareComputer",
    "FlowEntry",
    "RewriteBranch",
    "HeaderRewrite",
    "PossibleBehavior",
    "DETERMINISTIC",
    "PAYLOAD_DEPENDENT",
    "PROBABILISTIC",
]
