"""The AP Tree: a binary decision tree over whole predicates.

Searching the tree classifies a packet to its atomic predicate in (average)
far fewer predicate evaluations than the number of predicates ``k``
(Section IV-A).  Internal nodes are labeled by a predicate; the packet goes
left/right by evaluating that predicate's BDD; leaves are labeled by atomic
predicates.  The tree is kept *pruned*: a predicate that would not split
the atoms reaching a node is simply never placed there, so every internal
node has exactly two children and every leaf is a real (non-false) atom.
"""

from __future__ import annotations

from typing import Callable, Iterator

from ..bdd import BDDManager
from .atomic import AtomicUniverse, LeafSplit

__all__ = ["APTree", "APTreeNode", "build_ap_tree"]


class APTreeNode:
    """One tree node; a leaf iff ``pid is None``.

    Internal nodes cache the raw BDD node id of their predicate so the
    search loop touches no dictionaries.  ``high`` is the true branch.
    """

    __slots__ = ("pid", "fn_node", "low", "high", "atom_id")

    def __init__(self) -> None:
        self.pid: int | None = None
        self.fn_node = 0
        self.low: APTreeNode | None = None
        self.high: APTreeNode | None = None
        self.atom_id: int | None = None

    @property
    def is_leaf(self) -> bool:
        return self.pid is None

    @classmethod
    def leaf(cls, atom_id: int) -> "APTreeNode":
        node = cls()
        node.atom_id = atom_id
        return node

    @classmethod
    def internal(
        cls, pid: int, fn_node: int, low: "APTreeNode", high: "APTreeNode"
    ) -> "APTreeNode":
        node = cls()
        node.pid = pid
        node.fn_node = fn_node
        node.low = low
        node.high = high
        return node

    def __repr__(self) -> str:
        if self.is_leaf:
            return f"APTreeNode(leaf atom={self.atom_id})"
        return f"APTreeNode(pid={self.pid})"


class APTree:
    """A built tree plus the search and maintenance entry points."""

    def __init__(self, manager: BDDManager, root: APTreeNode) -> None:
        self.manager = manager
        self.root = root
        #: Bumped on every structural mutation; compiled artifacts
        #: (:mod:`repro.core.compiled`) stamp the version they saw and
        #: fall back to this interpreted tree once it moves.
        self.version = 0
        #: Optional :class:`repro.obs.Recorder`.  Checked once per query
        #: (not per node): when ``None`` the search loops below are the
        #: exact uninstrumented code.
        self.recorder = None
        # atom id -> leaf node, so updates touch only the affected leaves
        # instead of walking every leaf per predicate addition.
        self._leaf_index: dict[int, APTreeNode] = {
            leaf.atom_id: leaf  # type: ignore[misc]
            for leaf in self._walk()
            if leaf.is_leaf
        }

    def touch(self) -> None:
        """Mark the tree structurally changed (invalidates compiled forms)."""
        self.version += 1

    # ------------------------------------------------------------------
    # Search (stage 1 of AP Classifier)
    # ------------------------------------------------------------------

    def classify(self, header: int) -> int:
        """Atom id for a packed header.

        At each internal node the packet is evaluated against the node's
        predicate BDD; sibling subtrees hold disjoint packet sets, so the
        root-to-leaf path is unique (Section IV-A).
        """
        node = self.root
        evaluate = self.manager.evaluate_from
        rec = self.recorder
        if rec is None:
            while node.pid is not None:
                node = node.high if evaluate(node.fn_node, header) else node.low
        else:
            depth = 0
            while node.pid is not None:
                depth += 1
                node = node.high if evaluate(node.fn_node, header) else node.low
            rec.tree.record_query(depth)
        atom_id = node.atom_id
        assert atom_id is not None
        return atom_id

    def classify_many(self, headers) -> list[int]:
        """Classify a batch of headers.

        Functionally ``[classify(h) for h in headers]`` with the hot-loop
        state hoisted out; the benchmark harness uses it for throughput
        runs where per-call overhead would otherwise dominate.  The
        recorder check is hoisted out of the loop too: with no recorder
        attached the loop below is the exact uninstrumented code.
        """
        root = self.root
        evaluate = self.manager.evaluate_from
        rec = self.recorder
        results: list[int] = []
        append = results.append
        if rec is None:
            for header in headers:
                node = root
                while node.pid is not None:
                    node = node.high if evaluate(node.fn_node, header) else node.low
                append(node.atom_id)  # type: ignore[arg-type]
            return results
        record_query = rec.tree.record_query
        for header in headers:
            node = root
            depth = 0
            while node.pid is not None:
                depth += 1
                node = node.high if evaluate(node.fn_node, header) else node.low
            record_query(depth)
            append(node.atom_id)  # type: ignore[arg-type]
        return results

    def explain(self, header: int) -> list[tuple[int, bool]]:
        """The search trace: (predicate pid, verdict) per node visited.

        Debugging hook: shows exactly which predicates the packet was
        evaluated against and how it branched on each.
        """
        node = self.root
        evaluate = self.manager.evaluate_from
        trace: list[tuple[int, bool]] = []
        while node.pid is not None:
            verdict = evaluate(node.fn_node, header)
            trace.append((node.pid, verdict))
            node = node.high if verdict else node.low
        rec = self.recorder
        if rec is not None:
            rec.tree.record_query(len(trace))
        return trace

    def classify_with_depth(self, header: int) -> tuple[int, int]:
        """Like :meth:`classify` but also counts evaluated predicates."""
        node = self.root
        evaluate = self.manager.evaluate_from
        depth = 0
        while node.pid is not None:
            depth += 1
            node = node.high if evaluate(node.fn_node, header) else node.low
        atom_id = node.atom_id
        assert atom_id is not None
        rec = self.recorder
        if rec is not None:
            rec.tree.record_query(depth)
        return atom_id, depth

    # ------------------------------------------------------------------
    # Structure inspection
    # ------------------------------------------------------------------

    def leaves(self) -> Iterator[APTreeNode]:
        yield from (node for node in self._walk() if node.is_leaf)

    def _walk(self) -> Iterator[APTreeNode]:
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            if not node.is_leaf:
                assert node.low is not None and node.high is not None
                stack.append(node.low)
                stack.append(node.high)

    def leaf_depths(self) -> dict[int, int]:
        """Atom id -> number of predicates evaluated to reach its leaf."""
        depths: dict[int, int] = {}
        stack: list[tuple[APTreeNode, int]] = [(self.root, 0)]
        while stack:
            node, depth = stack.pop()
            if node.is_leaf:
                assert node.atom_id is not None
                depths[node.atom_id] = depth
            else:
                assert node.low is not None and node.high is not None
                stack.append((node.low, depth + 1))
                stack.append((node.high, depth + 1))
        return depths

    def average_depth(self, weights: dict[int, float] | None = None) -> float:
        """Mean leaf depth, optionally weighted by atom visit frequency."""
        depths = self.leaf_depths()
        if not depths:
            return 0.0
        if weights is None:
            return sum(depths.values()) / len(depths)
        total_weight = sum(weights.get(atom, 1.0) for atom in depths)
        weighted = sum(
            depth * weights.get(atom, 1.0) for atom, depth in depths.items()
        )
        return weighted / total_weight if total_weight else 0.0

    def max_depth(self) -> int:
        depths = self.leaf_depths()
        return max(depths.values(), default=0)

    def node_count(self) -> int:
        return sum(1 for _ in self._walk())

    def leaf_count(self) -> int:
        return sum(1 for _ in self.leaves())

    # ------------------------------------------------------------------
    # Real-time update (Section VI-A), tree side
    # ------------------------------------------------------------------

    def apply_splits(
        self, pid: int, fn_node: int, splits: list[LeafSplit]
    ) -> int:
        """Mirror a predicate addition onto the leaves.

        For every split atom the leaf grows two children under an internal
        node labeled by the new predicate; absorbed atoms keep their leaf
        (relabeled when the universe minted the surviving side under the
        old id, which it does -- ids only change on real splits).  Leaves
        are found through the atom-id index, so the cost is proportional
        to the number of *affected* leaves, not the leaf count.  Returns
        the number of leaves that were split.
        """
        index = self._leaf_index
        split_count = 0
        for split in splits:
            if not split.is_split:
                continue
            leaf = index.get(split.old_id)
            if leaf is None:
                continue  # atom not represented in this tree
            assert split.inside_id is not None and split.outside_id is not None
            high = APTreeNode.leaf(split.inside_id)
            low = APTreeNode.leaf(split.outside_id)
            leaf.pid = pid
            leaf.fn_node = fn_node
            leaf.high = high
            leaf.low = low
            leaf.atom_id = None
            del index[split.old_id]
            index[split.inside_id] = high
            index[split.outside_id] = low
            split_count += 1
        self.touch()
        rec = self.recorder
        if rec is not None:
            rec.updates.record_splits(split_count)
        return split_count

    def __repr__(self) -> str:
        return (
            f"APTree({self.leaf_count()} leaves, "
            f"avg depth {self.average_depth():.2f})"
        )


def build_ap_tree(
    universe: AtomicUniverse,
    choose: Callable[[list[int], frozenset[int]], int],
    candidate_pids: list[int] | None = None,
) -> APTree:
    """Top-down pruned construction.

    ``choose(candidates, atoms)`` picks the predicate to place at the root
    of the subtree whose reachable atom set is ``atoms``; candidates are
    exactly the predicates that *split* ``atoms`` (both sides non-empty),
    so pruning never creates single-child nodes.  The ordering strategies
    of Section V are all expressed as ``choose`` functions.
    """
    pids = list(universe.predicate_ids()) if candidate_pids is None else list(candidate_pids)
    r_sets = {pid: universe.r(pid) for pid in pids}
    manager = universe.manager

    def build(candidates: list[int], atoms: frozenset[int]) -> APTreeNode:
        if len(atoms) == 1:
            return APTreeNode.leaf(next(iter(atoms)))
        # A predicate splits this subtree iff both sides are non-empty; the
        # filter also holds for every descendant, so we can narrow as we go.
        splitting = [
            pid
            for pid in candidates
            if 0 < len(atoms & r_sets[pid]) < len(atoms)
        ]
        if not splitting:
            raise ValueError(
                "multiple atoms but no predicate distinguishes them; "
                "the universe and candidate predicates are inconsistent"
            )
        pid = choose(splitting, atoms)
        inside = atoms & r_sets[pid]
        outside = atoms - r_sets[pid]
        remaining = [candidate for candidate in splitting if candidate != pid]
        return APTreeNode.internal(
            pid,
            universe.predicate_fn(pid).node,
            build(remaining, outside),
            build(remaining, inside),
        )

    atoms = universe.atom_ids()
    if not atoms:
        raise ValueError("cannot build an AP Tree over zero atoms")
    if len(atoms) == 1:
        return APTree(manager, APTreeNode.leaf(next(iter(atoms))))
    return APTree(manager, build(pids, atoms))
