"""Atomic predicates: the minimal packet equivalence classes.

For a predicate set ``P = {p1..pk}`` the atomic predicates are the
non-false conjunctions ``q1 & q2 & ... & qk`` with ``qi in {pi, ~pi}``
(Section III, following Yang & Lam's AP Verifier).  They form the minimal
partition of the header space such that all packets in one class have
identical behavior at every box.

:class:`AtomicUniverse` computes the atoms by iterative refinement and
maintains, for every predicate ``p``, the set ``R(p)`` of atom ids whose
disjunction equals ``p`` -- the integer-set representation that all AP Tree
construction decisions use instead of BDD operations (Section V-C, "Time
Efficiency").  It also supports the incremental predicate addition/removal
that real-time updates need (Section VI-A).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from ..bdd import BDDManager, Function
from ..network.dataplane import LabeledPredicate

__all__ = ["AtomMerge", "AtomicUniverse", "LeafSplit"]


@dataclass(frozen=True)
class LeafSplit:
    """How one existing atom reacted to a newly added predicate.

    Exactly one of three shapes:

    * split: ``inside_id`` and ``outside_id`` are two *new* atom ids
      replacing ``old_id`` (``a & p`` and ``a & ~p`` both non-false);
    * absorbed inside: ``inside_id == old_id``, ``outside_id is None``;
    * absorbed outside: ``outside_id == old_id``, ``inside_id is None``.
    """

    old_id: int
    inside_id: int | None
    outside_id: int | None

    @property
    def is_split(self) -> bool:
        return self.inside_id is not None and self.outside_id is not None


@dataclass(frozen=True)
class AtomMerge:
    """Atoms coalesced into one because no live predicate separates them.

    The inverse of :class:`LeafSplit`: after a predicate removal, the
    sibling atoms it once split apart have identical live memberships and
    collapse into a fresh atom (``merged_id``) that inherits them.  Under
    pure incremental maintenance ``parts`` is always a pair; histories
    with stacked tombstones can produce larger groups.
    """

    merged_id: int
    parts: tuple[int, ...]


class AtomicUniverse:
    """The live atoms, the live predicates, and the ``R`` mapping."""

    def __init__(self, manager: BDDManager) -> None:
        self.manager = manager
        self._atoms: dict[int, Function] = {}
        self._next_atom_id = 0
        # pid -> predicate function (live predicates only).
        self._pred_fns: dict[int, Function] = {}
        # pid -> set of atom ids whose disjunction is the predicate.
        self._r: dict[int, set[int]] = {}
        # atom id -> set of pids whose R contains that atom.
        self._containing: dict[int, set[int]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def compute(
        cls, manager: BDDManager, predicates: Iterable[LabeledPredicate]
    ) -> "AtomicUniverse":
        """Full refinement over a predicate snapshot.

        Starts from the single class TRUE and splits every class by every
        predicate in turn, tracking which side each class lands on so the
        ``R`` sets come out of the same pass.
        """
        universe = cls(manager)
        root = universe._mint_atom(Function.true(manager))
        # Each working atom carries the set of pids that contain it so far.
        memberships: dict[int, set[int]] = {root: set()}
        for labeled in predicates:
            universe._register_predicate(labeled.pid, labeled.fn)
            replacements: dict[int, tuple[tuple[int, set[int]], ...]] = {}
            for atom_id, inside_pids in memberships.items():
                atom = universe._atoms[atom_id]
                inside = atom & labeled.fn
                if inside.is_false:
                    continue  # atom entirely outside p: membership unchanged
                outside = atom - labeled.fn
                if outside.is_false:
                    inside_pids.add(labeled.pid)
                    continue  # atom entirely inside p
                in_id = universe._mint_atom(inside)
                out_id = universe._mint_atom(outside)
                universe._drop_atom(atom_id)
                replacements[atom_id] = (
                    (in_id, inside_pids | {labeled.pid}),
                    (out_id, set(inside_pids)),
                )
            for old_id, children in replacements.items():
                del memberships[old_id]
                for child_id, pids in children:
                    memberships[child_id] = pids
        for atom_id, inside_pids in memberships.items():
            for pid in inside_pids:
                universe._r[pid].add(atom_id)
                universe._containing[atom_id].add(pid)
        return universe

    @classmethod
    def assemble(
        cls,
        manager: BDDManager,
        pred_fns: Mapping[int, Function],
        atoms: Iterable[Function],
        r: Mapping[int, Iterable[int]],
    ) -> "AtomicUniverse":
        """Rebuild a universe from already-computed parts.

        ``atoms`` become ids ``0..n-1`` in iteration order; ``r`` maps each
        pid to the atom ids (positions) inside it.  This is the re-entry
        point for universes that crossed a process boundary (the parallel
        pipeline and the reconstruction worker ship atoms via
        :mod:`repro.bdd.serialize` and reassemble here) and for merges.
        The invariants are *not* re-verified -- use :meth:`verify_partition`
        when the parts come from an untrusted path.
        """
        universe = cls(manager)
        for fn in atoms:
            if fn.is_false:
                raise ValueError("an atom must be satisfiable")
            universe._mint_atom(fn)
        for pid in sorted(pred_fns):
            universe._register_predicate(pid, pred_fns[pid])
            r_set = universe._r[pid]
            for atom_id in r.get(pid, ()):
                r_set.add(atom_id)
                universe._containing[atom_id].add(pid)
        return universe

    @classmethod
    def assemble_with_ids(
        cls,
        manager: BDDManager,
        pred_fns: Mapping[int, Function],
        atoms: Mapping[int, Function],
        r: Mapping[int, Iterable[int]],
    ) -> "AtomicUniverse":
        """:meth:`assemble`, but preserving explicit atom ids.

        Persistence paths (``repro.core.snapshots``, ``repro.artifact``)
        must restore a classifier whose atom ids are bit-identical to
        the saved ones -- classification *output* is atom ids, so
        re-minting ``0..n-1`` would change answers for any universe
        whose ids have gaps (post-update states).  ``r`` references are
        validated against ``atoms``; invariants beyond that are not
        re-verified (see :meth:`verify_partition`).
        """
        universe = cls(manager)
        for atom_id in sorted(atoms):
            fn = atoms[atom_id]
            if fn.is_false:
                raise ValueError("an atom must be satisfiable")
            universe._atoms[int(atom_id)] = fn
            universe._containing[int(atom_id)] = set()
        universe._next_atom_id = max(atoms, default=-1) + 1
        for pid in sorted(pred_fns):
            universe._register_predicate(pid, pred_fns[pid])
            r_set = universe._r[pid]
            for atom_id in r.get(pid, ()):
                if atom_id not in universe._containing:
                    raise ValueError(
                        f"R({pid}) references unknown atom {atom_id}"
                    )
                r_set.add(atom_id)
                universe._containing[atom_id].add(pid)
        return universe

    def renumber_canonical(self) -> "AtomicUniverse":
        """The same universe with atoms renumbered ``0..n-1`` by witness.

        Atoms are sorted by their smallest satisfying assignment
        (:meth:`BDDManager.first_sat`) -- a total order that depends only
        on the partition itself, never on the refinement history.  Two
        universes over the same predicate set therefore get identical atom
        ids however they were computed, which is what makes the parallel
        pipeline's output independent of the worker count.
        """
        first_sat = self.manager.first_sat
        order = sorted(
            self._atoms, key=lambda aid: first_sat(self._atoms[aid].node)
        )
        mapping = {old: new for new, old in enumerate(order)}
        return AtomicUniverse.assemble(
            self.manager,
            dict(self._pred_fns),
            [self._atoms[old] for old in order],
            {
                pid: [mapping[old] for old in atom_ids]
                for pid, atom_ids in self._r.items()
            },
        )

    def _mint_atom(self, fn: Function) -> int:
        atom_id = self._next_atom_id
        self._next_atom_id += 1
        self._atoms[atom_id] = fn
        self._containing[atom_id] = set()
        return atom_id

    def _drop_atom(self, atom_id: int) -> None:
        del self._atoms[atom_id]
        for pid in self._containing.pop(atom_id):
            self._r[pid].discard(atom_id)

    def _register_predicate(self, pid: int, fn: Function) -> None:
        if pid in self._pred_fns:
            raise ValueError(f"predicate pid {pid} already registered")
        self._pred_fns[pid] = fn
        self._r[pid] = set()

    # ------------------------------------------------------------------
    # Read access
    # ------------------------------------------------------------------

    @property
    def atom_count(self) -> int:
        return len(self._atoms)

    @property
    def predicate_count(self) -> int:
        return len(self._pred_fns)

    def atom_ids(self) -> frozenset[int]:
        return frozenset(self._atoms)

    def atom_fn(self, atom_id: int) -> Function:
        return self._atoms[atom_id]

    def atoms(self) -> Mapping[int, Function]:
        return dict(self._atoms)

    def predicate_ids(self) -> list[int]:
        return sorted(self._pred_fns)

    def predicate_fn(self, pid: int) -> Function:
        return self._pred_fns[pid]

    def has_predicate(self, pid: int) -> bool:
        return pid in self._pred_fns

    def r(self, pid: int) -> frozenset[int]:
        """``R(p)``: ids of the atoms whose disjunction equals predicate ``pid``."""
        return frozenset(self._r[pid])

    def memberships(self, atom_id: int) -> frozenset[int]:
        """Live pids whose ``R`` set contains the atom (inverse of :meth:`r`)."""
        return frozenset(self._containing[atom_id])

    def contains(self, pid: int, atom_id: int) -> bool:
        """Is the atom inside the predicate?  (``ap in R(p)``, Section IV-B.)"""
        r_set = self._r.get(pid)
        return r_set is not None and atom_id in r_set

    def classify(self, header: int) -> int:
        """Atom id of a packed header, by linear scan over atom BDDs.

        This is the reference classifier (and the APLinear baseline's inner
        loop); the AP Tree must always agree with it.
        """
        for atom_id, fn in self._atoms.items():
            if fn.evaluate(header):
                return atom_id
        raise RuntimeError("atoms must cover the full header space")

    def verify_partition(self) -> bool:
        """Check the defining invariants: atoms are pairwise disjoint,
        cover the space, and each R(p) reconstitutes p.  Test hook.

        Disjointness rides on a counting argument instead of the O(n^2)
        pairwise intersections: non-false atoms whose union is TRUE are
        pairwise disjoint iff their model counts sum to exactly
        ``2**num_vars`` (any overlap would be double-counted and push the
        sum over).  That keeps the check linear in the number of atoms and
        usable on multi-thousand-atom universes.
        """
        manager = self.manager
        union = Function.false(manager)
        total_models = 0
        for atom in self._atoms.values():
            if atom.is_false:
                return False
            total_models += manager.sat_count(atom.node)
            union = union | atom
        if not union.is_true:
            return False
        if total_models != 1 << manager.num_vars:
            return False
        for pid, fn in self._pred_fns.items():
            rebuilt = Function.false(self.manager)
            for atom_id in self._r[pid]:
                rebuilt = rebuilt | self._atoms[atom_id]
            if rebuilt.node != fn.node:
                return False
        return True

    # ------------------------------------------------------------------
    # Incremental updates (Section VI-A)
    # ------------------------------------------------------------------

    def add_predicate(self, pid: int, fn: Function) -> list[LeafSplit]:
        """Refine the universe by one new predicate.

        For every live atom ``a`` computes ``a & p`` and ``a & ~p``; atoms
        cut by ``p`` are replaced by two fresh atoms (inheriting all their
        ``R`` memberships), others keep their id.  Returns one
        :class:`LeafSplit` per atom so the AP Tree can mirror the change on
        its leaves.
        """
        self._register_predicate(pid, fn)
        splits: list[LeafSplit] = []
        r_set = self._r[pid]
        for atom_id in list(self._atoms):
            atom = self._atoms[atom_id]
            inside = atom & fn
            if inside.is_false:
                splits.append(LeafSplit(atom_id, None, atom_id))
                continue
            outside = atom - fn
            if outside.is_false:
                r_set.add(atom_id)
                self._containing[atom_id].add(pid)
                splits.append(LeafSplit(atom_id, atom_id, None))
                continue
            in_id = self._mint_atom(inside)
            out_id = self._mint_atom(outside)
            # Children inherit every membership of the parent.
            parent_pids = self._containing[atom_id]
            for member_pid in parent_pids:
                self._r[member_pid].add(in_id)
                self._r[member_pid].add(out_id)
                self._containing[in_id].add(member_pid)
                self._containing[out_id].add(member_pid)
            r_set.add(in_id)
            self._containing[in_id].add(pid)
            self._drop_atom(atom_id)
            splits.append(LeafSplit(atom_id, in_id, out_id))
        return splits

    def remove_predicate(self, pid: int) -> None:
        """Forget a predicate (tombstone semantics, Section VI-A).

        The atoms are left as-is -- they remain a correct (if no longer
        minimal) partition, and any AP Tree nodes labeled by the predicate
        keep evaluating it.  Stage 2 simply no longer consults it.
        """
        if pid not in self._pred_fns:
            raise KeyError(f"unknown predicate pid {pid}")
        del self._pred_fns[pid]
        for atom_id in self._r.pop(pid):
            self._containing[atom_id].discard(pid)

    def merge_siblings(
        self,
        pool: Iterable[int],
        groups: Mapping[int, int] | None = None,
    ) -> list[AtomMerge]:
        """Coalesce atoms in ``pool`` whose live memberships are identical.

        The delta counterpart of :meth:`coalesce`: instead of re-grouping
        the whole universe, only the atoms a removal may have affected are
        considered -- the callers (``repro.core.incremental``) pass the
        leaf atoms under the removed predicate's tree nodes, so the sweep
        is proportional to the touched region, not the atom count.

        ``groups`` optionally restricts merges to atoms sharing a group
        value (one group per spliced subtree): a pool atom with no group
        entry never merges.  Merged atoms get a fresh id inheriting the
        common memberships; returns one :class:`AtomMerge` per collapsed
        group (empty when the removal separated nothing).
        """
        buckets: dict[tuple[frozenset[int], int], list[int]] = {}
        for atom_id in pool:
            if atom_id not in self._atoms:
                continue
            if groups is None:
                group = 0
            elif atom_id in groups:
                group = groups[atom_id]
            else:
                continue
            key = (frozenset(self._containing[atom_id]), group)
            buckets.setdefault(key, []).append(atom_id)
        merges: list[AtomMerge] = []
        for (membership, _), members in sorted(
            buckets.items(), key=lambda item: min(item[1])
        ):
            if len(members) == 1:
                continue
            members.sort()
            merged = self._atoms[members[0]]
            for member in members[1:]:
                merged = merged | self._atoms[member]
            new_id = self._mint_atom(merged)
            for pid in membership:
                self._r[pid].add(new_id)
                self._containing[new_id].add(pid)
            for member in members:
                self._drop_atom(member)
            merges.append(AtomMerge(new_id, tuple(members)))
        return merges

    def coalesce(self) -> dict[int, int]:
        """Merge atoms no live predicate distinguishes.

        Predicate *deletions* leave the partition finer than necessary:
        two atoms split only by a tombstoned predicate now have identical
        membership in every live ``R`` set. Tree rebuilds over the same
        universe need the minimal partition back (otherwise no candidate
        predicate can separate the fragments). Returns an old->new atom id
        mapping (identity for untouched atoms) so callers can translate
        weights or counters.
        """
        groups: dict[frozenset[int], list[int]] = {}
        for atom_id in self._atoms:
            groups.setdefault(
                frozenset(self._containing[atom_id]), []
            ).append(atom_id)
        mapping: dict[int, int] = {}
        for membership, members in groups.items():
            if len(members) == 1:
                mapping[members[0]] = members[0]
                continue
            merged = self._atoms[members[0]]
            for member in members[1:]:
                merged = merged | self._atoms[member]
            new_id = self._mint_atom(merged)
            for pid in membership:
                self._r[pid].add(new_id)
                self._containing[new_id].add(pid)
            for member in members:
                mapping[member] = new_id
                self._drop_atom(member)
        return mapping

    def snapshot_predicates(self) -> list[tuple[int, Function]]:
        """The live (pid, function) pairs, for reconstruction."""
        return sorted(self._pred_fns.items())

    def __repr__(self) -> str:
        return (
            f"AtomicUniverse({self.predicate_count} predicates, "
            f"{self.atom_count} atoms)"
        )
