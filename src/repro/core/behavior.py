"""Stage 2: computing network-wide behaviors from an atomic predicate.

Given the atomic predicate of a packet and its ingress box, AP Classifier
walks the topology (Section IV-B): at each box it asks, for every relevant
predicate ``p``, whether the atom is in ``R(p)`` -- a set-membership test,
never a BDD operation.  The walk yields the packet's full forwarding tree:
output ports taken (several for multicast), hosts reached, drops and where
they happened, and loops.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from ..network.dataplane import DataPlane
from ..network.topology import Topology
from .atomic import AtomicUniverse

__all__ = [
    "BehaviorComputer",
    "Behavior",
    "TraceNode",
    "TraceEdge",
    "DROP_INPUT_ACL",
    "DROP_OUTPUT_ACL",
    "DROP_NO_ROUTE",
    "STOP_LOOP",
]

DROP_INPUT_ACL = "input_acl"
DROP_OUTPUT_ACL = "output_acl"
DROP_NO_ROUTE = "no_route"
STOP_LOOP = "loop"


@dataclass
class TraceEdge:
    """One forwarding decision out of a box."""

    out_port: str
    to_host: str | None = None  # delivered to this host
    child: "TraceNode | None" = None  # next box visited
    stopped: str | None = None  # STOP_LOOP / DROP_OUTPUT_ACL / exited network


@dataclass
class TraceNode:
    """The packet's visit to one box."""

    box: str
    in_port: str | None
    dropped: str | None = None  # drop reason at this box, if any
    edges: list[TraceEdge] = field(default_factory=list)


@dataclass
class Behavior:
    """Network-wide behavior of one packet class from one ingress box."""

    ingress_box: str
    atom_id: int
    root: TraceNode

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------

    def paths(self) -> list[list[str]]:
        """All root-to-end forwarding paths as box-name sequences."""
        results: list[list[str]] = []

        def walk(node: TraceNode, prefix: list[str]) -> None:
            here = prefix + [node.box]
            if node.dropped is not None or not node.edges:
                results.append(here)
                return
            for edge in node.edges:
                if edge.child is not None:
                    walk(edge.child, here)
                else:
                    results.append(here + ([edge.to_host] if edge.to_host else []))

        walk(self.root, [])
        return results

    def delivered_hosts(self) -> set[str]:
        return {
            edge.to_host
            for node in self._nodes()
            for edge in node.edges
            if edge.to_host is not None
        }

    def boxes_traversed(self) -> list[str]:
        """Boxes visited, in discovery order (useful for waypoint checks)."""
        ordered: list[str] = []
        seen: set[str] = set()
        for node in self._nodes():
            if node.box not in seen:
                seen.add(node.box)
                ordered.append(node.box)
        return ordered

    def drops(self) -> list[tuple[str, str]]:
        """(box, reason) for every drop in the forwarding tree."""
        found = [
            (node.box, node.dropped)
            for node in self._nodes()
            if node.dropped is not None
        ]
        found.extend(
            (node.box, edge.stopped)
            for node in self._nodes()
            for edge in node.edges
            if edge.stopped == DROP_OUTPUT_ACL
        )
        return found

    @property
    def is_dropped_everywhere(self) -> bool:
        """True when no copy of the packet reaches any host."""
        return not self.delivered_hosts()

    @property
    def has_loop(self) -> bool:
        return any(
            edge.stopped == STOP_LOOP
            for node in self._nodes()
            for edge in node.edges
        )

    def _nodes(self) -> Iterator[TraceNode]:
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            for edge in node.edges:
                if edge.child is not None:
                    stack.append(edge.child)

    def format_trace(self, indent: str = "  ") -> str:
        """Multi-line rendering of the forwarding tree, for humans.

        Example::

            b1 (in: None)
              -> to_b2 -> b2
                -> to_h2 => host h2
        """
        lines: list[str] = []

        def walk(node: TraceNode, depth: int) -> None:
            prefix = indent * depth
            drop = f"  [dropped: {node.dropped}]" if node.dropped else ""
            lines.append(f"{prefix}{node.box} (in: {node.in_port}){drop}")
            for edge in node.edges:
                edge_prefix = indent * (depth + 1) + f"-> {edge.out_port}"
                if edge.to_host is not None:
                    lines.append(f"{edge_prefix} => host {edge.to_host}")
                elif edge.stopped is not None:
                    lines.append(f"{edge_prefix} [stopped: {edge.stopped}]")
                elif edge.child is not None:
                    lines.append(f"{edge_prefix} ->")
                    walk(edge.child, depth + 2)

        walk(self.root, 0)
        return "\n".join(lines)

    def __repr__(self) -> str:
        hosts = sorted(self.delivered_hosts())
        return (
            f"Behavior(atom={self.atom_id}, ingress={self.ingress_box!r}, "
            f"hosts={hosts}, loops={self.has_loop})"
        )


class BehaviorComputer:
    """Computes behaviors by ``R(p)`` membership tests over the topology."""

    def __init__(self, dataplane: DataPlane, universe: AtomicUniverse) -> None:
        self.dataplane = dataplane
        self.universe = universe
        self.topology: Topology = dataplane.network.topology

    def compute(
        self, atom_id: int, ingress_box: str, in_port: str | None = None
    ) -> Behavior:
        """Full forwarding tree for packets of ``atom_id`` entering at
        ``ingress_box`` (optionally through a specific input port)."""
        if ingress_box not in self.dataplane.network.boxes:
            raise KeyError(f"unknown ingress box {ingress_box!r}")
        root = self._visit(atom_id, ingress_box, in_port, frozenset())
        return Behavior(ingress_box=ingress_box, atom_id=atom_id, root=root)

    def _visit(
        self,
        atom_id: int,
        box: str,
        in_port: str | None,
        on_path: frozenset[str],
    ) -> TraceNode:
        node = TraceNode(box=box, in_port=in_port)
        universe = self.universe

        if in_port is not None:
            acl_in = self.dataplane.input_acl_predicate(box, in_port)
            if acl_in is not None and not universe.contains(acl_in.pid, atom_id):
                node.dropped = DROP_INPUT_ACL
                return node

        on_path = on_path | {box}
        forwarded = False
        for entry in self.dataplane.forwarding_entries(box):
            if not universe.contains(entry.pid, atom_id):
                continue
            forwarded = True
            edge = TraceEdge(out_port=entry.port)
            node.edges.append(edge)
            acl_out = self.dataplane.output_acl_predicate(box, entry.port)
            if acl_out is not None and not universe.contains(acl_out.pid, atom_id):
                edge.stopped = DROP_OUTPUT_ACL
                continue
            host = self.topology.host_at(box, entry.port)
            if host is not None:
                edge.to_host = host
                continue
            next_ref = self.topology.next_hop(box, entry.port)
            if next_ref is None:
                # Unconnected port: the packet leaves the modeled network.
                edge.stopped = "egress"
                continue
            if next_ref.box in on_path:
                edge.stopped = STOP_LOOP
                continue
            edge.child = self._visit(atom_id, next_ref.box, next_ref.port, on_path)
        if not forwarded:
            node.dropped = DROP_NO_ROUTE
        return node
