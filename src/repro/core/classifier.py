"""AP Classifier: the user-facing two-stage query engine (Section IV).

Stage 1 classifies a packet to its atomic predicate by searching the AP
Tree; stage 2 computes the packet's network-wide behavior from that atom,
the topology, and the ingress box.  The classifier also owns the dynamic
machinery: rule updates (Section VI-A), visit counting for
distribution-aware trees (Section V-D), and tree rebuilds (Section VI-B).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..bdd import BDDManager
from ..headerspace.header import Packet
from ..network.builder import Network
from ..network.dataplane import DataPlane, PredicateChange
from ..network.rules import ForwardingRule
from .aptree import APTree
from .atomic import AtomicUniverse
from .behavior import Behavior, BehaviorComputer
from .compiled import STDLIB_BACKEND, CompiledAPTree
from .construction import build_tree
from .update import UpdateEngine, UpdateResult
from .weights import VisitCounter

__all__ = ["APClassifier", "ClassifierStats"]


@dataclass(frozen=True)
class ClassifierStats:
    """Point-in-time structural statistics (Table I / §VII-B material)."""

    predicates: int
    atoms: int
    tree_leaves: int
    tree_average_depth: float
    tree_max_depth: int
    bdd_nodes: int
    updates_since_rebuild: int
    estimated_bytes: int


class APClassifier:
    """Network-wide packet behavior identification."""

    #: Rough per-BDD-node footprint of a C implementation (var + two child
    #: pointers + unique-table slot), used for the memory estimate the
    #: paper reports; the pure-Python objects are larger, but the estimate
    #: tracks the quantity that matters -- node counts.
    BYTES_PER_BDD_NODE = 20
    BYTES_PER_TREE_NODE = 40

    #: Update-maintenance modes: ``tombstone`` is the paper's Section VI-A
    #: engine (removals tombstone, minimality decays until a rebuild);
    #: ``incremental`` keeps the partition minimal under churn with delta
    #: refinement, local tree splices, and in-place compiled patches
    #: (:mod:`repro.core.incremental`).
    MAINTENANCE_MODES = ("tombstone", "incremental")

    def __init__(
        self,
        dataplane: DataPlane,
        universe: AtomicUniverse,
        tree: APTree,
        strategy: str = "oapt",
        count_visits: bool = False,
        maintenance: str = "tombstone",
    ) -> None:
        if maintenance not in self.MAINTENANCE_MODES:
            raise ValueError(
                f"unknown maintenance mode {maintenance!r} "
                f"(expected one of {self.MAINTENANCE_MODES})"
            )
        self.dataplane = dataplane
        self.universe = universe
        self.tree = tree
        self.strategy = strategy
        self.maintenance = maintenance
        self.counter = VisitCounter() if count_visits else None
        self.behavior_computer = BehaviorComputer(dataplane, universe)
        #: Optional :class:`repro.obs.Recorder`; install via
        #: :meth:`set_recorder` so the tree, update engine, and BDD
        #: manager are wired (and re-wired across tree swaps) together.
        self.recorder = None
        self._engine = self._make_engine(universe, tree)
        self._compiled: CompiledAPTree | None = None

    def _make_engine(self, universe: AtomicUniverse, tree: APTree) -> UpdateEngine:
        if self.maintenance == "incremental":
            # Imported lazily: incremental imports construction, which
            # sits above this module in the package-init order.
            from .incremental import IncrementalEngine

            return IncrementalEngine(
                universe,
                tree,
                self.counter,
                recorder=self.recorder,
                classifier=self,
                strategy=self.strategy,
            )
        return UpdateEngine(universe, tree, self.counter, recorder=self.recorder)

    def set_maintenance(self, maintenance: str) -> None:
        """Switch update-maintenance mode; takes effect immediately.

        The replacement engine adopts the live ``(universe, tree)`` pair
        in place, so mid-stream switches are safe: an incremental engine
        handed a tombstone-era tree detects the dead labels and schedules
        one full rebuild on its first removal.
        """
        if maintenance == self.maintenance:
            return
        if maintenance not in self.MAINTENANCE_MODES:
            raise ValueError(
                f"unknown maintenance mode {maintenance!r} "
                f"(expected one of {self.MAINTENANCE_MODES})"
            )
        self.maintenance = maintenance
        self._engine = self._make_engine(self.universe, self.tree)

    def set_recorder(self, recorder) -> None:
        """Attach (or with ``None``, detach) an observability recorder.

        Covers every instrumented component this classifier owns: the
        interpreted tree's search loops, the update engine, and the
        shared BDD manager.  Tree swaps (:meth:`rebuild_tree`,
        :meth:`reconstruct`) carry the recorder over to the replacement
        structures automatically.
        """
        self.recorder = recorder
        self.tree.recorder = recorder
        self._engine.recorder = recorder
        self.dataplane.manager.recorder = recorder
        if recorder is not None:
            recorder.attach_manager(self.dataplane.manager)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls,
        network: Network,
        strategy: str = "oapt",
        manager: BDDManager | None = None,
        rng: random.Random | None = None,
        trials: int = 100,
        count_visits: bool = False,
        workers: int | None = None,
        maintenance: str = "tombstone",
    ) -> "APClassifier":
        """Compile a network and build the classifier in one step.

        ``workers`` (default: the ``REPRO_WORKERS`` environment variable,
        else 1) routes the offline phase through the multi-core pipeline
        of :mod:`repro.parallel`; the result is output-equivalent to the
        serial build for any worker count.
        """
        # Imported lazily: repro.parallel pulls in repro.core, which
        # imports this module at package init.
        from ..parallel import offline_pipeline, resolve_workers

        if resolve_workers(workers) > 1:
            result = offline_pipeline(
                network,
                workers=workers,
                strategy=strategy,
                manager=manager,
                rng=rng,
                trials=trials,
            )
            return cls(
                result.dataplane,
                result.universe,
                result.report.tree,
                strategy=strategy,
                count_visits=count_visits,
                maintenance=maintenance,
            )
        dataplane = DataPlane(network, manager)
        return cls.from_dataplane(
            dataplane,
            strategy=strategy,
            rng=rng,
            trials=trials,
            count_visits=count_visits,
            maintenance=maintenance,
        )

    @classmethod
    def from_dataplane(
        cls,
        dataplane: DataPlane,
        strategy: str = "oapt",
        rng: random.Random | None = None,
        trials: int = 100,
        count_visits: bool = False,
        maintenance: str = "tombstone",
    ) -> "APClassifier":
        universe = AtomicUniverse.compute(dataplane.manager, dataplane.predicates())
        report = build_tree(universe, strategy=strategy, rng=rng, trials=trials)
        return cls(
            dataplane,
            universe,
            report.tree,
            strategy=strategy,
            count_visits=count_visits,
            maintenance=maintenance,
        )

    # ------------------------------------------------------------------
    # Compiled engine (flat arrays + batched evaluation)
    # ------------------------------------------------------------------

    def compile(self, backend: str | None = None) -> CompiledAPTree:
        """Compile the current tree into a flat-array artifact.

        Queries use the artifact while it is fresh; any structural
        update (leaf split, tombstone) or tree swap invalidates it, and
        queries transparently fall back to the interpreted tree until
        ``compile()`` is called again -- the query-process /
        reconstruction-process split of Section VI-B.
        """
        self._compiled = CompiledAPTree.compile(self.tree, backend=backend)
        rec = self.recorder
        if rec is not None:
            rec.updates.compiles += 1
        return self._compiled

    def attach_compiled(self, compiled: CompiledAPTree) -> CompiledAPTree:
        """Adopt an externally constructed compiled engine.

        The warm-start half of the persistence story: a binary artifact
        load rebuilds the engine from stored arrays
        (:meth:`CompiledAPTree.from_arrays`) instead of re-flattening
        the tree, then installs it here.  The engine must be stamped
        against this classifier's live tree -- attaching a stale one
        would silently send every query down the interpreted fallback,
        which is exactly the failure mode the freshness check exists to
        catch.
        """
        if not compiled.is_fresh_for(self.tree):
            raise ValueError(
                "compiled engine is stale for this classifier's tree "
                "(stamp it with the live tree before attaching)"
            )
        self._compiled = compiled
        return compiled

    @property
    def compiled(self) -> CompiledAPTree | None:
        """The last compiled artifact, fresh or not (``None`` if never)."""
        return self._compiled

    @property
    def compiled_fresh(self) -> bool:
        """Is there a compiled artifact matching the live tree exactly?"""
        compiled = self._compiled
        return compiled is not None and compiled.is_fresh_for(self.tree)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def classify(self, packet: Packet | int) -> int:
        """Stage 1: the atomic predicate (atom id) of a packet."""
        header = packet.value if isinstance(packet, Packet) else packet
        compiled = self._compiled
        if compiled is not None and compiled.is_fresh_for(self.tree):
            atom_id = compiled.classify(header)
        else:
            rec = self.recorder
            if rec is not None and compiled is not None:
                rec.updates.record_stale_fallback(
                    compiled.stale_reason(self.tree)
                )
            atom_id = self.tree.classify(header)
        if self.counter is not None:
            self.counter.record(atom_id)
        return atom_id

    def classify_batch(self, packets) -> list[int]:
        """Stage 1 for a whole batch.

        Uses the compiled engine's batched bit-parallel path when a
        fresh artifact exists, otherwise the interpreted
        :meth:`APTree.classify_many`; results are identical.
        """
        headers = [
            packet.value if isinstance(packet, Packet) else packet
            for packet in packets
        ]
        compiled = self._compiled
        if compiled is not None and compiled.is_fresh_for(self.tree):
            atom_ids = compiled.classify_batch(headers)
        else:
            rec = self.recorder
            if rec is not None and compiled is not None:
                rec.updates.record_stale_fallback(
                    compiled.stale_reason(self.tree)
                )
            atom_ids = self.tree.classify_many(headers)
        if self.counter is not None:
            record = self.counter.record
            for atom_id in atom_ids:
                record(atom_id)
        return atom_ids

    def classify_batch_array(self, headers, out=None):
        """Stage 1 for a batch, numpy arrays end-to-end.

        ``headers`` is a ``uint64`` header array (adopted zero-copy by
        the compiled kernel) or a plain sequence; the result is an
        ``int64`` atom-id array, written into ``out`` when a reusable
        buffer is supplied.  Requires numpy in the process.  When no
        fresh accelerated artifact exists (stale artifact, or a
        stdlib-backend engine) the batch takes the same exact fallback
        as :meth:`classify_batch` and is copied into the array -- the
        array interface never trades exactness.
        """
        compiled = self._compiled
        if (
            compiled is not None
            and compiled.is_fresh_for(self.tree)
            and compiled.backend != STDLIB_BACKEND
        ):
            atom_ids = compiled.classify_batch_array(headers, out=out)
            if self.counter is not None:
                record = self.counter.record
                for atom_id in atom_ids.tolist():
                    record(atom_id)
            return atom_ids
        import numpy as np

        if isinstance(headers, np.ndarray):
            headers = headers.tolist()
        # classify_batch does the stale-fallback accounting and visit
        # counting for this branch.
        atom_list = self.classify_batch(headers)
        if out is None:
            return np.asarray(atom_list, dtype=np.int64)
        out[: len(atom_list)] = atom_list
        return out

    def behavior_of_atom(
        self, atom_id: int, ingress_box: str, in_port: str | None = None
    ) -> Behavior:
        """Stage 2 only: behavior of a known atom from an ingress box."""
        return self.behavior_computer.compute(atom_id, ingress_box, in_port)

    def query(
        self, packet: Packet | int, ingress_box: str, in_port: str | None = None
    ) -> Behavior:
        """Both stages: full network-wide behavior of a packet.

        Stage 1 (:meth:`classify`) finds the packet's atomic predicate;
        stage 2 (:meth:`behavior_of_atom`) walks the topology from
        ``ingress_box`` using only integer-set membership tests.  The
        returned :class:`~repro.core.behavior.Behavior` exposes
        ``paths()``, ``delivered_hosts()``, and ``drops()``.
        """
        return self.behavior_of_atom(self.classify(packet), ingress_box, in_port)

    # ------------------------------------------------------------------
    # Flow-set queries (Section I: "a flow or a set of flows")
    # ------------------------------------------------------------------

    def atoms_matching(self, match) -> frozenset[int]:
        """Atomic predicates intersecting a rule-style match.

        This is how "which flows does this update affect?" is asked: the
        atoms overlapping the new rule's match are exactly the packet
        classes whose behavior could change.
        """
        fn = self.dataplane.compiler.match_predicate(match)
        if fn.is_true:
            return self.universe.atom_ids()
        return frozenset(
            atom_id
            for atom_id, atom_fn in self.universe.atoms().items()
            if not atom_fn.disjoint(fn)
        )

    def query_flow_set(
        self, match, ingress_box: str, in_port: str | None = None
    ) -> dict[int, Behavior]:
        """Behaviors of every packet class covered by ``match``.

        One stage-2 walk per overlapping atom -- the verification step the
        controller runs on the affected flows before committing a rule.
        """
        return {
            atom_id: self.behavior_of_atom(atom_id, ingress_box, in_port)
            for atom_id in sorted(self.atoms_matching(match))
        }

    # ------------------------------------------------------------------
    # Updates (Section VI-A)
    # ------------------------------------------------------------------

    @property
    def updates_since_rebuild(self) -> int:
        return self._engine.updates_applied

    def apply_changes(self, changes: list[PredicateChange]) -> list[UpdateResult]:
        """Apply predicate diffs produced by the data plane."""
        return self._engine.apply_all(changes)

    def insert_rule(self, box: str, rule: ForwardingRule) -> list[UpdateResult]:
        """Install a forwarding rule and update the classifier in real time."""
        return self.apply_changes(self.dataplane.insert_rule(box, rule))

    def remove_rule(self, box: str, rule: ForwardingRule) -> list[UpdateResult]:
        """Remove a forwarding rule and update the classifier in real time."""
        return self.apply_changes(self.dataplane.remove_rule(box, rule))

    def transaction(self):
        """Open a verify-then-commit update transaction (Section I).

        Returns an :class:`repro.core.transactions.UpdateTransaction`;
        use it as a context manager so failures roll back automatically.
        """
        from .transactions import UpdateTransaction

        return UpdateTransaction(self)

    # ------------------------------------------------------------------
    # Rebuilds (Sections V-D and VI-B)
    # ------------------------------------------------------------------

    def rebuild_tree(self, use_weights: bool = False) -> None:
        """Rebuild the AP Tree over the *current* universe.

        Cheap compared to :meth:`reconstruct`; used when only tree balance
        (not atom minimality) has degraded, and for distribution-aware
        rebuilds from the visit counter. Atoms fragmented by tombstoned
        predicates are coalesced first, so the rebuilt tree is over the
        minimal partition for the *live* predicates.
        """
        mapping = self.universe.coalesce()
        if self.counter is not None:
            self.counter.on_merge(mapping)
        weights = None
        if use_weights:
            if self.counter is None:
                raise ValueError("classifier was built without visit counting")
            weights = self.counter.weights()
        report = build_tree(self.universe, strategy=self.strategy, weights=weights)
        rec = self.recorder
        if rec is not None:
            rec.updates.rebuilds += 1
        self._swap_tree(self.universe, report.tree)

    def reconstruct(self) -> None:
        """Full reconstruction (Section VI-B).

        Recomputes the atomic predicates from the live data plane
        predicates -- shedding tombstoned predicates and re-merging atoms
        that updates fragmented -- then rebuilds the tree.
        """
        universe = AtomicUniverse.compute(
            self.dataplane.manager, self.dataplane.predicates()
        )
        report = build_tree(universe, strategy=self.strategy)
        self.install_rebuild(universe, report.tree)

    def install_rebuild(self, universe: AtomicUniverse, tree: APTree) -> None:
        """Adopt an externally built ``(universe, tree)`` pair.

        The swap half of the Section VI-B split for callers that run the
        rebuild elsewhere -- a background thread or process (see
        :class:`repro.serve.QueryService` and
        :class:`repro.parallel.ReconstructionProcess`).  The pair must
        describe this classifier's data plane (same ``BDDManager``); any
        updates that arrived after the rebuild's predicate snapshot must
        already have been replayed onto it.  Counts as a reconstruction
        in the observability metrics; the compiled artifact is dropped,
        so queries take the interpreted path until :meth:`compile`.
        """
        rec = self.recorder
        if rec is not None:
            rec.updates.reconstructs += 1
        self._swap_tree(universe, tree)

    def _swap_tree(self, universe: AtomicUniverse, tree: APTree) -> None:
        if universe is not self.universe:
            self.universe = universe
            self.behavior_computer = BehaviorComputer(self.dataplane, universe)
            if self.counter is not None:
                self.counter.reset()
        self.tree = tree
        tree.recorder = self.recorder
        self._engine = self._make_engine(universe, tree)
        # The artifact described the old tree; queries fall back to the
        # interpreted path until the caller recompiles.
        self._compiled = None

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------

    def stats(self) -> ClassifierStats:
        bdd_nodes = len(self.dataplane.manager)
        tree_nodes = self.tree.node_count()
        return ClassifierStats(
            predicates=len(self.dataplane),
            atoms=self.universe.atom_count,
            tree_leaves=self.tree.leaf_count(),
            tree_average_depth=self.tree.average_depth(),
            tree_max_depth=self.tree.max_depth(),
            bdd_nodes=bdd_nodes,
            updates_since_rebuild=self.updates_since_rebuild,
            estimated_bytes=(
                bdd_nodes * self.BYTES_PER_BDD_NODE
                + tree_nodes * self.BYTES_PER_TREE_NODE
            ),
        )

    def __repr__(self) -> str:
        return (
            f"APClassifier({self.strategy}, {len(self.dataplane)} predicates, "
            f"{self.universe.atom_count} atoms)"
        )
