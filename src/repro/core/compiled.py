"""Compiled classification engine: flat arrays + batched bit-parallel BDDs.

The interpreted query path (:meth:`repro.core.aptree.APTree.classify`)
spends nearly all of its time inside ``BDDManager.evaluate`` -- a
per-bit Python loop over the manager's global node lists.  This module
trades that pointer-chasing for *compiled* artifacts: once a structure
is built, it is flattened into small contiguous integer arrays that a
tight loop (or a handful of numpy gathers) can walk without touching a
single Python object graph.

Three layers, lowest first:

* :func:`flatten_bdds` -- each referenced BDD becomes one contiguous,
  level-ordered ``(var, low, high)`` slice.  Level order (nodes sorted
  by variable) is simultaneously a topological order, which the batch
  evaluators below rely on, and keeps a top-down walk moving forward
  through memory.
* :class:`FlatBDDSet` -- a set of flattened predicates with batched
  evaluation: every packet's verdict for every root in one pass.  The
  ``aplinear``/``pscan`` baselines use it so Fig. 12's engine comparison
  stays apples-to-apples.
* :class:`CompiledAPTree` -- a built AP Tree compiled to (a) the
  parallel tree arrays ``pred_entry`` / ``low_idx`` / ``high_idx`` /
  ``atom_id`` plus shared predicate slices, used by the scalar
  :meth:`CompiledAPTree.classify`, and (b) a *fused program* in which
  every predicate BDD's terminal edges are rewired to the next tree
  node's entry, so a whole classification is a single branching-program
  descent.  :meth:`CompiledAPTree.classify_batch` advances all packets
  together through the fused program.

Three batch backends produce identical results and are auto-selected
(preference order ``native`` > ``numpy`` > ``stdlib``, overridable with
the ``REPRO_ENGINE`` environment knob -- see :mod:`repro.core.kernel`):

* ``native`` -- the optional C extension (:mod:`repro._native`) walks
  each packet's fused-program path in a GIL-free scalar loop over
  word-packed headers; work is the sum of path lengths.
* ``numpy`` -- packets are packed into uint64 words; all cursors
  advance together with vectorized gathers, finished lanes are
  compacted away.
* ``stdlib`` -- pure-Python *bit-parallel* evaluation: each header bit
  column is packed into one arbitrary-precision int (bit ``j`` = packet
  ``j``), and a single topological pass pushes lane masks through the
  fused program with big-int AND/ANDNOT.  Cost scales with program
  size, not ``packets x path length``.

The batch entry points accept numpy arrays end-to-end:
:meth:`CompiledAPTree.classify_batch_array` takes a ``uint64`` header
array (zero-copy -- for <=64-variable layouts the array *is* the packed
form) and fills an ``int64`` output array without building any Python
list, while :meth:`CompiledAPTree.classify_batch` keeps the
list-in/list-out contract and dispatches on input type instead of
unconditionally copying.

Staleness protocol: artifacts stamp ``tree.version`` at compile time.
Every structural mutation (leaf splits, tombstones) bumps the version,
so a stale artifact is detected by one integer comparison and queries
transparently fall back to the interpreted tree until a recompile --
mirroring the paper's query-process/reconstruction-process split
(Section VI-B).
"""

from __future__ import annotations

from typing import Callable, Sequence

from .. import config
from ..bdd.manager import BDDManager, TRUE
from . import kernel as _kernel
from .aptree import APTree, APTreeNode
from .kernel import (
    NATIVE_BACKEND,
    NUMPY_BACKEND,
    STDLIB_BACKEND,
    available_backends,
    default_backend,
)

try:  # pragma: no cover - exercised via the CI matrix
    if config.numpy_disabled():
        _np = None
    else:
        import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

__all__ = [
    "CompiledAPTree",
    "FlatBDDSet",
    "NATIVE_BACKEND",
    "NUMPY_BACKEND",
    "STDLIB_BACKEND",
    "TreePrefix",
    "available_backends",
    "default_backend",
    "extract_prefix",
    "flatten_bdds",
    "prefix_depth_for",
]

# Backend resolution (including the REPRO_ENGINE preference and the
# native extension probe) lives in repro.core.kernel -- but the result
# must agree with *this* module's numpy import, which the accelerated
# paths actually use.  If they diverge (tests simulate a numpy-less
# host by nulling ``_np`` here), demand semantics still hold: an
# explicit request for an accelerated backend raises, auto-selection
# degrades to stdlib.
def _resolve_backend(backend: str | None) -> str:
    resolved = _kernel.resolve_backend(backend)
    if resolved != STDLIB_BACKEND and _np is None:
        if backend is not None:
            raise ValueError(
                f"backend {backend!r} requires numpy, which is not "
                f"available (set backend='stdlib' or leave it unset)"
            )
        return STDLIB_BACKEND
    return resolved


def _as_int_list(seq) -> list[int]:
    """Plain python ints: ``tolist`` beats ``list`` for numpy/array
    (``list(np_arr)`` would yield numpy scalars, which are slower in the
    tight scalar loops and don't serialize as JSON)."""
    if isinstance(seq, list):
        return seq
    if hasattr(seq, "tolist"):
        return seq.tolist()
    return list(seq)

#: Below this batch size the whole-batch machinery costs more than it
#: saves; batch entry points fall back to the scalar loop.
_MIN_BATCH = 16


# ----------------------------------------------------------------------
# BDD flattening
# ----------------------------------------------------------------------


def flatten_bdds(
    manager: BDDManager, roots: Sequence[int]
) -> tuple[list[int], list[int], list[int], dict[int, int]]:
    """Flatten the BDDs rooted at ``roots`` into contiguous level order.

    Returns ``(var, low, high, entry_of)`` parallel lists plus a map from
    each root to its flat entry index.  Flat indices 0 and 1 are the
    FALSE/TRUE terminals (made self-loops so batch evaluators can treat
    them as fixed points); each distinct root's reachable node set
    occupies one contiguous slice sorted by variable, so within a slice
    every edge points forward -- level order doubles as topological
    order.  Subgraphs shared *between* roots are duplicated on purpose:
    at these sizes contiguity is worth more than sharing.
    """
    mvar, mlow, mhigh = manager.node_arrays()
    var: list[int] = [0, 0]
    low: list[int] = [0, 1]
    high: list[int] = [0, 1]
    entry_of: dict[int, int] = {}
    for root in roots:
        if root in entry_of:
            continue
        if root <= TRUE:
            entry_of[root] = root
            continue
        seen = {root}
        stack = [root]
        reach: list[int] = []
        while stack:
            node = stack.pop()
            reach.append(node)
            for child in (mlow[node], mhigh[node]):
                if child > TRUE and child not in seen:
                    seen.add(child)
                    stack.append(child)
        reach.sort(key=lambda node: mvar[node])
        base = len(var)
        index = {node: base + offset for offset, node in enumerate(reach)}
        for node in reach:
            var.append(mvar[node])
            lo, hi = mlow[node], mhigh[node]
            low.append(lo if lo <= TRUE else index[lo])
            high.append(hi if hi <= TRUE else index[hi])
        entry_of[root] = base  # min-var node of the slice is its root
    return var, low, high, entry_of


# ----------------------------------------------------------------------
# Header bit columns
# ----------------------------------------------------------------------


def _bit_matrix(headers: Sequence[int], num_vars: int):
    """``(len(headers), num_vars)`` uint8 matrix of header bits (numpy).

    Variable ``i`` lives at bit ``num_vars - 1 - i`` of a packed header,
    so dumping each header big-endian and unpacking bits yields columns
    already indexed by variable.
    """
    nbytes = (num_vars + 7) // 8
    pad = nbytes * 8 - num_vars
    buf = b"".join((h << pad).to_bytes(nbytes, "big") for h in headers)
    packed = _np.frombuffer(buf, dtype=_np.uint8).reshape(len(headers), nbytes)
    return _np.unpackbits(packed, axis=1)[:, :num_vars]


class _BitColumns:
    """Lazy per-variable lane masks for the stdlib bit-parallel path.

    Column ``v`` is one big int whose bit ``j`` is header ``j``'s value
    of variable ``v``.  Columns are built on first use: only variables
    that actually appear in a program are ever transposed.
    """

    def __init__(self, headers: Sequence[int], num_vars: int) -> None:
        self._headers = headers
        self._shift = num_vars - 1
        self._cols: dict[int, int] = {}

    def column(self, var: int) -> int:
        col = self._cols.get(var)
        if col is None:
            shift = self._shift - var
            word = 0
            bit = 0
            parts: list[bytes] = []
            append = parts.append
            for header in self._headers:
                word |= ((header >> shift) & 1) << bit
                bit += 1
                if bit == 64:
                    append(word.to_bytes(8, "little"))
                    word = 0
                    bit = 0
            if bit:
                append(word.to_bytes(8, "little"))
            col = self._cols[var] = int.from_bytes(b"".join(parts), "little")
        return col


# ----------------------------------------------------------------------
# Flat predicate sets (aplinear / pscan substrate)
# ----------------------------------------------------------------------


class FlatBDDSet:
    """An ordered set of BDD roots compiled for batched evaluation.

    The two linear-scan baselines are built on it: ``first_true_batch``
    is APLinear's "first matching atom" semantics with early narrowing,
    ``truth_bits_batch`` is PScan's full verdict vector (one int per
    header, root ``j`` of ``k`` at bit ``k - 1 - j``, i.e. the fold
    ``acc = acc << 1 | verdict`` in root order).
    """

    def __init__(
        self,
        manager: BDDManager,
        roots: Sequence[int],
        backend: str | None = None,
    ) -> None:
        self.manager = manager
        # The native kernel runs only the fused tree program; predicate
        # sets step down to the numpy descent.
        self.backend = _resolve_backend(backend)
        if self.backend == NATIVE_BACKEND:
            self.backend = NUMPY_BACKEND
        self.num_vars = manager.num_vars
        self.roots = list(roots)
        var, low, high, entry_of = flatten_bdds(manager, self.roots)
        self._var = var
        self._low = low
        self._high = high
        self._entries = [entry_of[root] for root in self.roots]
        self._shifts = [self.num_vars - 1 - v for v in var]
        if self.backend == NUMPY_BACKEND:
            self._np_var = _np.asarray(var, dtype=_np.int32)
            child = _np.empty(2 * len(var), dtype=_np.int32)
            child[0::2] = low
            child[1::2] = high
            self._np_child = child

    @classmethod
    def compile(
        cls,
        manager: BDDManager,
        roots: Sequence[int],
        backend: str | None = None,
    ) -> "FlatBDDSet":
        return cls(manager, roots, backend=backend)

    # -- persistence (repro.artifact) ------------------------------------

    def to_arrays(self) -> dict:
        """The node arrays as plain data (see :meth:`from_arrays`)."""
        return {
            "num_vars": self.num_vars,
            "entries": list(self._entries),
            "var": list(self._var),
            "low": list(self._low),
            "high": list(self._high),
        }

    @classmethod
    def from_arrays(cls, arrays: dict, backend: str | None = None) -> "FlatBDDSet":
        """Rehydrate a set from :meth:`to_arrays` output.

        The result has no :class:`BDDManager` (``manager is None``) --
        it can evaluate but not be recompiled against live BDDs.
        """
        self = cls.__new__(cls)
        self.manager = None
        self.backend = _resolve_backend(backend)
        if self.backend == NATIVE_BACKEND:
            self.backend = NUMPY_BACKEND
        self.num_vars = int(arrays["num_vars"])
        self._entries = _as_int_list(arrays["entries"])
        var = _as_int_list(arrays["var"])
        self._var = var
        self._low = _as_int_list(arrays["low"])
        self._high = _as_int_list(arrays["high"])
        self.roots = list(range(len(self._entries)))
        self._shifts = [self.num_vars - 1 - v for v in var]
        if self.backend == NUMPY_BACKEND:
            self._np_var = _np.asarray(var, dtype=_np.int32)
            child = _np.empty(2 * len(var), dtype=_np.int32)
            child[0::2] = self._low
            child[1::2] = self._high
            self._np_child = child
        return self

    def __len__(self) -> int:
        return len(self.roots)

    @property
    def node_count(self) -> int:
        return len(self._var)

    # -- scalar reference ------------------------------------------------

    def evaluate(self, index: int, header: int) -> bool:
        """Evaluate root ``index`` for one header (flat scalar loop)."""
        shifts = self._shifts
        low = self._low
        high = self._high
        u = self._entries[index]
        while u > TRUE:
            u = high[u] if (header >> shifts[u]) & 1 else low[u]
        return u == TRUE

    def truth_bits(self, header: int) -> int:
        """Scalar counterpart of :meth:`truth_bits_batch` for one header."""
        acc = 0
        for index in range(len(self.roots)):
            acc = (acc << 1) | self.evaluate(index, header)
        return acc

    def first_true(self, header: int) -> int:
        for index in range(len(self.roots)):
            if self.evaluate(index, header):
                return index
        raise ValueError("no root evaluates true for the header")

    # -- batched evaluation ---------------------------------------------

    def _column_masks(self, headers: Sequence[int]) -> list[int]:
        """Per-root lane masks: bit ``j`` of mask ``i`` is root ``i``'s
        verdict for header ``j`` (stdlib bit-parallel propagation)."""
        full = (1 << len(headers)) - 1
        columns = _BitColumns(headers, self.num_vars)
        return [
            self._propagate(entry, full, columns) for entry in self._entries
        ]

    def _propagate(self, entry: int, initial: int, columns: _BitColumns) -> int:
        """Push a lane mask from ``entry`` to the terminals; returns the
        mask that reached TRUE.  One forward pass over the slice -- level
        order is topological, so each node is finished before read."""
        if entry <= TRUE:
            return initial if entry == TRUE else 0
        var = self._var
        low = self._low
        high = self._high
        masks: dict[int, int] = {entry: initial}
        pop = masks.pop
        true_mask = 0
        # Slice nodes are contiguous from the entry; walk indices upward
        # until every outstanding mask has drained to a terminal.
        u = entry
        while masks:
            mask = pop(u, 0)
            if mask:
                hi_m = mask & columns.column(var[u])
                lo_m = mask ^ hi_m
                if hi_m:
                    target = high[u]
                    if target == TRUE:
                        true_mask |= hi_m
                    elif target > TRUE:
                        masks[target] = masks.get(target, 0) | hi_m
                if lo_m:
                    target = low[u]
                    if target == TRUE:
                        true_mask |= lo_m
                    elif target > TRUE:
                        masks[target] = masks.get(target, 0) | lo_m
            u += 1
        return true_mask

    def truth_bits_batch(self, headers: Sequence[int]) -> list[int]:
        """Verdict vectors for a batch: one packed int per header."""
        if len(headers) < _MIN_BATCH:
            return [self.truth_bits(h) for h in headers]
        if self.backend == NUMPY_BACKEND:
            matrix = self._verdict_matrix_numpy(headers)  # (roots, n)
            k = len(self.roots)
            padded = _np.zeros((-(-k // 8) * 8, len(headers)), dtype=_np.uint8)
            padded[-k:] = matrix  # root 0 at the high bit of the fold
            packed = _np.packbits(padded, axis=0)
            data = packed.T.tobytes()
            width = padded.shape[0] // 8
            return [
                int.from_bytes(data[i * width : (i + 1) * width], "big")
                for i in range(len(headers))
            ]
        out = [0] * len(headers)
        for mask in self._column_masks(headers):
            for j in range(len(headers)):
                out[j] = (out[j] << 1) | ((mask >> j) & 1)
        return out

    def first_true_batch(self, headers: Sequence[int]) -> list[int]:
        """Index of the first true root per header (APLinear semantics).

        Lanes are retired as soon as some root matches, so the expected
        work matches the scalar scan's early exit -- just batched.
        """
        n = len(headers)
        if n < _MIN_BATCH:
            return [self.first_true(h) for h in headers]
        out = [-1] * n
        if self.backend == NUMPY_BACKEND:
            bits = _bit_matrix(headers, self.num_vars)
            lanes = _np.arange(n, dtype=_np.int32)
            flat_bits = _np.ascontiguousarray(bits).ravel()
            base = lanes * self.num_vars
            child = self._np_child
            var = self._np_var
            for index, entry in enumerate(self._entries):
                if base.size == 0:
                    break
                cur = _np.full(base.size, entry, dtype=_np.int32)
                while True:
                    active = cur > TRUE
                    if not active.any():
                        break
                    v = var.take(cur)
                    b = flat_bits.take(base + v)
                    step = child.take(2 * cur + b)
                    cur = _np.where(active, step, cur)
                matched = cur == TRUE
                if matched.any():
                    for lane in lanes[matched].tolist():
                        out[lane] = index
                    keep = ~matched
                    lanes = lanes[keep]
                    base = base[keep]
        else:
            columns = _BitColumns(headers, self.num_vars)
            remaining = (1 << n) - 1
            for index, entry in enumerate(self._entries):
                if not remaining:
                    break
                matched = self._propagate(entry, remaining, columns)
                m = matched
                while m:
                    lsb = m & -m
                    out[lsb.bit_length() - 1] = index
                    m ^= lsb
                remaining ^= matched
        missing = out.count(-1)
        if missing:
            raise ValueError(f"{missing} headers matched no root")
        return out

    def _verdict_matrix_numpy(self, headers: Sequence[int]):
        """uint8 matrix ``(len(roots), len(headers))`` of verdicts."""
        n = len(headers)
        bits = _bit_matrix(headers, self.num_vars)
        flat_bits = _np.ascontiguousarray(bits).ravel()
        base = _np.arange(n, dtype=_np.int32) * self.num_vars
        child = self._np_child
        var = self._np_var
        matrix = _np.empty((len(self._entries), n), dtype=_np.uint8)
        for row, entry in enumerate(self._entries):
            cur = _np.full(n, entry, dtype=_np.int32)
            while True:
                active = cur > TRUE
                if not active.any():
                    break
                v = var.take(cur)
                b = flat_bits.take(base + v)
                step = child.take(2 * cur + b)
                cur = _np.where(active, step, cur)
            matrix[row] = cur
        return matrix

    def __repr__(self) -> str:
        return (
            f"FlatBDDSet({len(self.roots)} roots, {self.node_count} nodes, "
            f"{self.backend})"
        )


# ----------------------------------------------------------------------
# Compiled AP Tree
# ----------------------------------------------------------------------


class CompiledAPTree:
    """A built :class:`APTree` flattened into cache-friendly arrays.

    Construction walks the tree once (BFS, root at index 0) and emits:

    * ``pred_entry[i]`` -- flat-BDD entry of node ``i``'s predicate, or
      ``-1`` for a leaf;
    * ``low_idx[i]`` / ``high_idx[i]`` -- child tree indices (leaves
      self-loop);
    * ``atom_id[i]`` -- the leaf's atom, or ``-1`` for internal nodes;

    plus the shared level-ordered predicate slices from
    :func:`flatten_bdds`, and the *fused program* used by the batch
    paths (predicate terminals rewired to child entries, leaves as
    self-looping sinks carrying atom ids).
    """

    def __init__(self, tree: APTree, backend: str | None = None) -> None:
        self.tree = tree
        self.tree_version = tree.version
        self.backend = _resolve_backend(backend)
        self.num_vars = tree.manager.num_vars
        self._build_tree_arrays(tree)
        self._build_fused(tree)
        del self._tree_nodes  # the arrays are a snapshot; drop live refs
        self._scalar_ready = True
        #: Engines compiled from a live tree keep enough indices
        #: (atom -> row/sink, node entries) for in-place patching;
        #: artifact-restored engines (:meth:`from_arrays`) do not.
        self._patchable = True
        #: Fused nodes orphaned by collapse patches (degradation metric).
        self._dead_patches = 0
        self._refresh_accelerated()

    def _refresh_accelerated(self) -> None:
        """(Re)build the numpy mirrors + kernel view from the list arrays."""
        if self.backend in (NUMPY_BACKEND, NATIVE_BACKEND):
            self._np_f_var = _np.asarray(self._f_var, dtype=_np.int32)
            child = _np.empty(2 * len(self._f_var), dtype=_np.int32)
            child[0::2] = self._f_low
            child[1::2] = self._f_high
            self._np_f_child = child
            self._np_f_atom = _np.asarray(self._f_atom, dtype=_np.int64)
            self._init_kernel()

    @classmethod
    def compile(
        cls, tree: APTree, backend: str | None = None
    ) -> "CompiledAPTree":
        """Flatten ``tree`` for the given (or auto-selected) backend."""
        return cls(tree, backend=backend)

    # -- persistence (repro.artifact) ------------------------------------

    def to_arrays(self) -> dict:
        """Every array and scalar needed to rebuild this engine.

        The fused program's children are interleaved (``child[2i]`` =
        low, ``child[2i+1]`` = high) -- exactly the layout the numpy
        descent gathers from, so an artifact section can be mapped
        straight into ``_np_f_child`` without a shuffle.
        """
        if self.backend in (NUMPY_BACKEND, NATIVE_BACKEND):
            f_child = self._np_f_child
        else:
            f_child = [0] * (2 * len(self._f_var))
            f_child[0::2] = _as_int_list(self._f_low)
            f_child[1::2] = _as_int_list(self._f_high)
        return {
            "num_vars": self.num_vars,
            "num_sinks": self._num_sinks,
            "f_root": self._f_root,
            "pred_entry": self.pred_entry,
            "low_idx": self.low_idx,
            "high_idx": self.high_idx,
            "atom_id": self.atom_id,
            "bdd_var": self._bdd_var,
            "bdd_low": self._bdd_low,
            "bdd_high": self._bdd_high,
            "f_var": self._f_var,
            "f_child": f_child,
            "f_atom": self._f_atom,
        }

    @classmethod
    def from_arrays(
        cls,
        arrays: dict,
        *,
        tree: APTree | None = None,
        tree_version: int | None = None,
        backend: str | None = None,
    ) -> "CompiledAPTree":
        """Rebuild an engine from :meth:`to_arrays`-shaped data.

        This is the artifact warm-start entry point: under the numpy
        backend every array is adopted as-is (``np.frombuffer`` views of
        an ``mmap``ed file included -- zero copies), and the scalar-path
        python lists are materialized lazily on the first non-batch
        classify.  The stdlib backend copies into plain lists up front.

        ``tree=None`` produces a *serving-only* engine: it classifies
        but is fresh for no live tree (see :meth:`is_fresh_for`).  Pass
        the restored tree plus its version to stamp the engine fresh.
        """
        self = cls.__new__(cls)
        self.tree = tree
        self.tree_version = (
            tree.version if tree is not None and tree_version is None
            else (tree_version or 0)
        )
        self._patchable = False
        self._dead_patches = 0
        self.backend = _resolve_backend(backend)
        self.num_vars = int(arrays["num_vars"])
        self._num_sinks = int(arrays["num_sinks"])
        self._f_root = int(arrays["f_root"])
        if self.backend in (NUMPY_BACKEND, NATIVE_BACKEND):
            self.pred_entry = arrays["pred_entry"]
            self.low_idx = arrays["low_idx"]
            self.high_idx = arrays["high_idx"]
            self.atom_id = arrays["atom_id"]
            self._bdd_var = arrays["bdd_var"]
            self._bdd_low = arrays["bdd_low"]
            self._bdd_high = arrays["bdd_high"]
            self._bdd_shift = None  # derived with the scalar lists
            self._np_f_var = _np.asarray(arrays["f_var"], dtype=_np.int32)
            child = _np.asarray(arrays["f_child"], dtype=_np.int32)
            self._np_f_child = child
            self._np_f_atom = _np.asarray(arrays["f_atom"], dtype=_np.int64)
            self._f_var = self._np_f_var
            self._f_low = child[0::2]  # strided views, enough for stats
            self._f_high = child[1::2]
            self._f_atom = self._np_f_atom
            self._scalar_ready = False
            self._init_kernel()
        else:
            self.pred_entry = _as_int_list(arrays["pred_entry"])
            self.low_idx = _as_int_list(arrays["low_idx"])
            self.high_idx = _as_int_list(arrays["high_idx"])
            self.atom_id = _as_int_list(arrays["atom_id"])
            self._bdd_var = _as_int_list(arrays["bdd_var"])
            self._bdd_low = _as_int_list(arrays["bdd_low"])
            self._bdd_high = _as_int_list(arrays["bdd_high"])
            shift = self.num_vars - 1
            self._bdd_shift = [shift - v for v in self._bdd_var]
            f_child = _as_int_list(arrays["f_child"])
            self._f_var = _as_int_list(arrays["f_var"])
            self._f_low = f_child[0::2]
            self._f_high = f_child[1::2]
            self._f_atom = _as_int_list(arrays["f_atom"])
            self._scalar_ready = True
        return self

    def _materialize_scalar(self) -> None:
        """Build the python-list arrays the scalar ``classify`` walks.

        Deferred so a batch-only consumer (a serve worker fed through
        ``classify_batch``) never pays list conversion on the zero-copy
        numpy views.
        """
        self.pred_entry = _as_int_list(self.pred_entry)
        self.low_idx = _as_int_list(self.low_idx)
        self.high_idx = _as_int_list(self.high_idx)
        self.atom_id = _as_int_list(self.atom_id)
        self._bdd_low = _as_int_list(self._bdd_low)
        self._bdd_high = _as_int_list(self._bdd_high)
        if self._bdd_shift is None:
            self._bdd_var = _as_int_list(self._bdd_var)
            shift = self.num_vars - 1
            self._bdd_shift = [shift - v for v in self._bdd_var]
        self._scalar_ready = True

    def _init_kernel(self) -> None:
        """Precompute the word/shift tables and scratch for the kernel.

        Derived once from ``_np_f_var`` (for artifact loads this is the
        only consumer of ``f_var`` on the batch path): node ``i`` reads
        word ``_np_f_word[i]`` at in-word shift ``_np_f_shift[i]`` of a
        little-endian packed header.  The :class:`~.kernel.Program` view
        is what both descents (and the C kernel) consume; the scratch
        buffers make steady-state batches allocation-free.
        """
        word, shift = _kernel.shift_arrays(self._np_f_var, self.num_vars)
        self._np_f_word = word
        self._np_f_shift = shift
        self._program = _kernel.Program(
            width=_kernel.words_per_header(self.num_vars),
            f_word=word,
            f_shift=shift,
            f_child=self._np_f_child,
            f_atom=self._np_f_atom,
            num_sinks=self._num_sinks,
            f_root=self._f_root,
        )
        self._scratch = _kernel.KernelScratch()

    # -- construction ----------------------------------------------------

    def _build_tree_arrays(self, tree: APTree) -> None:
        nodes = [tree.root]
        position = 0
        while position < len(nodes):
            node = nodes[position]
            position += 1
            if node.pid is not None:
                nodes.append(node.low)
                nodes.append(node.high)
        index = {id(node): i for i, node in enumerate(nodes)}
        roots = [node.fn_node for node in nodes if node.pid is not None]
        var, low, high, entry_of = flatten_bdds(tree.manager, roots)
        self._bdd_var = var
        self._bdd_low = low
        self._bdd_high = high
        shift = self.num_vars - 1
        self._bdd_shift = [shift - v for v in var]
        pred_entry: list[int] = []
        low_idx: list[int] = []
        high_idx: list[int] = []
        atom_id: list[int] = []
        for i, node in enumerate(nodes):
            if node.pid is None:
                pred_entry.append(-1)
                low_idx.append(i)
                high_idx.append(i)
                atom_id.append(node.atom_id)  # type: ignore[arg-type]
            else:
                pred_entry.append(entry_of[node.fn_node])
                low_idx.append(index[id(node.low)])
                high_idx.append(index[id(node.high)])
                atom_id.append(-1)
        self.pred_entry = pred_entry
        self.low_idx = low_idx
        self.high_idx = high_idx
        self.atom_id = atom_id
        # atom id -> leaf row, so patches can find a leaf in O(1).
        self._atom_row = {
            aid: i for i, aid in enumerate(atom_id) if aid >= 0
        }
        self._tree_nodes = nodes

    def _build_fused(self, tree: APTree) -> None:
        """Rewire predicate terminals to child entries: one flat program.

        Sinks (tree leaves) occupy indices ``0 .. num_sinks - 1`` and
        self-loop, so "done" is one comparison.  Slices are laid out in
        tree-BFS order and level-ordered within, keeping every non-sink
        edge strictly forward -- the invariant the stdlib mask
        propagation needs and asserted at build time.
        """
        mvar, mlow, mhigh = tree.manager.node_arrays()
        nodes = self._tree_nodes
        leaves = [i for i, e in enumerate(self.pred_entry) if e < 0]
        num_sinks = len(leaves)
        self._f_atom = [self.atom_id[i] for i in leaves]
        entries: list[int] = [-1] * len(nodes)
        for sink, i in enumerate(leaves):
            entries[i] = sink
        # Pass 1: per-internal-node reachable sets and slice bases.
        reaches: list[tuple[int, int, list[int]]] = []
        next_base = num_sinks
        for i, node in enumerate(nodes):
            if node.pid is None:
                continue
            root = node.fn_node
            seen = {root}
            stack = [root]
            reach: list[int] = []
            while stack:
                u = stack.pop()
                reach.append(u)
                for child in (mlow[u], mhigh[u]):
                    if child > TRUE and child not in seen:
                        seen.add(child)
                        stack.append(child)
            reach.sort(key=lambda u: mvar[u])
            reaches.append((i, next_base, reach))
            entries[i] = next_base  # min-var node is the slice root
            next_base += len(reach)
        size = next_base
        f_var = [0] * size
        f_low = list(range(size))
        f_high = list(range(size))
        # Pass 2: fill slices; every child entry is already assigned.
        for i, base, reach in reaches:
            low_entry = entries[self.low_idx[i]]
            high_entry = entries[self.high_idx[i]]
            index = {u: base + offset for offset, u in enumerate(reach)}
            for u in reach:
                k = index[u]
                f_var[k] = mvar[u]
                lo, hi = mlow[u], mhigh[u]
                f_low[k] = (
                    high_entry if lo == TRUE
                    else low_entry if lo == 0
                    else index[lo]
                )
                f_high[k] = (
                    high_entry if hi == TRUE
                    else low_entry if hi == 0
                    else index[hi]
                )
        self._f_var = f_var
        self._f_low = f_low
        self._f_high = f_high
        self._num_sinks = num_sinks
        self._f_root = entries[0]
        # Per tree-row fused entry (sink index for leaves, slice base for
        # internal rows) and atom id -> sink index: the bookkeeping the
        # in-place patches below navigate by.
        self._f_entry = entries
        self._atom_sink = {
            self._f_atom[sink]: sink for sink in range(num_sinks)
        }
        if __debug__:
            for u in range(num_sinks, size):
                assert f_low[u] < num_sinks or f_low[u] > u
                assert f_high[u] < num_sinks or f_high[u] > u

    # -- in-place patches (incremental maintenance) ----------------------
    #
    # Both patches keep the compiled program *exact* for the mutated tree
    # and finish by re-stamping ``tree_version``, so the fast path never
    # drops into stale-fallback for a leaf-local update.  They only apply
    # to engines compiled from a live tree (``_patchable``); artifact
    # views return False and the caller recompiles.

    @property
    def patchable(self) -> bool:
        return self._patchable

    def patch_apply_splits(self, fn_node: int, splits) -> bool:
        """Mirror :meth:`APTree.apply_splits` onto the compiled arrays.

        Predicate addition is always leaf-local: each split leaf becomes
        an internal node testing the new predicate, with the inside atom
        on the high branch.  The patch grows the sink region by one per
        split (the descent's termination test is ``cur < num_sinks``, so
        new sinks must join the contiguous low region: every non-sink
        index shifts up by the split count), appends one copy of the new
        predicate's flattened slice per split with its terminals rewired
        to the two child sinks, and redirects the old atom's sink into
        that slice.  Returns True when patched (compiled stays fresh).
        """
        if not self._patchable or self.tree is None:
            return False
        real = [s for s in splits if s.is_split]
        if not real:
            # Absorbed-only addition: no atom changed id, no leaf moved --
            # the program is already exact, only the version stamp aged.
            self.tree_version = self.tree.version
            return True
        # --- shared predicate slice for the scalar tree arrays --------
        var, low, high, entry_of = flatten_bdds(self.tree.manager, [fn_node])
        offset = len(self._bdd_var) - 2
        shift = self.num_vars - 1
        for j in range(2, len(var)):
            self._bdd_var.append(var[j])
            self._bdd_shift.append(shift - var[j])
            lo, hi = low[j], high[j]
            self._bdd_low.append(lo if lo <= TRUE else lo + offset)
            self._bdd_high.append(hi if hi <= TRUE else hi + offset)
        entry = entry_of[fn_node] + offset
        root_offset = entry_of[fn_node] - 2  # slice-relative root position
        slice_len = len(var) - 2

        # --- fused program: grow sinks, shift, append slice copies ----
        old_size = len(self._f_var)
        num_sinks = self._num_sinks
        k = len(real)
        # Old sink of each split atom redirects into its slice copy.
        redirect: dict[int, int] = {}
        sinks: list[tuple[int, int]] = []  # (inside sink, outside sink)
        for t, split in enumerate(real):
            s_in = self._atom_sink.pop(split.old_id)
            self._f_atom[s_in] = split.inside_id
            self._atom_sink[split.inside_id] = s_in
            s_out = num_sinks + t
            self._f_atom.append(split.outside_id)
            self._atom_sink[split.outside_id] = s_out
            sinks.append((s_in, s_out))
            redirect[s_in] = old_size + k + t * slice_len + root_offset
        # Sinks other than the redirected ones keep their index; every
        # non-sink shifts by k to make room for the new sinks.
        def remap(v: int) -> int:
            mapped = redirect.get(v)
            if mapped is not None:
                return mapped
            return v if v < num_sinks else v + k

        nf_var = [0] * (num_sinks + k)
        nf_low = list(range(num_sinks + k))
        nf_high = list(range(num_sinks + k))
        f_var, f_low, f_high = self._f_var, self._f_low, self._f_high
        for u in range(num_sinks, old_size):
            nf_var.append(f_var[u])
            nf_low.append(remap(f_low[u]))
            nf_high.append(remap(f_high[u]))
        for t, (s_in, s_out) in enumerate(sinks):
            base = old_size + k + t * slice_len
            for j in range(2, len(var)):
                nf_var.append(var[j])
                lo, hi = low[j], high[j]
                nf_low.append(
                    s_in if lo == TRUE
                    else s_out if lo == 0
                    else base + (lo - 2)
                )
                nf_high.append(
                    s_in if hi == TRUE
                    else s_out if hi == 0
                    else base + (hi - 2)
                )
        self._f_var = nf_var
        self._f_low = nf_low
        self._f_high = nf_high
        self._num_sinks = num_sinks + k
        self._f_root = remap(self._f_root)
        # remap() sends a split leaf row's old sink straight to its slice
        # entry, which is exactly the row's new meaning as internal node.
        self._f_entry = [remap(e) for e in self._f_entry]

        # --- scalar tree arrays ---------------------------------------
        for t, split in enumerate(real):
            row = self._atom_row.pop(split.old_id)
            in_row = len(self.pred_entry)
            out_row = in_row + 1
            self.pred_entry[row] = entry
            self.atom_id[row] = -1
            self.high_idx[row] = in_row
            self.low_idx[row] = out_row
            for leaf_row, aid, sink in (
                (in_row, split.inside_id, sinks[t][0]),
                (out_row, split.outside_id, sinks[t][1]),
            ):
                self.pred_entry.append(-1)
                self.low_idx.append(leaf_row)
                self.high_idx.append(leaf_row)
                self.atom_id.append(aid)
                self._atom_row[aid] = leaf_row
                self._f_entry.append(sink)

        if __debug__:
            ns, size = self._num_sinks, len(self._f_var)
            for u in range(ns, size):
                assert self._f_low[u] < ns or self._f_low[u] > u
                assert self._f_high[u] < ns or self._f_high[u] > u
        self._refresh_accelerated()
        self.tree_version = self.tree.version
        return True

    def patch_leaf_merges(self, merges) -> bool:
        """Collapse two-leaf internal nodes whose atoms merged.

        ``merges`` is a sequence of ``(merged_id, (part_a, part_b))``
        pairs (see :class:`~.atomic.AtomMerge`).  Each is applied only
        when both parts are leaves under one shared parent -- the
        leaf-local shape a removal splice produces.  The collapsed
        node's slice stays in the arrays as dead weight (no edge reaches
        it); ``_dead_patches`` counts the orphaned nodes so callers can
        bound the drift.  All-or-nothing: returns False (arrays
        untouched, compiled goes stale) unless *every* merge is
        leaf-local.
        """
        if not self._patchable or self.tree is None:
            return False
        if not merges:
            # Structure unchanged (e.g. a removal whose predicate split
            # nothing): the program still computes the same atom function,
            # so just restamp against the bumped tree version.
            self.tree_version = self.tree.version
            return True
        plan: list[tuple[int, int, int, int]] = []
        for merged_id, parts in merges:
            if len(parts) != 2:
                return False
            row_a = self._atom_row.get(parts[0])
            row_b = self._atom_row.get(parts[1])
            if row_a is None or row_b is None:
                return False
            parent = -1
            for r, entry in enumerate(self.pred_entry):
                if entry < 0:
                    continue
                if {self.low_idx[r], self.high_idx[r]} == {row_a, row_b}:
                    parent = r
                    break
            if parent < 0:
                return False
            plan.append((merged_id, parts[0], parts[1], parent))
        for merged_id, part_a, part_b, parent in plan:
            row_a = self._atom_row.pop(part_a)
            row_b = self._atom_row.pop(part_b)
            entry = self._f_entry[parent]
            s_keep = self._atom_sink.pop(part_a)
            s_dead = self._atom_sink.pop(part_b)
            self._f_atom[s_keep] = merged_id
            self._f_atom[s_dead] = merged_id  # unreachable, kept benign
            self._atom_sink[merged_id] = s_keep
            # Every edge that entered the collapsed predicate test now
            # lands directly on the surviving sink.
            f_low, f_high = self._f_low, self._f_high
            for u in range(self._num_sinks, len(f_low)):
                if f_low[u] == entry:
                    f_low[u] = s_keep
                if f_high[u] == entry:
                    f_high[u] = s_keep
            if self._f_root == entry:
                self._f_root = s_keep
            # Parent row becomes the merged leaf; child rows go dead.
            self.pred_entry[parent] = -1
            self.low_idx[parent] = parent
            self.high_idx[parent] = parent
            self.atom_id[parent] = merged_id
            self._atom_row[merged_id] = parent
            self._f_entry[parent] = s_keep
            for row in (row_a, row_b):
                self.pred_entry[row] = -1
                self.low_idx[row] = row
                self.high_idx[row] = row
                self.atom_id[row] = -1
            self._dead_patches += 1
        self._refresh_accelerated()
        self.tree_version = self.tree.version
        return True

    # -- staleness -------------------------------------------------------

    def is_fresh_for(self, tree: APTree) -> bool:
        """Does this artifact still describe ``tree`` exactly?

        The identity check comes first and is load-bearing: a full
        rebuild produces a *new* ``APTree`` whose fresh ``version``
        counter can coincide with the version this artifact stamped at
        compile time, so comparing versions across different tree
        objects would accept a stale artifact.

        Serving-only engines (loaded from a binary artifact with no
        live tree, ``tree is None``) are fresh for themselves only.
        """
        if tree is None or self.tree is None:
            return tree is self.tree
        return tree is self.tree and tree.version == self.tree_version

    def stale_reason(self, tree: APTree) -> str | None:
        """Why this artifact is stale for ``tree`` (``None`` if fresh).

        ``"swapped"`` -- ``tree`` is a different object (a rebuild or
        reconstruction replaced the tree; version numbers are not
        comparable across objects).  ``"version"`` -- same tree, mutated
        in place since compilation (leaf splits or tombstones bumped its
        version).  The observability layer records fallbacks per reason,
        which is how compiled-artifact churn shows up in snapshots.
        """
        if tree is None or self.tree is None:
            return None if tree is self.tree else "swapped"
        if tree is not self.tree:
            return "swapped"
        if tree.version != self.tree_version:
            return "version"
        return None

    @property
    def fresh(self) -> bool:
        return self.is_fresh_for(self.tree)

    # -- classification --------------------------------------------------

    def classify(self, header: int) -> int:
        """Atom id of one packed header via the flat tree arrays."""
        if not self._scalar_ready:
            self._materialize_scalar()
        pred_entry = self.pred_entry
        low_idx = self.low_idx
        high_idx = self.high_idx
        shifts = self._bdd_shift
        low = self._bdd_low
        high = self._bdd_high
        i = 0
        entry = pred_entry[0]
        while entry >= 0:
            u = entry
            while u > TRUE:
                u = high[u] if (header >> shifts[u]) & 1 else low[u]
            i = high_idx[i] if u else low_idx[i]
            entry = pred_entry[i]
        return self.atom_id[i]

    def classify_batch(self, headers: Sequence[int]) -> list[int]:
        """Atom ids for a whole batch, all packets advanced together.

        Dispatches on input type instead of unconditionally copying: a
        numpy array routes straight through the zero-copy
        :meth:`classify_batch_array` path (``tolist`` only at the very
        end, to honor the list-out contract -- callers that want arrays
        out call ``classify_batch_array`` directly); a list is used
        as-is; only foreign sequences are materialized.
        """
        if _np is not None and isinstance(headers, _np.ndarray):
            if self.backend == STDLIB_BACKEND:
                headers = headers.tolist()
            else:
                return self.classify_batch_array(headers).tolist()
        elif not isinstance(headers, list):
            headers = list(headers)
        if len(headers) < _MIN_BATCH:
            classify = self.classify
            return [classify(h) for h in headers]
        if self.backend == STDLIB_BACKEND:
            return self._classify_batch_stdlib(headers)
        return self._classify_batch_numpy(headers)

    def classify_batch_array(self, headers, out=None):
        """Atom ids as an ``int64`` array -- numpy arrays end-to-end.

        ``headers`` is either a ``uint64`` word array (``(n,)`` for
        <=64-variable layouts, ``(n, W)`` for wider -- adopted with zero
        copies) or a Python sequence (packed once, no intermediate bit
        matrix).  ``out`` may supply a reusable ``int64[n]`` result
        buffer; one is allocated when absent.  Lane/cursor/packing
        scratch is leased from the engine's :class:`~.kernel.KernelScratch`
        when uncontended, so a steady-state serving loop performs no
        per-batch allocations beyond numpy's gather temporaries.

        Requires an accelerated backend (``native`` or ``numpy``);
        stdlib engines raise -- their batch substrate is big-int lane
        masks, not arrays (use :meth:`classify_batch`).
        """
        if self.backend == STDLIB_BACKEND:
            raise RuntimeError(
                "classify_batch_array requires the native or numpy backend "
                f"(engine backend is {self.backend!r})"
            )
        n = len(headers)
        if out is None:
            out = _np.empty(n, dtype=_np.int64)
        scratch = self._scratch
        leased = scratch.acquire()
        try:
            lease = scratch if leased else None
            words = _kernel.pack_headers(headers, self.num_vars, lease)
            if self.backend == NATIVE_BACKEND:
                _kernel.descend_native(self._program, words, out)
            else:
                _kernel.descend_numpy(self._program, words, out, lease)
        finally:
            if leased:
                scratch.release()
        return out

    def _classify_batch_numpy(self, headers: list[int]) -> list[int]:
        """List-in/list-out shim over the word-packed kernel descent.

        Historically this packed an ``n x num_vars`` bit matrix and
        allocated every lane/cursor array per call; both now live in
        :mod:`repro.core.kernel` (word packing + reusable scratch).
        """
        return self.classify_batch_array(headers).tolist()

    def _classify_batch_stdlib(self, headers: list[int]) -> list[int]:
        """Bit-parallel descent: one topological mask-propagation pass.

        Lane masks are arbitrary-precision ints (bit ``j`` = packet
        ``j``); each program node splits its incoming mask by the
        variable's bit column.  Total big-int work is proportional to
        the number of program nodes reached, independent of batch size
        per node.
        """
        n = len(headers)
        columns = _BitColumns(headers, self.num_vars)
        column = columns.column
        f_var = self._f_var
        f_low = self._f_low
        f_high = self._f_high
        num_sinks = self._num_sinks
        size = len(f_var)
        masks = [0] * size
        masks[self._f_root] = (1 << n) - 1
        for u in range(num_sinks, size):
            mask = masks[u]
            if not mask:
                continue
            hi_m = mask & column(f_var[u])
            lo_m = mask ^ hi_m
            if lo_m:
                masks[f_low[u]] |= lo_m
            if hi_m:
                masks[f_high[u]] |= hi_m
        out = [0] * n
        f_atom = self._f_atom
        for sink in range(num_sinks):
            mask = masks[sink]
            if not mask:
                continue
            atom = f_atom[sink]
            while mask:
                lsb = mask & -mask
                out[lsb.bit_length() - 1] = atom
                mask ^= lsb
        return out

    # -- accounting ------------------------------------------------------

    def stats(self) -> dict[str, int | str]:
        """Sizes of the compiled artifact (memory accounting, reports)."""
        ints = (
            4 * len(self.pred_entry)  # pred_entry/low_idx/high_idx/atom_id
            + 4 * len(self._bdd_var)  # var/low/high/shift slices
            + 3 * len(self._f_var)  # fused program
            + len(self._f_atom)
        )
        return {
            "backend": self.backend,
            "tree_nodes": len(self.pred_entry),
            "bdd_slice_nodes": len(self._bdd_var),
            "fused_nodes": len(self._f_var),
            "estimated_bytes": 4 * ints,  # int32-equivalent footprint
        }

    def __repr__(self) -> str:
        freshness = "fresh" if self.fresh else "stale"
        return (
            f"CompiledAPTree({len(self.pred_entry)} tree nodes, "
            f"{len(self._f_var)} fused nodes, {self.backend}, {freshness})"
        )


# ----------------------------------------------------------------------
# Shard-prefix extraction (the repro.serve.shard routing substrate)
# ----------------------------------------------------------------------


def prefix_depth_for(tree: APTree, min_frontiers: int, max_depth: int = 24) -> int:
    """Smallest cut depth whose frontier has >= ``min_frontiers`` targets.

    The frontier at depth ``d`` is the set of internal nodes at depth
    ``d`` plus every leaf shallower than ``d`` -- exactly the routing
    targets a ``d``-level cut produces.  The tree is pruned (every
    internal node has two real children), so the frontier grows
    monotonically with ``d`` until the cut is all leaves; when the whole
    tree has fewer leaves than requested, the deepest (all-leaf) cut is
    returned instead.
    """
    if min_frontiers < 1:
        raise ValueError("min_frontiers must be >= 1")
    frontier = [tree.root]
    depth = 0
    while depth < max_depth and len(frontier) < min_frontiers:
        nxt: list[APTreeNode] = []
        grew = False
        for node in frontier:
            if node.pid is None:
                nxt.append(node)
            else:
                grew = True
                nxt.append(node.low)
                nxt.append(node.high)
        if not grew:
            break  # all leaves: the frontier cannot widen further
        frontier = nxt
        depth += 1
    return depth


class TreePrefix:
    """A depth-``k`` routing cut of a built AP Tree.

    The top ``k`` levels are cloned with every cut point replaced by a
    fresh leaf carrying its *frontier index*, and the clone is compiled
    through :class:`CompiledAPTree` -- so routing a header is a (very
    shallow) fused-program descent whose "atom id" is the frontier
    index.  Sibling subtrees of an AP Tree hold disjoint packet sets,
    so the frontier is a partition of the whole header space: every
    header routes to exactly one frontier, and that frontier's subtree
    alone decides its atom.  This is what makes the cut a shard router
    (see :mod:`repro.serve.shard`).

    A prefix extracted from a live tree keeps the frontier's original
    nodes (:meth:`subtree` compiles per-frontier programs from them);
    one rehydrated via :meth:`from_arrays` is routing-only.
    """

    __slots__ = (
        "depth",
        "program",
        "tree",
        "tree_version",
        "frontier_nodes",
        "num_frontiers",
    )

    def __init__(
        self,
        *,
        depth: int,
        program: CompiledAPTree,
        tree: APTree | None = None,
        frontier_nodes: list[APTreeNode] | None = None,
        tree_version: int = 0,
    ) -> None:
        self.depth = depth
        self.program = program
        self.tree = tree
        self.tree_version = tree_version
        self.frontier_nodes = frontier_nodes
        if frontier_nodes is not None:
            self.num_frontiers = len(frontier_nodes)
        else:
            self.num_frontiers = int(program.to_arrays()["num_sinks"])

    # -- routing ---------------------------------------------------------

    def route(self, header: int) -> int:
        """Frontier index for one packed header."""
        return self.program.classify(header)

    def route_batch(self, headers) -> list[int]:
        """Frontier indices for a batch (list-in/list-out)."""
        return self.program.classify_batch(headers)

    def route_batch_array(self, headers, out=None):
        """Frontier indices as an ``int64`` array (numpy end-to-end)."""
        return self.program.classify_batch_array(headers, out=out)

    # -- slicing ---------------------------------------------------------

    def subtree(self, index: int) -> APTree:
        """Frontier ``index``'s subtree as a standalone :class:`APTree`.

        Shares nodes with the source tree (read-only view): compile it
        immediately if the source may mutate.
        """
        if self.tree is None or self.frontier_nodes is None:
            raise RuntimeError(
                "routing-only prefix (rehydrated from arrays) has no "
                "live subtrees"
            )
        return APTree(self.tree.manager, self.frontier_nodes[index])

    def frontier_leaf_counts(self) -> list[int]:
        """Leaves under each frontier node (shard balancing weights)."""
        if self.frontier_nodes is None:
            raise RuntimeError("routing-only prefix has no live subtrees")
        counts: list[int] = []
        for root in self.frontier_nodes:
            leaves = 0
            stack = [root]
            while stack:
                node = stack.pop()
                if node.pid is None:
                    leaves += 1
                else:
                    stack.append(node.low)
                    stack.append(node.high)
            counts.append(leaves)
        return counts

    # -- persistence (cluster manifests / wire handoff) ------------------

    def to_arrays(self) -> dict:
        """Plain data to rebuild the *routing* side anywhere.

        The frontier subtrees are not included -- they live in the
        per-shard artifacts (:mod:`repro.artifact.shard`).
        """
        arrays = self.program.to_arrays()
        return {
            "depth": self.depth,
            "num_frontiers": self.num_frontiers,
            **{key: _as_int_list(value) for key, value in arrays.items()
               if key not in ("num_vars", "num_sinks", "f_root")},
            "num_vars": arrays["num_vars"],
            "num_sinks": arrays["num_sinks"],
            "f_root": arrays["f_root"],
        }

    @classmethod
    def from_arrays(cls, arrays: dict, backend: str | None = None) -> "TreePrefix":
        """Rehydrate a routing-only prefix from :meth:`to_arrays` data."""
        program = CompiledAPTree.from_arrays(arrays, backend=backend)
        return cls(depth=int(arrays["depth"]), program=program)

    def __repr__(self) -> str:
        kind = "routing-only" if self.frontier_nodes is None else "live"
        return (
            f"TreePrefix(depth={self.depth}, "
            f"{self.num_frontiers} frontiers, {kind})"
        )


def extract_prefix(
    tree: APTree, depth: int, backend: str | None = None
) -> TreePrefix:
    """Cut ``tree`` at ``depth`` and compile the cut for routing.

    Nodes shallower than ``depth`` are cloned; each node *at* the cut
    (or leaf above it) becomes a frontier target, replaced in the clone
    by a leaf whose "atom id" is its frontier index.  The clone never
    aliases the source tree's nodes, so compiling it cannot disturb
    live serving structures.
    """
    if depth < 0:
        raise ValueError("prefix depth must be >= 0")
    frontier: list[APTreeNode] = []

    def cut(node: APTreeNode, d: int) -> APTreeNode:
        if node.pid is None or d >= depth:
            leaf = APTreeNode.leaf(len(frontier))
            frontier.append(node)
            return leaf
        return APTreeNode.internal(
            node.pid, node.fn_node, cut(node.low, d + 1), cut(node.high, d + 1)
        )

    routing_root = cut(tree.root, 0)
    routing_tree = APTree(tree.manager, routing_root)
    program = CompiledAPTree.compile(routing_tree, backend=backend)
    return TreePrefix(
        depth=depth,
        program=program,
        tree=tree,
        frontier_nodes=frontier,
        tree_version=tree.version,
    )
