"""Thread-based parallel reconstruction (Section VI-B, real threads).

:class:`repro.core.reconstruction.DynamicSimulation` reproduces Fig. 14's
timeline deterministically; this module is the production shape: a
query-serving classifier whose AP Tree is rebuilt by a background thread
and atomically swapped in, exactly following Fig. 8:

* the query path keeps answering on the old tree while a rebuild runs;
* updates arriving during the rebuild are applied to the old tree (so
  queries stay exact) *and* journaled;
* when the rebuild finishes, the journal is replayed onto the fresh tree
  before it replaces the old one.

Queries never block on reconstruction: the live (universe, tree, engine)
triple is swapped as one atomic reference. Mutations are serialized by a
single lock, which is held only for the (fast) incremental update -- not
for the rebuild itself.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from ..headerspace.header import Packet
from ..network.dataplane import DataPlane, PredicateChange
from ..network.rules import ForwardingRule
from .atomic import AtomicUniverse
from .behavior import Behavior, BehaviorComputer
from .construction import build_tree
from .update import UpdateEngine

__all__ = ["ConcurrentClassifier"]


@dataclass
class _State:
    """One immutable-by-convention generation of classifier state."""

    universe: AtomicUniverse
    tree: object
    engine: UpdateEngine
    behavior: BehaviorComputer


class ConcurrentClassifier:
    """AP Classifier with a background reconstruction thread.

    Use as a context manager (``with ConcurrentClassifier.build(...)``) or
    call :meth:`close` explicitly. A rebuild is triggered whenever the
    number of updates applied since the last swap reaches
    ``rebuild_after_updates`` (the paper's alternative trigger -- a
    throughput threshold -- can be driven externally via
    :meth:`request_rebuild`).
    """

    def __init__(
        self,
        dataplane: DataPlane,
        strategy: str = "oapt",
        rebuild_after_updates: int = 32,
    ) -> None:
        if rebuild_after_updates <= 0:
            raise ValueError("rebuild_after_updates must be positive")
        self.dataplane = dataplane
        self.strategy = strategy
        self.rebuild_after_updates = rebuild_after_updates
        self._state = self._fresh_state()
        self._lock = threading.Lock()
        self._journal: list[PredicateChange] = []
        self._journal_active = False
        self._updates_since_swap = 0
        self._rebuild_requested = threading.Event()
        self._shutdown = threading.Event()
        self.swaps_completed = 0
        self._thread = threading.Thread(
            target=self._reconstruction_loop,
            name="ap-reconstruction",
            daemon=True,
        )
        self._thread.start()

    @classmethod
    def build(
        cls,
        network,
        strategy: str = "oapt",
        rebuild_after_updates: int = 32,
    ) -> "ConcurrentClassifier":
        return cls(
            DataPlane(network),
            strategy=strategy,
            rebuild_after_updates=rebuild_after_updates,
        )

    def _fresh_state(self) -> _State:
        universe = AtomicUniverse.compute(
            self.dataplane.manager, self.dataplane.predicates()
        )
        tree = build_tree(universe, strategy=self.strategy).tree
        return _State(
            universe=universe,
            tree=tree,
            engine=UpdateEngine(universe, tree),
            behavior=BehaviorComputer(self.dataplane, universe),
        )

    # ------------------------------------------------------------------
    # Query path (lock-free: reads one generation snapshot)
    # ------------------------------------------------------------------

    def classify(self, packet: Packet | int) -> int:
        header = packet.value if isinstance(packet, Packet) else packet
        return self._state.tree.classify(header)

    def query(
        self, packet: Packet | int, ingress_box: str, in_port: str | None = None
    ) -> Behavior:
        state = self._state  # one generation for both stages
        header = packet.value if isinstance(packet, Packet) else packet
        atom_id = state.tree.classify(header)
        return state.behavior.compute(atom_id, ingress_box, in_port)

    # ------------------------------------------------------------------
    # Update path (serialized)
    # ------------------------------------------------------------------

    def insert_rule(self, box: str, rule: ForwardingRule) -> None:
        with self._lock:
            self._apply(self.dataplane.insert_rule(box, rule))

    def remove_rule(self, box: str, rule: ForwardingRule) -> None:
        with self._lock:
            self._apply(self.dataplane.remove_rule(box, rule))

    def _apply(self, changes: list[PredicateChange]) -> None:
        for change in changes:
            self._state.engine.apply(change)
            if self._journal_active:
                self._journal.append(change)
            self._updates_since_swap += 1
        if self._updates_since_swap >= self.rebuild_after_updates:
            self._rebuild_requested.set()

    @property
    def updates_since_swap(self) -> int:
        return self._updates_since_swap

    def request_rebuild(self) -> None:
        """Trigger a reconstruction regardless of the update counter."""
        self._rebuild_requested.set()

    # ------------------------------------------------------------------
    # Reconstruction thread
    # ------------------------------------------------------------------

    def _reconstruction_loop(self) -> None:
        while not self._shutdown.is_set():
            self._rebuild_requested.wait(timeout=0.05)
            if self._shutdown.is_set():
                return
            if not self._rebuild_requested.is_set():
                continue
            self._rebuild_requested.clear()
            self._rebuild_once()

    def _rebuild_once(self) -> None:
        # Snapshot the live predicates and start journaling updates.
        with self._lock:
            snapshot = self.dataplane.predicates()
            self._journal = []
            self._journal_active = True
        # Heavy work off-lock: queries and updates proceed on the old tree.
        universe = AtomicUniverse.compute(self.dataplane.manager, snapshot)
        tree = build_tree(universe, strategy=self.strategy).tree
        staged = _State(
            universe=universe,
            tree=tree,
            engine=UpdateEngine(universe, tree),
            behavior=BehaviorComputer(self.dataplane, universe),
        )
        # Replay journaled updates, then swap. Replays are fast (Section
        # VI-A), so holding the lock here is acceptable.
        with self._lock:
            for change in self._journal:
                if change.removed is not None and staged.universe.has_predicate(
                    change.removed.pid
                ):
                    staged.engine.remove_predicate(change.removed.pid)
                if change.added is not None and not staged.universe.has_predicate(
                    change.added.pid
                ):
                    staged.engine.add_predicate(change.added)
            self._journal = []
            self._journal_active = False
            self._state = staged
            self._updates_since_swap = 0
            self.swaps_completed += 1

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self, timeout: float = 5.0) -> None:
        self._shutdown.set()
        self._rebuild_requested.set()
        self._thread.join(timeout=timeout)

    def __enter__(self) -> "ConcurrentClassifier":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ConcurrentClassifier({self.strategy}, "
            f"{self._state.universe.atom_count} atoms, "
            f"{self.swaps_completed} swaps)"
        )
