"""High-level AP Tree builders: one per construction method evaluated in
the paper (Best-from-Random, Quick-Ordering, OAPT; Section VII-A/C)."""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Mapping, Sequence

from .aptree import APTree, build_ap_tree
from .atomic import AtomicUniverse
from .ordering import (
    fixed_order_chooser,
    oapt_chooser,
    optimal_subtree_cost,
    quick_ordering,
)

__all__ = [
    "build_with_order",
    "build_random",
    "best_from_random",
    "draw_trial_seeds",
    "build_quick_ordering",
    "build_oapt",
    "build_optimal",
    "build_tree",
    "ConstructionReport",
    "STRATEGIES",
]

STRATEGIES = ("random", "best_from_random", "quick_ordering", "oapt", "optimal")


@dataclass(frozen=True)
class ConstructionReport:
    """What a builder produced and how long it took (Fig. 11 material)."""

    strategy: str
    tree: APTree
    elapsed_s: float
    average_depth: float
    trials: int = 1

    def describe(self) -> str:
        return (
            f"{self.strategy}: avg depth {self.average_depth:.2f}, "
            f"built in {self.elapsed_s * 1e3:.2f} ms"
        )


def build_with_order(universe: AtomicUniverse, order: Sequence[int]) -> APTree:
    """Pruned tree with predicates placed by the given global order."""
    return build_ap_tree(universe, fixed_order_chooser(order), list(order))


def build_random(universe: AtomicUniverse, rng: random.Random) -> APTree:
    """One tree from a uniformly random predicate order."""
    order = list(universe.predicate_ids())
    rng.shuffle(order)
    return build_with_order(universe, order)


def draw_trial_seeds(rng: random.Random, trials: int) -> list[int]:
    """Pre-draw one independent seed per Best-from-Random trial.

    Seeding each trial with its own :class:`random.Random` decouples the
    trials from each other, so they can run in any order -- or in worker
    processes -- and still produce depth-for-depth identical results.
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    return [rng.randrange(1 << 63) for _ in range(trials)]


def best_from_random(
    universe: AtomicUniverse,
    trials: int = 100,
    rng: random.Random | None = None,
    weights: Mapping[int, float] | None = None,
    seeds: Sequence[int] | None = None,
) -> tuple[APTree, list[float]]:
    """The paper's Best-from-Random baseline (Section VII-A).

    Builds ``trials`` random-order trees and keeps the one with minimal
    average leaf depth.  Also returns every trial's average depth, which
    is exactly the scatter data of Fig. 4.  With ``seeds``, each trial
    shuffles with its own ``Random(seed)`` (see :func:`draw_trial_seeds`);
    without, the single ``rng`` threads through all trials as before.
    """
    rng = rng if rng is not None else random.Random(0)
    weight_map = dict(weights) if weights else None
    best: APTree | None = None
    best_depth = float("inf")
    depths: list[float] = []
    if seeds is not None:
        trial_rngs = [random.Random(seed) for seed in seeds]
    else:
        if trials <= 0:
            raise ValueError("trials must be positive")
        trial_rngs = [rng] * trials
    if not trial_rngs:
        raise ValueError("seeds must be non-empty")
    for trial_rng in trial_rngs:
        tree = build_random(universe, trial_rng)
        depth = tree.average_depth(weight_map)
        depths.append(depth)
        if depth < best_depth:
            best = tree
            best_depth = depth
    assert best is not None
    return best, depths


def build_quick_ordering(universe: AtomicUniverse) -> APTree:
    """Quick-Ordering construction (Section V-B)."""
    return build_with_order(universe, quick_ordering(universe))


def build_oapt(
    universe: AtomicUniverse,
    weights: Mapping[int, float] | None = None,
) -> APTree:
    """Optimized AP Tree construction (Section V-C / V-D)."""
    return build_ap_tree(universe, oapt_chooser(universe, weights))


def build_optimal(
    universe: AtomicUniverse,
    weights: Mapping[int, float] | None = None,
) -> APTree:
    """Provably depth-optimal tree via the exhaustive ``F(Q, S)`` recursion.

    Exponential; only for small universes (tests and the ablation bench).
    """
    _, choice = optimal_subtree_cost(universe, weights=weights)

    def choose(candidates: list[int], atoms: frozenset[int]) -> int:
        return choice[atoms]

    return build_ap_tree(universe, choose)


def build_tree(
    universe: AtomicUniverse,
    strategy: str = "oapt",
    rng: random.Random | None = None,
    trials: int = 100,
    weights: Mapping[int, float] | None = None,
) -> ConstructionReport:
    """Strategy dispatch with timing, for benches and the classifier facade."""
    rng = rng if rng is not None else random.Random(0)
    started = time.perf_counter()
    built_trials = 1
    if strategy == "random":
        tree = build_random(universe, rng)
    elif strategy == "best_from_random":
        tree, depths = best_from_random(universe, trials, rng, weights)
        built_trials = len(depths)
    elif strategy == "quick_ordering":
        tree = build_quick_ordering(universe)
    elif strategy == "oapt":
        tree = build_oapt(universe, weights)
    elif strategy == "optimal":
        tree = build_optimal(universe, weights)
    else:
        raise ValueError(
            f"unknown strategy {strategy!r}; expected one of {STRATEGIES}"
        )
    elapsed = time.perf_counter() - started
    return ConstructionReport(
        strategy=strategy,
        tree=tree,
        elapsed_s=elapsed,
        average_depth=tree.average_depth(dict(weights) if weights else None),
        trials=built_trials,
    )
