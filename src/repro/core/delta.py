"""Behavior deltas: what changed between two data plane states.

Section I's fault localization and attack detection both reduce to the
same primitive: compare the behavior of every packet class before and
after some event, and pinpoint where the forwarding trees diverge. This
module implements that primitive on top of the atom sweep.

Because the two snapshots generally have *different* atom universes (any
rule change re-partitions the header space), deltas are computed over the
intersection refinement: for each atom of the "after" universe, a witness
packet is sampled and both classifiers are queried with it -- concrete
packets are the common currency of the two universes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from .behavior import Behavior

__all__ = ["BehaviorDelta", "diff_behaviors", "behavior_delta", "first_divergence"]


@dataclass(frozen=True)
class BehaviorDelta:
    """One packet class whose behavior changed."""

    witness_header: int
    before: Behavior
    after: Behavior
    #: First box at which the traces diverge (None if only the endpoints
    #: changed, e.g. a host went unreachable with the path prefix intact).
    diverges_at: str | None

    def describe(self) -> str:
        before_paths = [" -> ".join(p) for p in self.before.paths()]
        after_paths = [" -> ".join(p) for p in self.after.paths()]
        where = self.diverges_at if self.diverges_at is not None else "endpoint"
        return (
            f"witness {self.witness_header:#x} diverges at {where}: "
            f"{before_paths} != {after_paths}"
        )


def diff_behaviors(before: Behavior, after: Behavior) -> bool:
    """True iff the two behaviors differ observably (paths or deliveries)."""
    return (
        sorted(map(tuple, before.paths())) != sorted(map(tuple, after.paths()))
        or before.delivered_hosts() != after.delivered_hosts()
    )


def first_divergence(before: Behavior, after: Behavior) -> str | None:
    """The box whose forwarding decision made the traces diverge.

    This is the fault-localization answer (Section I): the *last common*
    box before the traversals disagree is where the changed/broken rule
    acted, so that is where to look.
    """
    before_boxes = before.boxes_traversed()
    after_boxes = after.boxes_traversed()
    divergence_index: int | None = None
    for index, (a, b) in enumerate(zip(before_boxes, after_boxes)):
        if a != b:
            divergence_index = index
            break
    if divergence_index is None:
        if len(before_boxes) == len(after_boxes):
            return None
        divergence_index = min(len(before_boxes), len(after_boxes))
    if divergence_index == 0:
        # Same ingress always shares index 0; a 0 here means one trace is
        # empty, which cannot happen for a computed behavior -- but guard.
        return before_boxes[0] if before_boxes else None
    return before_boxes[divergence_index - 1]


def behavior_delta(
    classifier_before,
    classifier_after,
    ingress_box: str,
    rng: random.Random | None = None,
) -> list[BehaviorDelta]:
    """All packet classes whose behavior from ``ingress_box`` changed.

    ``classifier_before``/``classifier_after`` are built ``APClassifier``
    instances over the two data plane states (they may share a network
    object at different times, or be fully independent builds, as long as
    both use the same header layout).

    The sweep is exhaustive: it enumerates every non-empty intersection of
    a before-atom with an after-atom. Each such intersection is a uniform
    class in *both* universes, so one witness per intersection covers the
    entire header space exactly.
    """
    rng = rng if rng is not None else random.Random(0)
    if (
        classifier_before.dataplane.manager
        is not classifier_after.dataplane.manager
    ):
        # Different managers: fall back to witness sampling per pair via
        # evaluation (no cross-manager BDD ops are possible).
        return _delta_cross_manager(
            classifier_before, classifier_after, ingress_box, rng
        )
    deltas: list[BehaviorDelta] = []
    # One behavior computation per atom per classifier, not per pair: an
    # atom overlaps many atoms of the other universe, and behavior_of_atom
    # re-traverses the forwarding graph every call.  Memoizing here keeps
    # the sweep linear in behavior computations (the pair loop itself only
    # pays one BDD intersection per pair).
    before_cache: dict[int, Behavior] = {}
    after_cache: dict[int, Behavior] = {}
    before_atoms = sorted(classifier_before.universe.atoms().items())
    for after_id, after_fn in sorted(classifier_after.universe.atoms().items()):
        for before_id, before_fn in before_atoms:
            overlap = after_fn & before_fn
            if overlap.is_false:
                continue
            before = before_cache.get(before_id)
            if before is None:
                before = before_cache[before_id] = (
                    classifier_before.behavior_of_atom(before_id, ingress_box)
                )
            after = after_cache.get(after_id)
            if after is None:
                after = after_cache[after_id] = (
                    classifier_after.behavior_of_atom(after_id, ingress_box)
                )
            if diff_behaviors(before, after):
                deltas.append(
                    BehaviorDelta(
                        witness_header=overlap.random_sat(rng),
                        before=before,
                        after=after,
                        diverges_at=first_divergence(before, after),
                    )
                )
    return deltas


def _delta_cross_manager(
    classifier_before, classifier_after, ingress_box: str, rng: random.Random
) -> list[BehaviorDelta]:
    """Pairwise sweep when the universes live in different managers.

    Without a shared manager no cross-universe BDD intersection exists, so
    this walks each after-atom's cubes and probes one witness per cube.
    That covers every (after-atom, cube) pair -- exhaustive for planes
    whose atoms are unions of cubes each intersecting one before-class
    (true for prefix-rule planes), and a dense approximation otherwise.
    Build both classifiers on one manager to get the exact sweep."""
    deltas: list[BehaviorDelta] = []
    before_cache: dict[int, Behavior] = {}
    after_cache: dict[int, Behavior] = {}
    for after_id, after_fn in sorted(classifier_after.universe.atoms().items()):
        seen_before: set[int] = set()
        for cube in after_fn.iter_cubes():
            witness = _cube_witness(
                cube, classifier_after.dataplane.manager.num_vars
            )
            before_id = classifier_before.classify(witness)
            if before_id in seen_before:
                continue
            seen_before.add(before_id)
            before = before_cache.get(before_id)
            if before is None:
                before = before_cache[before_id] = (
                    classifier_before.behavior_of_atom(before_id, ingress_box)
                )
            after = after_cache.get(after_id)
            if after is None:
                after = after_cache[after_id] = (
                    classifier_after.behavior_of_atom(after_id, ingress_box)
                )
            if diff_behaviors(before, after):
                deltas.append(
                    BehaviorDelta(
                        witness_header=witness,
                        before=before,
                        after=after,
                        diverges_at=first_divergence(before, after),
                    )
                )
    return deltas


def _cube_witness(cube: dict[int, bool], num_vars: int) -> int:
    """A concrete header inside a cube (don't-care bits set to zero)."""
    header = 0
    for var, polarity in cube.items():
        if polarity:
            header |= 1 << (num_vars - 1 - var)
    return header
