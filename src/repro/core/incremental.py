"""Incremental atom maintenance: delta refinement + local tree splice.

Section VI treats every predicate change as either a leaf split plus
tombstone (VI-A) or a *full* background reconstruction (VI-B), so the
partition drifts away from minimal between rebuilds and update latency
is bounded below by a whole rebuild.  This module closes that gap by
maintaining the atomic-predicate universe itself under churn:

* **Addition** is already a delta operation (``a & p`` / ``a & ~p`` per
  atom, Section VI-A); the engine additionally patches the *compiled*
  program in place (:meth:`CompiledAPTree.patch_apply_splits`) so the
  fast path stays hot instead of falling back to the interpreted tree.
* **Removal** no longer tombstones: the atoms the predicate's ``R`` set
  touched are re-examined, sibling atoms whose live memberships became
  identical are merged back (:meth:`AtomicUniverse.merge_siblings`),
  and the AP Tree is **spliced locally** -- only the subtrees rooted at
  nodes labeled by the removed predicate are rebuilt, over the merged
  atom set and the live candidate predicates; every other node keeps
  its identity and every unaffected atom keeps its id.  When each
  affected subtree was a two-leaf fringe, the compiled program is
  collapsed in place as well (:meth:`CompiledAPTree.patch_leaf_merges`).

Why the splice is globally complete: under pure incremental maintenance
every tree label is a live predicate, so for any pair of atoms that a
removal leaves indistinguishable, the lowest common ancestor separating
them *must* be a node labeled by the removed predicate (any other label
would be a live predicate distinguishing them).  Merging within the
spliced subtrees therefore restores the minimal-partition invariant
everywhere -- the property the equivalence tests pin against a
from-scratch rebuild.

The engine falls back to a full rebuild (universe coalesce + fresh tree
over the same ``APTree`` object, preserving identity for compiled-
staleness checks) only when the tree degrades past a depth budget, when
it was handed a tree with tombstone history (dead labels), or when a
splice cannot be built -- all counted under ``updates.incremental`` in
observability snapshots.
"""

from __future__ import annotations

import math
from typing import Sequence

from ..network.dataplane import LabeledPredicate
from .aptree import APTreeNode
from .atomic import AtomMerge
from .construction import build_tree
from .update import UpdateEngine

__all__ = ["IncrementalEngine"]


def _leaf_atoms(node: APTreeNode) -> list[int]:
    """Atom ids of every leaf under ``node`` (including ``node`` itself)."""
    atoms: list[int] = []
    stack = [node]
    while stack:
        n = stack.pop()
        if n.is_leaf:
            assert n.atom_id is not None
            atoms.append(n.atom_id)
        else:
            assert n.low is not None and n.high is not None
            stack.append(n.low)
            stack.append(n.high)
    return atoms


class IncrementalEngine(UpdateEngine):
    """An :class:`UpdateEngine` that keeps the partition minimal under churn.

    Drop-in for the base engine (same ``apply``/``replay`` surface).
    ``classifier`` optionally hands the engine the owning
    :class:`~repro.core.classifier.APClassifier` so compiled artifacts
    are patched in place (or eagerly recompiled when a change is not
    leaf-local) instead of decaying into stale-fallback.

    The depth budget ``depth_factor * ceil(log2(atoms)) + depth_slack``
    bounds how unbalanced splices may leave the tree before a full
    rebuild resets it; pure additions degrade slowly (each split deepens
    one path by one), so on realistic churn the budget is rarely hit.
    """

    def __init__(
        self,
        universe,
        tree,
        counter=None,
        recorder=None,
        *,
        classifier=None,
        strategy: str = "oapt",
        depth_factor: float = 4.0,
        depth_slack: int = 8,
    ) -> None:
        super().__init__(universe, tree, counter, recorder)
        self.classifier = classifier
        self.strategy = strategy
        self.depth_factor = depth_factor
        self.depth_slack = depth_slack
        self.merges_applied = 0
        self.splices = 0
        self.patches = 0
        self.patch_fallbacks = 0
        self.full_rebuilds = 0
        # A tree carrying tombstoned labels predates this engine (the
        # splice-completeness argument needs every label live); the
        # first removal cleans it up with one full rebuild.
        self._labels_live = tree is None or all(
            universe.has_predicate(node.pid)
            for node in tree._walk()
            if not node.is_leaf
        )

    # ------------------------------------------------------------------
    # Additions
    # ------------------------------------------------------------------

    def add_predicate(self, labeled: LabeledPredicate) -> int:
        tree = self.tree
        version_before = tree.version if tree is not None else 0
        splits = self.universe.add_predicate(labeled.pid, labeled.fn)
        if self.counter is not None:
            for split in splits:
                if split.is_split:
                    assert split.inside_id is not None
                    assert split.outside_id is not None
                    self.counter.on_split(
                        split.old_id, split.inside_id, split.outside_id
                    )
        if tree is None:
            return sum(1 for split in splits if split.is_split)
        split_count = tree.apply_splits(labeled.pid, labeled.fn.node, splits)
        compiled = self._compiled_for_patch(version_before)
        if compiled is not None:
            if compiled.patch_apply_splits(labeled.fn.node, splits):
                self._note_patch()
            else:
                self._note_patch_fallback()
        self._maybe_rebuild()
        return split_count

    # ------------------------------------------------------------------
    # Removals
    # ------------------------------------------------------------------

    def remove_predicate(self, pid: int) -> int:
        universe = self.universe
        tree = self.tree
        tombstoned = len(universe.r(pid))
        if tree is None:
            universe.remove_predicate(pid)
            merges = universe.merge_siblings(universe.atom_ids())
            self._note_merges(merges)
            return tombstoned
        if not self._labels_live:
            universe.remove_predicate(pid)
            self._full_rebuild()
            return tombstoned
        version_before = tree.version

        # The subtrees whose label set changes: every node labeled pid.
        # (The same pid never nests under itself -- each addition labels
        # disjoint split leaves, and builds never repeat a pid on a path.)
        sites: list[tuple[APTreeNode, APTreeNode | None, bool]] = []
        stack: list[tuple[APTreeNode, APTreeNode | None, bool]] = [
            (tree.root, None, False)
        ]
        while stack:
            node, parent, is_high = stack.pop()
            if node.is_leaf:
                continue
            if node.pid == pid:
                sites.append((node, parent, is_high))
                continue
            assert node.low is not None and node.high is not None
            stack.append((node.low, node, False))
            stack.append((node.high, node, True))

        universe.remove_predicate(pid)
        if not sites:
            # The predicate was never placed (it split nothing when the
            # tree was built, e.g. R(p) covered every atom): removing it
            # changes no structure and merges nothing.
            tree.touch()
            compiled = self._compiled_for_patch(version_before)
            if compiled is not None and compiled.patch_leaf_merges(()):
                self._note_patch()
            return tombstoned

        site_atoms = [_leaf_atoms(node) for node, _, _ in sites]
        groups: dict[int, int] = {}
        for index, atoms in enumerate(site_atoms):
            for atom_id in atoms:
                groups[atom_id] = index
        merges = universe.merge_siblings(list(groups), groups)
        self._note_merges(merges)
        mapping: dict[int, int] = {}
        for merge in merges:
            for part in merge.parts:
                mapping[part] = merge.merged_id
        if self.counter is not None and mapping:
            self.counter.on_merge(mapping)

        # Splice: rebuild each affected subtree over its merged atoms and
        # the live candidates, preserving everything outside the sites.
        try:
            for index, (node, parent, is_high) in enumerate(sites):
                merged_atoms = frozenset(
                    mapping.get(atom_id, atom_id)
                    for atom_id in site_atoms[index]
                )
                replacement = self._build_local(merged_atoms)
                if parent is None:
                    tree.root = replacement
                elif is_high:
                    parent.high = replacement
                else:
                    parent.low = replacement
                for atom_id in site_atoms[index]:
                    tree._leaf_index.pop(atom_id, None)
                stack2 = [replacement]
                while stack2:
                    n = stack2.pop()
                    if n.is_leaf:
                        tree._leaf_index[n.atom_id] = n
                    else:
                        stack2.append(n.low)
                        stack2.append(n.high)
                self.splices += 1
                rec = self.recorder
                if rec is not None:
                    rec.updates.incremental_splices += 1
        except ValueError:
            # No live candidate distinguishes some atom pair under a
            # site -- only possible with tombstone history the liveness
            # probe missed; a full rebuild restores every invariant.
            tree.touch()
            self._full_rebuild()
            return tombstoned
        tree.touch()

        compiled = self._compiled_for_patch(version_before)
        if compiled is not None:
            pairs = [(merge.merged_id, merge.parts) for merge in merges]
            if compiled.patch_leaf_merges(pairs):
                self._note_patch()
            else:
                self._note_patch_fallback()
        self._maybe_rebuild()
        return tombstoned

    # ------------------------------------------------------------------
    # Local subtree construction
    # ------------------------------------------------------------------

    def _build_local(self, atoms: frozenset[int]) -> APTreeNode:
        """A pruned subtree over ``atoms`` using live candidates only.

        Deterministic balanced chooser (most even split, smallest pid on
        ties) -- splice results must not depend on set iteration order,
        or the equivalence property against a rebuild becomes flaky.
        """
        if len(atoms) == 1:
            return APTreeNode.leaf(next(iter(atoms)))
        universe = self.universe
        candidates: set[int] = set()
        for atom_id in atoms:
            candidates |= universe.memberships(atom_id)
        r_sets = {pid: universe.r(pid) for pid in candidates}
        fn_nodes = {
            pid: universe.predicate_fn(pid).node for pid in candidates
        }

        def build(cands: list[int], subset: frozenset[int]) -> APTreeNode:
            if len(subset) == 1:
                return APTreeNode.leaf(next(iter(subset)))
            splitting = [
                pid
                for pid in cands
                if 0 < len(subset & r_sets[pid]) < len(subset)
            ]
            if not splitting:
                raise ValueError(
                    "multiple atoms under a splice but no live predicate "
                    "distinguishes them"
                )
            pid = min(
                splitting,
                key=lambda p: (
                    abs(2 * len(subset & r_sets[p]) - len(subset)),
                    p,
                ),
            )
            inside = subset & r_sets[pid]
            outside = subset - r_sets[pid]
            remaining = [c for c in splitting if c != pid]
            return APTreeNode.internal(
                pid, fn_nodes[pid], build(remaining, outside), build(remaining, inside)
            )

        return build(sorted(candidates), atoms)

    # ------------------------------------------------------------------
    # Degradation fallback
    # ------------------------------------------------------------------

    def depth_budget(self) -> float:
        """Max depth tolerated before a splice-degraded tree is rebuilt."""
        atoms = max(self.universe.atom_count, 2)
        return self.depth_factor * math.ceil(math.log2(atoms)) + self.depth_slack

    def _maybe_rebuild(self) -> None:
        tree = self.tree
        if tree is None:
            return
        if tree.max_depth() > self.depth_budget():
            self._full_rebuild()

    def _full_rebuild(self) -> None:
        """Coalesce the universe and rebuild the tree *in place*.

        The fresh structure is grafted onto the existing ``APTree``
        object (root + leaf index) instead of swapping objects: the
        owning classifier, any serving layer, and the compiled-engine
        staleness protocol all key on tree identity, and an in-place
        graft keeps every one of them coherent with a single version
        bump.
        """
        universe = self.universe
        tree = self.tree
        mapping = universe.coalesce()
        if self.counter is not None:
            self.counter.on_merge(mapping)
        report = build_tree(universe, strategy=self.strategy)
        tree.root = report.tree.root
        tree._leaf_index = report.tree._leaf_index
        tree.touch()
        self._labels_live = True
        self.full_rebuilds += 1
        rec = self.recorder
        if rec is not None:
            rec.updates.rebuilds += 1
            rec.updates.incremental_full_rebuilds += 1
        clf = self.classifier
        if clf is not None and clf.compiled is not None:
            clf.compile(backend=clf.compiled.backend)

    # ------------------------------------------------------------------
    # Compiled-artifact bookkeeping
    # ------------------------------------------------------------------

    def _compiled_for_patch(self, version_before: int):
        """The owning classifier's artifact, iff it was fresh pre-update.

        An artifact that was already stale (or compiled against another
        tree object) is not this engine's to manage -- whoever let it go
        stale owns the recompile policy.
        """
        clf = self.classifier
        if clf is None:
            return None
        compiled = clf.compiled
        if compiled is None or not compiled.patchable:
            return None
        if compiled.tree is not self.tree:
            return None
        if compiled.tree_version != version_before:
            return None
        return compiled

    def _note_patch(self) -> None:
        self.patches += 1
        rec = self.recorder
        if rec is not None:
            rec.updates.incremental_patches += 1

    def _note_patch_fallback(self) -> None:
        """A fresh artifact could not be patched: recompile it eagerly.

        The whole point of incremental maintenance at the serving layer
        is never parking queries on the interpreted fallback; a synchronous
        recompile costs one flatten, against an unbounded stale window.
        """
        self.patch_fallbacks += 1
        rec = self.recorder
        if rec is not None:
            rec.updates.incremental_patch_fallbacks += 1
        clf = self.classifier
        if clf is not None and clf.compiled is not None:
            clf.compile(backend=clf.compiled.backend)

    def _note_merges(self, merges: Sequence[AtomMerge]) -> None:
        if not merges:
            return
        self.merges_applied += len(merges)
        rec = self.recorder
        if rec is not None:
            rec.updates.incremental_merges += len(merges)
