"""Zero-copy batch kernel: word-packed headers, reusable scratch, descent.

The original numpy batch path materialized an ``n x num_vars`` uint8 bit
matrix per batch (one byte per header bit, built by a per-header Python
``to_bytes`` loop) and reallocated every lane/cursor array on every
call.  At serving batch sizes that plumbing costs more than the descent
itself.  This module replaces it:

* **Word packing** (:func:`pack_headers`).  Headers live as little-endian
  ``uint64`` words -- ``ceil(num_vars / 64)`` words per header, word
  ``w`` holding header bits ``64w .. 64w+63`` of the packed integer.
  For the common ``num_vars <= 64`` case a caller-supplied numpy
  ``uint64`` array *is already* the packed form, so array-in callers pay
  zero packing work; list-in callers get one ``np.fromiter`` pass, no
  intermediate bit matrix.  Variable ``v`` of a header is bit
  ``num_vars - 1 - v`` of the packed integer, so its word index and
  in-word shift are compile-time constants per program node
  (:func:`shift_arrays`).
* **Scratch reuse** (:class:`KernelScratch`).  The descent's lane,
  cursor, base, word, and output buffers are allocated once per engine
  and reused across batches; a non-blocking lock hands the buffers to
  one caller at a time and concurrent callers (multi-threaded engines
  shared outside the serve loop) silently fall back to fresh
  allocations -- correctness never depends on winning the lock.
* **Descent** (:func:`descend_numpy` / :func:`descend_native`).  The
  same fused branching program either advanced batch-wide with numpy
  gathers (three ``take``/shift ops per node visit, finished lanes
  compacted away) or handed to the optional C kernel
  (:mod:`repro._native`), which walks each packet's path in a tight
  scalar loop over the identical little-endian arrays -- including
  arrays mmapped straight out of a binary artifact.

Engine resolution lives in :func:`resolve_backend`: explicit ``backend=``
arguments fail loudly when the engine is unavailable, while the
``REPRO_ENGINE`` environment preference degrades gracefully
(native -> numpy -> stdlib) so one deployment-wide setting works on
hosts with and without the built extension.
"""

from __future__ import annotations

import threading

from .. import config
from .._native import load_kernel, native_build_hint

try:  # pragma: no cover - exercised via the CI matrix
    if config.numpy_disabled():
        _np = None
    else:
        import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

__all__ = [
    "NATIVE_BACKEND",
    "NUMPY_BACKEND",
    "STDLIB_BACKEND",
    "KernelScratch",
    "Program",
    "available_backends",
    "default_backend",
    "native_available",
    "numpy_available",
    "pack_headers",
    "resolve_backend",
    "shift_arrays",
    "words_per_header",
]

NATIVE_BACKEND = "native"
NUMPY_BACKEND = "numpy"
STDLIB_BACKEND = "stdlib"

#: Iterations between finished-lane compactions of the numpy descent.
_COMPACT_BLOCK = 16


def numpy_available() -> bool:
    return _np is not None


def native_available() -> bool:
    """Is the C kernel importable *and* usable (numpy present)?

    The native kernel computes over numpy-packed word buffers, so it is
    only offered when numpy is importable too; ``REPRO_DISABLE_NUMPY``
    therefore disables both accelerated engines at once.
    """
    return _np is not None and load_kernel() is not None


def available_backends() -> tuple[str, ...]:
    """Backends usable in this process, preferred first."""
    if native_available():
        return (NATIVE_BACKEND, NUMPY_BACKEND, STDLIB_BACKEND)
    if _np is not None:
        return (NUMPY_BACKEND, STDLIB_BACKEND)
    return (STDLIB_BACKEND,)


def default_backend() -> str:
    """The auto-selected backend, honoring the ``REPRO_ENGINE`` preference.

    The environment knob states a *preference*: if the preferred engine
    is not importable here the next one down the native -> numpy ->
    stdlib ladder is chosen, never an error (deployments set the knob
    fleet-wide; individual hosts degrade).  Unset means "best
    available".
    """
    usable = available_backends()
    preferred = config.engine()
    if preferred is not None:
        if preferred in usable:
            return preferred
        # Graceful degradation: start the ladder at the preference.
        for candidate in usable:
            return candidate
    return usable[0]


def resolve_backend(backend: str | None) -> str:
    """Validate an explicit backend, or auto-select for ``None``.

    Unlike the environment preference, an explicit argument is a
    demand: asking for an engine this process cannot run raises with a
    hint instead of silently serving from a slower path.
    """
    if backend is None:
        return default_backend()
    if backend not in config.ENGINES:
        raise ValueError(
            f"unknown backend {backend!r} (expected one of {config.ENGINES})"
        )
    if backend == NATIVE_BACKEND and not native_available():
        if _np is None:
            raise ValueError(
                "native backend requested but numpy is unavailable "
                "(the native kernel packs headers through numpy)"
            )
        raise ValueError(f"native backend requested but {native_build_hint()}")
    if backend == NUMPY_BACKEND and _np is None:
        raise ValueError("numpy backend requested but numpy is unavailable")
    return backend


# ----------------------------------------------------------------------
# Header word packing
# ----------------------------------------------------------------------


def words_per_header(num_vars: int) -> int:
    """uint64 words per packed header (at least 1)."""
    return max(1, (num_vars + 63) // 64)


def shift_arrays(f_var, num_vars: int):
    """Per-program-node ``(word, shift)`` int32 arrays for bit extraction.

    Variable ``v`` is bit ``num_vars - 1 - v`` of the packed header, so
    node ``i`` testing ``f_var[i]`` reads word ``shift >> 6`` at in-word
    shift ``shift & 63``.  Precomputed once at compile/load time; the
    descents index these instead of recomputing shifts per visit.
    """
    shifts = (num_vars - 1) - _np.asarray(f_var, dtype=_np.int64)
    # Sinks carry var 0 placeholders; clamp so derived indices stay valid.
    shifts = _np.maximum(shifts, 0)
    word = (shifts >> 6).astype(_np.int32)
    shift = (shifts & 63).astype(_np.int32)
    return _np.ascontiguousarray(word), _np.ascontiguousarray(shift)


def pack_headers(headers, num_vars: int, scratch: "KernelScratch | None" = None):
    """Headers as a C-contiguous ``(n, W)`` or ``(n,)`` uint64 word array.

    Zero-copy when possible: a 1-D ``uint64`` array with ``W == 1`` (or a
    C-contiguous ``(n, W)`` ``uint64`` array) is returned as-is.  Python
    sequences are packed with one ``np.fromiter`` pass for ``W == 1``;
    wider headers fall back to a ``to_bytes`` join (the only remaining
    per-header Python work, and only for >64-variable layouts).  When a
    ``scratch`` is supplied its word buffer is reused for the fromiter
    fast path.
    """
    width = words_per_header(num_vars)
    if isinstance(headers, _np.ndarray):
        arr = headers
        if arr.dtype != _np.uint64:
            if width == 1 and arr.ndim == 1:
                return _np.ascontiguousarray(arr, dtype=_np.uint64)
            raise ValueError(
                f"header array must be uint64 (got {arr.dtype}) for "
                f"{num_vars}-variable layouts"
            )
        if width == 1:
            if arr.ndim == 2 and arr.shape[1] == 1:
                arr = arr.reshape(-1)
            if arr.ndim != 1:
                raise ValueError(
                    f"expected (n,) headers for a <=64-variable layout, "
                    f"got shape {arr.shape}"
                )
            return _np.ascontiguousarray(arr)
        if arr.ndim != 2 or arr.shape[1] != width:
            raise ValueError(
                f"expected (n, {width}) word-packed headers, got shape "
                f"{arr.shape}"
            )
        return _np.ascontiguousarray(arr)
    n = len(headers)
    if width == 1:
        if scratch is not None:
            buf = scratch.words(n)
            for i, header in enumerate(headers):
                buf[i] = header
            return buf
        return _np.fromiter(headers, dtype=_np.uint64, count=n)
    data = b"".join(h.to_bytes(8 * width, "little") for h in headers)
    return _np.frombuffer(data, dtype=_np.uint64).reshape(n, width)


# ----------------------------------------------------------------------
# Program view + reusable scratch buffers
# ----------------------------------------------------------------------


class Program:
    """The fused branching program as the descents consume it.

    A thin, immutable bundle of the little-endian arrays (built once at
    compile/load time) so both descents -- and the C kernel's buffer
    handoff -- see one canonical layout: ``f_child`` interleaved int32
    (``child[2i]`` = low, ``child[2i+1]`` = high), ``f_word``/``f_shift``
    int32 per node, ``f_atom`` int64 per sink.
    """

    __slots__ = (
        "width",
        "f_word",
        "f_shift",
        "f_child",
        "f_atom",
        "num_sinks",
        "f_root",
    )

    def __init__(
        self, *, width, f_word, f_shift, f_child, f_atom, num_sinks, f_root
    ) -> None:
        self.width = width
        self.f_word = f_word
        self.f_shift = f_shift
        self.f_child = f_child
        self.f_atom = f_atom
        self.num_sinks = num_sinks
        self.f_root = f_root


class KernelScratch:
    """Per-engine descent buffers, reused across batches.

    One instance lives on each compiled engine; :meth:`lease` hands the
    buffers to exactly one caller at a time (non-blocking -- a second
    concurrent caller gets ``None`` and allocates fresh temporaries).
    Buffers grow geometrically and never shrink: the steady state of a
    serving loop is zero allocations per batch.

    The lock matters because engines outlive the asyncio serve loop:
    the multi-worker pool, benchmark harnesses, and user code may share
    one engine across threads, and the serve swap lock only serializes
    *its own* dispatcher -- not foreign threads classifying on the same
    artifact.
    """

    __slots__ = ("_lock", "_capacity", "_words", "_out", "_cur", "_lanes", "_base")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._capacity = 0
        self._words = None
        self._out = None
        self._cur = None
        self._lanes = None
        self._base = None

    def acquire(self) -> bool:
        return self._lock.acquire(blocking=False)

    def release(self) -> None:
        self._lock.release()

    def _grow(self, n: int) -> None:
        if n > self._capacity:
            capacity = max(256, 1 << (n - 1).bit_length())
            self._capacity = capacity
            self._words = _np.empty(capacity, dtype=_np.uint64)
            self._out = _np.empty(capacity, dtype=_np.int64)
            self._cur = _np.empty(capacity, dtype=_np.int32)
            self._lanes = _np.empty(capacity, dtype=_np.int32)
            self._base = _np.empty(capacity, dtype=_np.int64)

    def words(self, n: int):
        """A ``uint64[n]`` packing buffer (W == 1 fast path)."""
        self._grow(n)
        return self._words[:n]

    def out(self, n: int):
        self._grow(n)
        return self._out[:n]

    def cursors(self, n: int):
        """``(cur, lanes, base)`` int32/int32/int64 views of length n."""
        self._grow(n)
        return self._cur[:n], self._lanes[:n], self._base[:n]


# ----------------------------------------------------------------------
# Descents
# ----------------------------------------------------------------------


def descend_numpy(program, words, out, scratch: KernelScratch | None):
    """Vectorized fused-program descent over word-packed headers.

    ``program`` is the compiled engine's kernel view (built by
    :meth:`repro.core.compiled.CompiledAPTree._init_kernel`); every
    iteration gathers each active lane's in-word shift and next node,
    and fully-sunk lanes are compacted away every ``_COMPACT_BLOCK``
    steps.  ``out`` is filled with atom ids and returned.
    """
    n = out.shape[0]
    if n == 0:
        return out
    width = program.width
    child = program.f_child
    shift_of = program.f_shift
    word_of = program.f_word
    atom = program.f_atom
    num_sinks = program.num_sinks
    if scratch is not None:
        cur, lanes, _base = scratch.cursors(n)
        cur[:] = program.f_root
        lanes[:] = _np.arange(n, dtype=_np.int32)
    else:
        cur = _np.full(n, program.f_root, dtype=_np.int32)
        lanes = _np.arange(n, dtype=_np.int32)
    if width == 1:
        hdr = words  # lanes start as arange(n): the packed array itself
        while True:
            for _ in range(_COMPACT_BLOCK):
                s = shift_of.take(cur)
                b = ((hdr >> s.astype(_np.uint64)) & 1).astype(_np.int32)
                cur = child.take(2 * cur + b)
            done = cur < num_sinks
            if done.any():
                out[lanes[done]] = atom.take(cur[done])
                keep = ~done
                if not keep.any():
                    break
                lanes = lanes[keep]
                cur = cur[keep]
                hdr = hdr[keep]
    else:
        flat = words.ravel()
        base = lanes.astype(_np.int64) * width
        while True:
            for _ in range(_COMPACT_BLOCK):
                w = word_of.take(cur)
                s = shift_of.take(cur)
                limbs = flat.take(base + w)
                b = ((limbs >> s.astype(_np.uint64)) & 1).astype(_np.int32)
                cur = child.take(2 * cur + b)
            done = cur < num_sinks
            if done.any():
                out[lanes[done]] = atom.take(cur[done])
                keep = ~done
                if not keep.any():
                    break
                lanes = lanes[keep]
                cur = cur[keep]
                base = base[keep]
    return out


def descend_native(program, words, out):
    """C-kernel descent: same arrays, per-packet scalar loop, no GIL.

    ``words`` and ``out`` must be C-contiguous (callers pack through
    :func:`pack_headers` / :class:`KernelScratch`, which guarantee it).
    """
    kernel = load_kernel()
    n = out.shape[0]
    kernel.classify_words(
        words,
        n,
        program.width,
        program.f_word,
        program.f_shift,
        program.f_child,
        program.f_atom,
        program.num_sinks,
        program.f_root,
        out,
    )
    return out
