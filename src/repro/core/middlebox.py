"""Packet header changes by middleboxes (Sections V-E and VII-G).

Middleboxes (NATs, proxies, ...) may rewrite headers, after which the
packet's downstream behavior is governed by its *new* atomic predicate.
The paper models three change types:

* **Type 1, deterministic on the header** -- the middlebox flow table
  stores, per entry, the rewrite *and* the precomputed atomic predicate of
  the rewritten header, so no re-classification is needed;
* **Type 2, deterministic on the payload** -- the rewrite is only known at
  query time, so AP Classifier must search the AP Tree again with the new
  header;
* **Type 3, probabilistic** -- like Type 2 but with several possible
  rewrites; the classifier reports every possible behavior with its
  probability.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Mapping, Sequence

from .behavior import (
    DROP_INPUT_ACL,
    DROP_NO_ROUTE,
    DROP_OUTPUT_ACL,
    STOP_LOOP,
    Behavior,
    TraceEdge,
    TraceNode,
)
from .classifier import APClassifier

__all__ = [
    "HeaderRewrite",
    "FlowEntry",
    "MiddleboxTable",
    "Middlebox",
    "MiddleboxAwareComputer",
    "PossibleBehavior",
    "DETERMINISTIC",
    "PAYLOAD_DEPENDENT",
    "PROBABILISTIC",
]

DETERMINISTIC = "deterministic"
PAYLOAD_DEPENDENT = "payload_dependent"
PROBABILISTIC = "probabilistic"


@dataclass(frozen=True)
class HeaderRewrite:
    """Force the bits in ``mask`` to ``value`` (e.g. a NAT address swap)."""

    mask: int
    value: int

    def __post_init__(self) -> None:
        if self.value & ~self.mask:
            raise ValueError("rewrite value has bits outside the mask")

    def apply(self, header: int) -> int:
        return (header & ~self.mask) | self.value

    @property
    def is_identity(self) -> bool:
        return self.mask == 0


@dataclass(frozen=True)
class RewriteBranch:
    """One possible outcome of a flow entry."""

    rewrite: HeaderRewrite
    probability: float = 1.0
    #: Precomputed atomic predicate of the rewritten header; only Type 1
    #: entries can know it ahead of time.
    new_atom: int | None = None


@dataclass(frozen=True)
class FlowEntry:
    """One middlebox flow-table entry (Section V-E).

    ``match_atoms`` plays the role of the entry's match fields: the set of
    atomic predicates whose packets the entry applies to (the paper builds
    these by grouping atomic predicates, Section VII-G).
    """

    match_atoms: frozenset[int]
    kind: str
    branches: tuple[RewriteBranch, ...]

    def __post_init__(self) -> None:
        if self.kind not in (DETERMINISTIC, PAYLOAD_DEPENDENT, PROBABILISTIC):
            raise ValueError(f"unknown flow entry kind {self.kind!r}")
        if not self.branches:
            raise ValueError("a flow entry needs at least one branch")
        if self.kind != PROBABILISTIC and len(self.branches) != 1:
            raise ValueError(f"{self.kind} entries must have exactly one branch")
        if self.kind == DETERMINISTIC and self.branches[0].new_atom is None:
            raise ValueError("deterministic entries must precompute new_atom")
        total = sum(branch.probability for branch in self.branches)
        if not math.isclose(total, 1.0, rel_tol=1e-9):
            raise ValueError(f"branch probabilities sum to {total}, expected 1")

    @classmethod
    def from_match(
        cls,
        classifier,
        match,
        kind: str,
        branches: tuple[RewriteBranch, ...],
    ) -> "FlowEntry":
        """Build an entry whose match fields are a rule-style ``Match``.

        The paper's flow tables carry match fields; the classifier
        compiles them to the atom-set form used at query time (the atoms
        intersecting the match), exactly like grouping atomic predicates
        into coarser predicates (Section VII-G).
        """
        atoms = classifier.atoms_matching(match)
        if not atoms:
            raise ValueError("match selects no packets; entry would be dead")
        return cls(match_atoms=atoms, kind=kind, branches=branches)


class MiddleboxTable:
    """First-match flow table over atomic predicates."""

    def __init__(self, entries: Sequence[FlowEntry] = ()) -> None:
        self._entries: list[FlowEntry] = list(entries)

    def append(self, entry: FlowEntry) -> None:
        self._entries.append(entry)

    def entry_for(self, atom_id: int) -> FlowEntry | None:
        for entry in self._entries:
            if atom_id in entry.match_atoms:
                return entry
        return None

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)


@dataclass
class Middlebox:
    """A header-modifying middlebox attached in front of one box.

    Packets entering the attachment box traverse the middlebox flow table
    before the box's own filters (as in the paper's Fig. 7 example).
    """

    name: str
    table: MiddleboxTable


@dataclass(frozen=True)
class PossibleBehavior:
    """One possible network-wide behavior with its probability."""

    probability: float
    behavior: Behavior
    tree_searches: int  # AP Tree re-searches forced by Type 2/3 changes


class MiddleboxAwareComputer:
    """Behavior computation in the presence of header-changing middleboxes.

    Wraps a built :class:`APClassifier`; ``middleboxes`` maps box names to
    the middlebox guarding that box's ingress.
    """

    def __init__(
        self,
        classifier: APClassifier,
        middleboxes: Mapping[str, "Middlebox | Sequence[Middlebox]"],
    ) -> None:
        self.classifier = classifier
        # Normalize to chains: a box may front several middleboxes in
        # sequence (firewall then IDS then proxy, the Section I example);
        # each processes the packet in order, possibly rewriting it.
        self.middleboxes: dict[str, tuple[Middlebox, ...]] = {}
        for box, value in middleboxes.items():
            if isinstance(value, Middlebox):
                self.middleboxes[box] = (value,)
            else:
                self.middleboxes[box] = tuple(value)

    def query(
        self, header: int, ingress_box: str, in_port: str | None = None
    ) -> list[PossibleBehavior]:
        """All possible behaviors of a packet, with probabilities.

        A single behavior (probability 1.0) unless some traversed flow
        entry is probabilistic.
        """
        atom_id = self.classifier.classify(header)
        outcomes = self._visit(atom_id, header, ingress_box, in_port, frozenset())
        return [
            PossibleBehavior(
                probability=probability,
                behavior=Behavior(
                    ingress_box=ingress_box, atom_id=atom_id, root=node
                ),
                tree_searches=searches,
            )
            for probability, searches, node in outcomes
        ]

    # ------------------------------------------------------------------
    # Recursive walk
    # ------------------------------------------------------------------

    def _options(
        self, box: str, atom_id: int, header: int
    ) -> list[tuple[float, int, int, int]]:
        """(probability, atom, header, extra tree searches) after the
        middlebox chain at ``box``, if any, has processed the packet."""
        chain = self.middleboxes.get(box)
        if not chain:
            return [(1.0, atom_id, header, 0)]
        options = [(1.0, atom_id, header, 0)]
        for middlebox in chain:
            options = [
                expanded
                for probability, atom, current, searches in options
                for expanded in self._apply_middlebox(
                    middlebox, probability, atom, current, searches
                )
            ]
        return options

    def _apply_middlebox(
        self,
        middlebox: Middlebox,
        probability: float,
        atom_id: int,
        header: int,
        searches: int,
    ) -> list[tuple[float, int, int, int]]:
        entry = middlebox.table.entry_for(atom_id)
        if entry is None:
            return [(probability, atom_id, header, searches)]
        options: list[tuple[float, int, int, int]] = []
        for branch in entry.branches:
            new_header = branch.rewrite.apply(header)
            if branch.new_atom is not None:
                options.append(
                    (probability * branch.probability, branch.new_atom,
                     new_header, searches)
                )
            else:
                # Type 2/3: the new atomic predicate is not precomputed;
                # search the AP Tree again with the rewritten header.
                new_atom = self.classifier.tree.classify(new_header)
                options.append(
                    (probability * branch.probability, new_atom,
                     new_header, searches + 1)
                )
        return options

    def _visit(
        self,
        atom_id: int,
        header: int,
        box: str,
        in_port: str | None,
        on_path: frozenset[str],
    ) -> list[tuple[float, int, TraceNode]]:
        """All (probability, tree_searches, trace) outcomes from ``box``."""
        dataplane = self.classifier.dataplane
        universe = self.classifier.universe
        topology = dataplane.network.topology
        outcomes: list[tuple[float, int, TraceNode]] = []

        for probability, atom, current_header, searches in self._options(
            box, atom_id, header
        ):
            if in_port is not None:
                acl_in = dataplane.input_acl_predicate(box, in_port)
                if acl_in is not None and not universe.contains(acl_in.pid, atom):
                    node = TraceNode(box=box, in_port=in_port, dropped=DROP_INPUT_ACL)
                    outcomes.append((probability, searches, node))
                    continue

            next_path = on_path | {box}
            # Each element below is the list of weighted alternatives for
            # one out-edge; a cartesian product combines the edges.
            edge_alternatives: list[list[tuple[float, int, TraceEdge]]] = []
            for entry in dataplane.forwarding_entries(box):
                if not universe.contains(entry.pid, atom):
                    continue
                acl_out = dataplane.output_acl_predicate(box, entry.port)
                if acl_out is not None and not universe.contains(acl_out.pid, atom):
                    edge = TraceEdge(out_port=entry.port, stopped=DROP_OUTPUT_ACL)
                    edge_alternatives.append([(1.0, 0, edge)])
                    continue
                host = topology.host_at(box, entry.port)
                if host is not None:
                    edge_alternatives.append(
                        [(1.0, 0, TraceEdge(out_port=entry.port, to_host=host))]
                    )
                    continue
                next_ref = topology.next_hop(box, entry.port)
                if next_ref is None:
                    edge_alternatives.append(
                        [(1.0, 0, TraceEdge(out_port=entry.port, stopped="egress"))]
                    )
                    continue
                if next_ref.box in next_path:
                    edge_alternatives.append(
                        [(1.0, 0, TraceEdge(out_port=entry.port, stopped=STOP_LOOP))]
                    )
                    continue
                child_outcomes = self._visit(
                    atom, current_header, next_ref.box, next_ref.port, next_path
                )
                edge_alternatives.append(
                    [
                        (child_prob, child_searches,
                         TraceEdge(out_port=entry.port, child=child_node))
                        for child_prob, child_searches, child_node in child_outcomes
                    ]
                )

            if not edge_alternatives:
                node = TraceNode(box=box, in_port=in_port, dropped=DROP_NO_ROUTE)
                outcomes.append((probability, searches, node))
                continue

            for combo in itertools.product(*edge_alternatives):
                combo_prob = probability
                combo_searches = searches
                edges = []
                for edge_prob, edge_searches, edge in combo:
                    combo_prob *= edge_prob
                    combo_searches += edge_searches
                    edges.append(edge)
                node = TraceNode(box=box, in_port=in_port, edges=edges)
                outcomes.append((combo_prob, combo_searches, node))
        return outcomes
