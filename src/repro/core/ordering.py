"""Predicate ordering strategies for AP Tree construction (Section V).

All strategies are expressed as ``choose(candidates, atoms)`` callbacks for
:func:`repro.core.aptree.build_ap_tree`:

* **fixed order** -- place predicates by a given global order (used for the
  Random / Best-from-Random baseline and for Quick-Ordering);
* **Quick-Ordering** (Section V-B) -- descending ``|R(p)|``, pushing
  predicates equal to a single atom toward the bottom;
* **OAPT** (Section V-C) -- at every subtree, a linear scan keeps a
  predicate not inferior to any other under the four-case pairwise
  superior/inferior relation (generalized to weighted atoms, Section V-D);
* **exhaustive optimum** -- the full ``F(Q, S)`` recursion of Section V-C,
  exponential, kept for tests and the ordering ablation bench.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

from .atomic import AtomicUniverse

__all__ = [
    "Chooser",
    "fixed_order_chooser",
    "quick_ordering",
    "oapt_chooser",
    "oapt_depth_costs",
    "oapt_survivor",
    "optimal_subtree_cost",
]

Chooser = Callable[[list[int], frozenset[int]], int]


def fixed_order_chooser(order: Sequence[int]) -> Chooser:
    """Always pick the candidate earliest in ``order``.

    With pruning, building by a fixed order is exactly the paper's
    level-by-level placement: a predicate that does not split the atoms of
    a subtree is skipped there.
    """
    rank = {pid: index for index, pid in enumerate(order)}

    def choose(candidates: list[int], atoms: frozenset[int]) -> int:
        return min(candidates, key=rank.__getitem__)

    return choose


def quick_ordering(universe: AtomicUniverse) -> list[int]:
    """Quick-Ordering: predicates by descending ``|R(p)|`` (Section V-B).

    Predicates equal to a single atomic predicate land at the bottom of
    the tree, where their guaranteed-leaf child costs the least depth.
    Ties break by pid for determinism.
    """
    return sorted(
        universe.predicate_ids(),
        key=lambda pid: (-len(universe.r(pid)), pid),
    )


def _weigher(
    weights: Mapping[int, float] | None,
) -> Callable[[frozenset[int]], float]:
    """Total weight of an atom set; cardinality when no weights given."""
    if weights is None:
        return lambda atoms: float(len(atoms))

    def weigh(atoms: frozenset[int]) -> float:
        return sum(weights.get(atom, 1.0) for atom in atoms)

    return weigh


def oapt_depth_costs(
    s_i: frozenset[int],
    s_j: frozenset[int],
    atom_count: int,
    weight_all: float,
    w_i: float,
    w_j: float,
) -> tuple[float, float]:
    """Immediate added depth when i is placed above j, and vice versa.

    With quadrants A = Si∩Sj, B = Si∖Sj, C = Sj∖Si, D = S∖(Si∪Sj):
    placing ``pi`` first charges ``w(Si)`` if its true-branch still
    splits (A and B non-empty) plus ``w(S∖Si)`` if its false-branch
    still splits (C and D non-empty); symmetrically for ``pj``.  The
    four cases of Fig. 6 are instances of this formula.  ``atom_count``
    is ``|S|``; ``w_i``/``w_j`` are the candidates' weights within ``S``.
    """
    a = s_i & s_j
    b = s_i - s_j
    c = s_j - s_i
    has_d = len(s_i | s_j) < atom_count
    cost_i = 0.0
    cost_j = 0.0
    if a and b:
        cost_i += w_i
    if c and has_d:
        cost_i += weight_all - w_i
    if a and c:
        cost_j += w_j
    if b and has_d:
        cost_j += weight_all - w_j
    return cost_i, cost_j


def oapt_survivor(
    candidates: Sequence[int],
    sets: Mapping[int, frozenset[int]],
    atom_count: int,
    weight_all: float,
    weigh: Callable[[frozenset[int]], float],
) -> int:
    """One OAPT linear scan: the candidate never found inferior.

    ``sets[pid]`` must already be restricted to the current atom set.
    Module-level (rather than a closure inside :func:`oapt_chooser`) so
    parallel construction can run the same scan on candidate chunks in
    worker processes and again over the chunk survivors -- the relation is
    acyclic, so a survivor-of-survivors is still not inferior to anyone.
    """
    best = candidates[0]
    best_set = sets[best]
    best_weight = weigh(best_set)
    for pid in candidates[1:]:
        challenger = sets[pid]
        challenger_weight = weigh(challenger)
        cost_challenger, cost_best = oapt_depth_costs(
            challenger, best_set, atom_count, weight_all,
            challenger_weight, best_weight,
        )
        if cost_challenger < cost_best:
            best = pid
            best_set = challenger
            best_weight = challenger_weight
    return best


def oapt_chooser(
    universe: AtomicUniverse,
    weights: Mapping[int, float] | None = None,
) -> Chooser:
    """The OAPT selection rule (Section V-C, weighted per Section V-D).

    For the current atom set ``S``, a linear scan keeps a predicate
    ``ps`` never found inferior: for each candidate ``pi``, if ``pi`` is
    superior to ``ps`` then ``ps := pi``.  The pairwise relation compares
    the *immediate* depth contribution of placing one predicate above the
    other, case-split on how the two predicates overlap within ``S``
    (Fig. 6); the relation is acyclic, so the survivor of one scan is not
    inferior to any candidate.
    """
    weigh = _weigher(weights)
    r_cache = {pid: universe.r(pid) for pid in universe.predicate_ids()}

    def choose(candidates: list[int], atoms: frozenset[int]) -> int:
        sets = {pid: atoms & r_cache[pid] for pid in candidates}
        return oapt_survivor(candidates, sets, len(atoms), weigh(atoms), weigh)

    return choose


def optimal_subtree_cost(
    universe: AtomicUniverse,
    pids: Sequence[int] | None = None,
    weights: Mapping[int, float] | None = None,
) -> tuple[float, dict[frozenset[int], int]]:
    """Exact minimal total leaf depth ``F(P, A)`` by exhaustive recursion.

    Exponential in the number of predicates -- usable only on small inputs
    (tests, the ordering ablation).  Returns the optimal cost and, for
    reconstruction, the chosen root predicate per atom set encountered.
    """
    weigh = _weigher(weights)
    pid_list = list(universe.predicate_ids()) if pids is None else list(pids)
    r_cache = {pid: universe.r(pid) for pid in pid_list}
    memo: dict[frozenset[int], float] = {}
    choice: dict[frozenset[int], int] = {}

    def f(atoms: frozenset[int]) -> float:
        if len(atoms) <= 1:
            return 0.0
        cached = memo.get(atoms)
        if cached is not None:
            return cached
        best_cost = float("inf")
        best_pid = -1
        for pid in pid_list:
            inside = atoms & r_cache[pid]
            if not inside or inside == atoms:
                continue  # pruned here: no depth contribution, no split
            cost = weigh(atoms) + f(inside) + f(atoms - inside)
            if cost < best_cost:
                best_cost = cost
                best_pid = pid
        if best_pid < 0:
            raise ValueError("no predicate splits a multi-atom set")
        memo[atoms] = best_cost
        choice[atoms] = best_pid
        return best_cost

    total = f(universe.atom_ids())
    return total, choice
