"""Atom-set propagation: AP Verifier's reachability algorithm.

Yang & Lam's AP Verifier computes network reachability by propagating
*sets of atomic predicate ids* along the port graph: at each filter the
set is intersected with the filter's ``R`` set; a fixpoint is reached
because sets only shrink along a path and each box accumulates what it
has already seen. One propagation from an ingress yields the reachable
atom set at *every* box and host simultaneously -- much cheaper than one
stage-2 walk per atom when the whole network view is needed.

This module implements that algorithm over our :class:`DataPlane` /
:class:`AtomicUniverse`. It is both a faithful AP Verifier reproduction
(the tool the paper builds on) and an independent oracle: tests check it
against :class:`repro.core.verifier.NetworkVerifier`'s per-atom sweeps.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from ..network.dataplane import DataPlane
from .atomic import AtomicUniverse

__all__ = ["AtomPropagation", "PropagationResult"]


@dataclass
class PropagationResult:
    """Everything one propagation pass discovered."""

    ingress_box: str
    #: box -> atoms that can appear at that box (i.e. traverse it).
    atoms_at_box: dict[str, frozenset[int]]
    #: host -> atoms delivered to it.
    atoms_at_host: dict[str, frozenset[int]]
    #: (box, out_port) -> atoms forwarded out of that port.
    atoms_on_port: dict[tuple[str, str], frozenset[int]] = field(
        default_factory=dict
    )

    def reaches(self, host: str, atom_id: int) -> bool:
        return atom_id in self.atoms_at_host.get(host, frozenset())

    def traverses(self, box: str, atom_id: int) -> bool:
        return atom_id in self.atoms_at_box.get(box, frozenset())


class AtomPropagation:
    """Whole-network reachability by one BFS over atom sets."""

    def __init__(self, dataplane: DataPlane, universe: AtomicUniverse) -> None:
        self.dataplane = dataplane
        self.universe = universe
        self.topology = dataplane.network.topology

    @classmethod
    def from_classifier(cls, classifier) -> "AtomPropagation":
        return cls(classifier.dataplane, classifier.universe)

    def propagate(
        self, ingress_box: str, in_port: str | None = None
    ) -> PropagationResult:
        """Propagate the full atom universe injected at ``ingress_box``.

        The worklist carries ``(box, in_port, atoms)`` items; a box's
        accumulated set only grows, and an item only enqueues the atoms
        not yet seen there, so termination is immediate even with
        forwarding loops (an atom going in circles adds nothing new).
        """
        if ingress_box not in self.dataplane.network.boxes:
            raise KeyError(f"unknown ingress box {ingress_box!r}")
        universe = self.universe
        all_atoms = frozenset(universe.atom_ids())

        seen_at_box: dict[str, set[int]] = {}
        at_host: dict[str, set[int]] = {}
        on_port: dict[tuple[str, str], set[int]] = {}

        start = all_atoms
        if in_port is not None:
            acl_in = self.dataplane.input_acl_predicate(ingress_box, in_port)
            if acl_in is not None:
                start = start & universe.r(acl_in.pid)

        queue: deque[tuple[str, frozenset[int]]] = deque()
        queue.append((ingress_box, frozenset(start)))

        while queue:
            box, atoms = queue.popleft()
            already = seen_at_box.setdefault(box, set())
            fresh = atoms - already
            if not fresh:
                continue
            already |= fresh
            for entry in self.dataplane.forwarding_entries(box):
                forwarded = fresh & universe.r(entry.pid)
                if not forwarded:
                    continue
                acl_out = self.dataplane.output_acl_predicate(box, entry.port)
                if acl_out is not None:
                    forwarded = forwarded & universe.r(acl_out.pid)
                    if not forwarded:
                        continue
                port_key = (box, entry.port)
                on_port.setdefault(port_key, set()).update(forwarded)
                host = self.topology.host_at(box, entry.port)
                if host is not None:
                    at_host.setdefault(host, set()).update(forwarded)
                    continue
                next_ref = self.topology.next_hop(box, entry.port)
                if next_ref is None:
                    continue  # leaves the modeled network
                arriving = forwarded
                acl_in = self.dataplane.input_acl_predicate(
                    next_ref.box, next_ref.port
                )
                if acl_in is not None:
                    arriving = arriving & universe.r(acl_in.pid)
                    if not arriving:
                        continue
                queue.append((next_ref.box, frozenset(arriving)))

        return PropagationResult(
            ingress_box=ingress_box,
            atoms_at_box={
                box: frozenset(atoms) for box, atoms in seen_at_box.items()
            },
            atoms_at_host={
                host: frozenset(atoms) for host, atoms in at_host.items()
            },
            atoms_on_port={
                port: frozenset(atoms) for port, atoms in on_port.items()
            },
        )

    # ------------------------------------------------------------------
    # Convenience wrappers (AP Verifier's query forms)
    # ------------------------------------------------------------------

    def reachable_atoms(self, ingress_box: str, host: str) -> frozenset[int]:
        return self.propagate(ingress_box).atoms_at_host.get(host, frozenset())

    def all_pairs_host_reachability(self) -> dict[tuple[str, str], frozenset[int]]:
        """(ingress box, host) -> delivered atoms, one propagation per box."""
        result: dict[tuple[str, str], frozenset[int]] = {}
        hosts = [host for _, host in self.topology.hosts()]
        for ingress in sorted(self.dataplane.network.boxes):
            outcome = self.propagate(ingress)
            for host in hosts:
                result[(ingress, host)] = outcome.atoms_at_host.get(
                    host, frozenset()
                )
        return result
