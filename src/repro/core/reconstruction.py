"""Parallel AP Tree reconstruction under a dynamic data plane (Section VI-B).

The paper runs two processes on separate cores: a *query process* that
answers queries and applies real-time updates, and a *reconstruction
process* that periodically rebuilds an optimized tree; updates arriving
during a rebuild are replayed onto the new tree before it replaces the old
one (Fig. 8).

This module reproduces that pipeline as a discrete-event simulation whose
costs are *measured* on the host: each update and each rebuild is actually
executed and timed, and query throughput between events is derived from
timed sample queries on the current structure.  That makes Fig. 14's
sawtooth (throughput sags as updates accumulate, snaps back at each swap)
reproducible on any machine, with real predicates and real tree surgery --
only the interleaving clock is simulated.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, Sequence

from ..bdd import Function
from ..network.dataplane import LabeledPredicate
from .atomic import AtomicUniverse
from .compiled import CompiledAPTree, FlatBDDSet
from .construction import build_tree
from .incremental import IncrementalEngine
from .update import UpdateEngine

__all__ = [
    "UpdateEvent",
    "poisson_update_schedule",
    "ThroughputSample",
    "DynamicSimulation",
    "QueryCostModel",
]


@dataclass(frozen=True)
class UpdateEvent:
    """One scheduled data plane change: add or delete a predicate."""

    at: float
    kind: str  # "add" | "delete"

    def __post_init__(self) -> None:
        if self.kind not in ("add", "delete"):
            raise ValueError(f"unknown update kind {self.kind!r}")


def poisson_update_schedule(
    rate_per_s: float, duration_s: float, rng: random.Random
) -> list[UpdateEvent]:
    """Poisson arrivals with equal numbers of additions and deletions.

    Matches the Section VII-E setup: inter-arrival times are exponential
    with mean ``1/rate``; each event is a coin-flip add or delete.
    """
    events: list[UpdateEvent] = []
    now = 0.0
    while True:
        now += rng.expovariate(rate_per_s)
        if now >= duration_s:
            break
        kind = "add" if rng.random() < 0.5 else "delete"
        events.append(UpdateEvent(at=now, kind=kind))
    return events


@dataclass(frozen=True)
class ThroughputSample:
    """Throughput observed over one simulated time bucket."""

    time_s: float
    throughput_qps: float
    event: str = ""  # annotation: "swap", "rebuild_start", ...


class QueryCostModel:
    """Measures the per-query cost of a classify function by timing.

    Costs are re-measured only when the underlying structure changes;
    between changes the cached cost is reused, keeping simulation runtime
    linear in the number of events rather than buckets.
    """

    def __init__(self, sample_headers: Sequence[int], repeat: int = 1) -> None:
        if not sample_headers:
            raise ValueError("need at least one sample header")
        self.sample_headers = list(sample_headers)
        self.repeat = repeat

    def measure(self, classify: Callable[[int], int]) -> float:
        """Average seconds per query for ``classify``."""
        headers = self.sample_headers
        started = time.perf_counter()
        for _ in range(self.repeat):
            for header in headers:
                classify(header)
        elapsed = time.perf_counter() - started
        return elapsed / (len(headers) * self.repeat)

    def measure_batch(self, classify_batch: Callable[[Sequence[int]], object]) -> float:
        """Average seconds per query for a whole-batch classify function.

        Counterpart of :meth:`measure` for the compiled engine, whose
        throughput comes from amortizing work across a batch rather than
        from per-call dispatch.
        """
        headers = self.sample_headers
        started = time.perf_counter()
        for _ in range(self.repeat):
            classify_batch(headers)
        elapsed = time.perf_counter() - started
        return elapsed / (len(headers) * self.repeat)


class _QueryProcess:
    """The live (universe, tree/scanner) pair serving queries."""

    def __init__(
        self, universe: AtomicUniverse, tree, maintenance: str = "tombstone"
    ) -> None:
        self.universe = universe
        self.tree = tree  # None for scan-based methods (APLinear/PScan)
        if maintenance == "incremental":
            self.engine: UpdateEngine = IncrementalEngine(universe, tree)
        else:
            self.engine = UpdateEngine(universe, tree)


class DynamicSimulation:
    """Fig. 14 driver: queries + Poisson updates + periodic reconstruction.

    ``method`` selects what the query process runs:

    * ``"apclassifier"`` -- AP Tree search with real-time updates and a
      reconstruction process rebuilding every ``reconstruct_interval_s``;
    * ``"aplinear"`` -- linear scan over atomic-predicate BDDs (kept exact
      by the same universe updates; no tree, nothing to reconstruct);
    * ``"pscan"`` -- scan over all live predicate BDDs.

    ``engine`` selects how query cost is measured:

    * ``"interpreted"`` -- per-header calls on the live structure
      (pointer-chasing tree walk / BDD scans);
    * ``"compiled"`` -- the structure is flattened
      (:class:`~repro.core.compiled.CompiledAPTree` for the tree,
      :class:`~repro.core.compiled.FlatBDDSet` for the scan baselines)
      and cost comes from the batched bit-parallel path.  Compile time
      after an update is charged to the query process (the artifact went
      stale and had to be rebuilt inline); compile time at a swap is
      charged to the reconstruction core, like the tree build itself
      (Section VI-B's process split).

    ``reconstruction`` selects where rebuilds execute:

    * ``"inline"`` -- the rebuild runs in this process and its *measured*
      wall time advances the simulated completion clock (the original
      discrete-event treatment);
    * ``"process"`` -- rebuilds run in a real background worker
      (:class:`repro.parallel.ReconstructionProcess`): the predicate
      snapshot is serialized out, the universe and tree come back
      serialized, and the swap happens in whichever bucket the worker's
      result actually arrives -- the two-process loop of Fig. 8 executed
      for real.

    ``maintenance`` selects the query process's update engine:
    ``"tombstone"`` is Section VI-A's grow-only discipline (deletions
    leave dead atoms for the next reconstruction to coalesce);
    ``"incremental"`` runs :class:`repro.core.incremental.IncrementalEngine`,
    which merges atoms and splices the tree locally on deletion so the
    partition stays minimal between reconstructions.
    """

    METHODS = ("apclassifier", "aplinear", "pscan")
    ENGINES = ("interpreted", "compiled")
    RECONSTRUCTIONS = ("inline", "process")
    MAINTENANCE = ("tombstone", "incremental")

    def __init__(
        self,
        predicates: Sequence[LabeledPredicate],
        initial_count: int,
        method: str = "apclassifier",
        strategy: str = "oapt",
        reconstruct_interval_s: float = 0.4,
        bucket_s: float = 0.05,
        rng: random.Random | None = None,
        cost_samples: int = 200,
        engine: str = "interpreted",
        backend: str | None = None,
        recorder=None,
        reconstruction: str = "inline",
        maintenance: str = "tombstone",
    ) -> None:
        if method not in self.METHODS:
            raise ValueError(f"unknown method {method!r}")
        if engine not in self.ENGINES:
            raise ValueError(f"unknown engine {engine!r}")
        if reconstruction not in self.RECONSTRUCTIONS:
            raise ValueError(f"unknown reconstruction mode {reconstruction!r}")
        if maintenance not in self.MAINTENANCE:
            raise ValueError(f"unknown maintenance mode {maintenance!r}")
        if not 0 < initial_count <= len(predicates):
            raise ValueError("initial_count out of range")
        if reconstruct_interval_s < bucket_s:
            raise ValueError(
                "reconstruct_interval_s must be >= bucket_s (at most one "
                "rebuild can be triggered per simulation bucket)"
            )
        self.method = method
        self.engine = engine
        self.backend = backend
        self._compile_spent_s = 0.0
        self.strategy = strategy
        self.reconstruct_interval_s = reconstruct_interval_s
        self.bucket_s = bucket_s
        self.rng = rng if rng is not None else random.Random(0)
        self.cost_samples = cost_samples
        #: Optional :class:`repro.obs.Recorder`; the simulation mirrors
        #: its throughput timeline into ``recorder.timeline`` and counts
        #: rebuild/swap events under ``recorder.updates``.
        self.recorder = recorder

        pool = list(predicates)
        self.rng.shuffle(pool)
        self._live: dict[int, Function] = {
            lp.pid: lp.fn for lp in pool[:initial_count]
        }
        self._reserve: list[tuple[int, Function]] = [
            (lp.pid, lp.fn) for lp in pool[initial_count:]
        ]
        self.manager = pool[0].fn.manager
        self._next_synthetic_pid = 1 + max(lp.pid for lp in pool)
        self.maintenance = maintenance
        self._process = self._build_process()
        self._staged_process: _QueryProcess | None = None
        # Updates applied while a rebuild is in flight, queued for replay
        # onto the staged tree.  ``("add", labeled)`` entries carry the
        # original LabeledPredicate (not a re-fabricated one) so the
        # replayed universe matches a direct build field-for-field.
        # Instance state (not a run() local) so a process-mode rebuild
        # that outlives one run() call still gets its replay at the swap
        # in a follow-on call.
        self._pending_during_rebuild: list[
            tuple[str, LabeledPredicate | int]
        ] = []
        self.reconstruction = reconstruction
        self._recon = None
        if reconstruction == "process" and method == "apclassifier":
            # Imported lazily: repro.parallel imports repro.core.
            from ..parallel import ReconstructionProcess

            self._recon = ReconstructionProcess(
                self.manager, strategy=strategy, recorder=recorder
            )

    # ------------------------------------------------------------------
    # Structure management
    # ------------------------------------------------------------------

    def _live_labeled(self) -> list[LabeledPredicate]:
        return [
            LabeledPredicate(pid, "forward", "sim", "sim", fn)
            for pid, fn in sorted(self._live.items())
        ]

    def _build_process(self) -> _QueryProcess:
        universe = AtomicUniverse.compute(self.manager, self._live_labeled())
        tree = None
        if self.method == "apclassifier":
            tree = build_tree(universe, strategy=self.strategy, rng=self.rng).tree
        return _QueryProcess(universe, tree, self.maintenance)

    def _classify_fn(self, process: _QueryProcess) -> Callable[[int], int]:
        if self.method == "apclassifier":
            assert process.tree is not None
            return process.tree.classify
        if self.method == "aplinear":
            return process.universe.classify

        live = self._live

        def pscan(header: int) -> int:
            # PScan has no atom ids; fold the predicate verdict vector so
            # the work (evaluate every predicate) is what gets timed.
            verdict = 0
            for fn in live.values():
                verdict = (verdict << 1) | fn.evaluate(header)
            return verdict

        return pscan

    def _batch_fn(
        self, process: _QueryProcess
    ) -> Callable[[Sequence[int]], object]:
        """Flatten the process's structure; return its batch classifier.

        Compile wall time accrues to ``self._compile_spent_s`` so the
        caller can decide which core to charge it to (see class docs).
        """
        started = time.perf_counter()
        if self.method == "apclassifier":
            assert process.tree is not None
            compiled = CompiledAPTree.compile(process.tree, backend=self.backend)
            batch: Callable[[Sequence[int]], object] = compiled.classify_batch
        elif self.method == "aplinear":
            atoms = process.universe.atoms()
            flat = FlatBDDSet.compile(
                self.manager,
                [atoms[atom_id].node for atom_id in atoms],
                backend=self.backend,
            )
            batch = flat.first_true_batch
        else:  # pscan: the per-query work is one verdict per live predicate
            flat = FlatBDDSet.compile(
                self.manager,
                [fn.node for fn in self._live.values()],
                backend=self.backend,
            )
            batch = flat.truth_bits_batch
        self._compile_spent_s += time.perf_counter() - started
        return batch

    def _measure_cost(
        self, process: _QueryProcess, cost_model: QueryCostModel
    ) -> float:
        """Seconds per query on the current structure, engine-appropriate."""
        if self.engine == "compiled":
            return cost_model.measure_batch(self._batch_fn(process))
        return cost_model.measure(self._classify_fn(process))

    def _take_compile_time(self) -> float:
        """Drain and return compile seconds accrued since the last drain."""
        spent = self._compile_spent_s
        self._compile_spent_s = 0.0
        return spent

    def _sample_headers(self, process: _QueryProcess) -> list[int]:
        atoms = list(process.universe.atoms().values())
        headers = []
        for _ in range(self.cost_samples):
            atom = self.rng.choice(atoms)
            headers.append(atom.random_sat(self.rng))
        return headers

    # ------------------------------------------------------------------
    # Event application (real work, timed)
    # ------------------------------------------------------------------

    def _pick_update(self, kind: str) -> tuple[str, LabeledPredicate | int]:
        """Choose what to add/delete; falls back when a side is exhausted.

        Additions come back as the full :class:`LabeledPredicate` so the
        same object both updates the live process and rides the pending
        journal into :meth:`UpdateEngine.replay` -- replayed and direct
        builds see identical label metadata.
        """
        if kind == "add" and not self._reserve:
            kind = "delete"
        if kind == "delete" and len(self._live) <= 1:
            kind = "add"
        if kind == "add":
            pid, fn = self._reserve.pop(self.rng.randrange(len(self._reserve)))
            # Re-mint under a fresh pid: the same predicate may have been
            # added and deleted before, and universes never reuse pids.
            new_pid = self._next_synthetic_pid
            self._next_synthetic_pid += 1
            return "add", LabeledPredicate(new_pid, "forward", "sim", "sim", fn)
        pid = self.rng.choice(sorted(self._live))
        return "delete", pid

    def _apply_update(
        self, process: _QueryProcess, kind: str, payload: LabeledPredicate | int
    ) -> float:
        started = time.perf_counter()
        if kind == "add":
            assert isinstance(payload, LabeledPredicate)
            self._live[payload.pid] = payload.fn
            process.engine.add_predicate(payload)
        else:
            assert isinstance(payload, int)
            original = self._live.pop(payload)
            self._reserve.append((payload, original))
            process.engine.remove_predicate(payload)
        return time.perf_counter() - started

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def run(
        self, duration_s: float, update_rate_per_s: float
    ) -> list[ThroughputSample]:
        """Simulate ``duration_s`` seconds; returns the throughput timeline.

        Updates arrive as a Poisson process at ``update_rate_per_s``;
        each :class:`ThroughputSample` covers one ``bucket_s`` bucket
        and carries the bucket's query throughput plus the event that
        landed in it (``"update"``, ``"reconstruct"``, ``"swap"``) --
        the Fig. 14 sawtooth is read straight off this list.
        """
        events = poisson_update_schedule(update_rate_per_s, duration_s, self.rng)
        cost_model = QueryCostModel(self._sample_headers(self._process))
        per_query = self._measure_cost(self._process, cost_model)
        self._take_compile_time()  # initial compile predates the clock

        samples: list[ThroughputSample] = []
        event_index = 0
        rebuild_at = self.reconstruct_interval_s
        rebuild_done_at = float("inf")
        # A process-mode rebuild races real wall time, so it can outlive
        # one run() call: pick its in-flight state (and the updates
        # queued for replay) back up instead of double-submitting.
        in_flight = self._recon is not None and self._recon.busy
        pending_during_rebuild = self._pending_during_rebuild
        now = 0.0

        while now < duration_s:
            bucket_end = min(now + self.bucket_s, duration_s)
            update_time = 0.0
            annotation = ""

            # Reconstruction trigger.  Inline mode builds here and charges
            # the measured wall time to the rebuild clock only, not to the
            # query process; process mode ships the snapshot to the worker
            # and carries on.  A rebuild still in flight is never
            # re-triggered -- the next interval tick finds it done first.
            if (
                rebuild_at <= bucket_end
                and self.method == "apclassifier"
                and not in_flight
            ):
                if self._recon is not None:
                    self._recon.submit(self._live_labeled())
                else:
                    started = time.perf_counter()
                    self._staged_process = self._build_process()
                    build_time = time.perf_counter() - started
                    rebuild_done_at = rebuild_at + build_time
                rebuild_at += self.reconstruct_interval_s
                in_flight = True
                pending_during_rebuild = []
                annotation = "rebuild_start"
                if self.recorder is not None:
                    self.recorder.updates.rebuilds += 1

            # Apply due update events to the live process (and queue them
            # for the staged tree if a rebuild is in flight).
            while event_index < len(events) and events[event_index].at <= bucket_end:
                event = events[event_index]
                event_index += 1
                kind, payload = self._pick_update(event.kind)
                update_time += self._apply_update(self._process, kind, payload)
                if in_flight:
                    pending_during_rebuild.append((kind, payload))

            # Rebuild completion: inline mode completes when the simulated
            # clock passes the measured build time; process mode completes
            # when the worker's result has actually arrived on the pipe.
            done = False
            if in_flight and self.method == "apclassifier":
                if self._recon is not None:
                    if self._recon.poll():
                        universe, tree, _ = self._recon.receive()
                        self._staged_process = _QueryProcess(
                            universe, tree, self.maintenance
                        )
                        done = True
                elif rebuild_done_at <= bucket_end:
                    done = True

            # Replay queued updates onto the new tree, then swap (Fig. 8).
            if done:
                staged = self._staged_process
                assert staged is not None
                replayed = staged.engine.replay(pending_during_rebuild)
                # The staged engine has no recorder of its own (only the
                # live process is observed), so credit the replays here.
                if self.recorder is not None:
                    self.recorder.updates.replayed += replayed
                pending_during_rebuild = []
                self._process = staged
                self._staged_process = None
                rebuild_done_at = float("inf")
                in_flight = False
                annotation = "swap"
                cost_model = QueryCostModel(self._sample_headers(self._process))
                per_query = self._measure_cost(self._process, cost_model)
                # Compiling the fresh tree rides on the reconstruction
                # core, like the build itself: don't charge the queries.
                self._take_compile_time()
            elif update_time > 0:
                # Structure changed: re-measure the per-query cost.  In
                # compiled mode the update stales the artifact, so the
                # inline recompile is paid by the query process.
                per_query = self._measure_cost(self._process, cost_model)
                update_time += self._take_compile_time()

            available = max((bucket_end - now) - update_time, 0.0)
            throughput = available / per_query / (bucket_end - now)
            samples.append(
                ThroughputSample(
                    time_s=bucket_end, throughput_qps=throughput, event=annotation
                )
            )
            if self.recorder is not None:
                self.recorder.record_timeline_sample(
                    time_s=bucket_end,
                    throughput_qps=throughput,
                    event=annotation,
                )
            now = bucket_end
        # A process-mode rebuild still in flight when simulated time runs
        # out stays in flight: a follow-on run() picks it up (see the
        # ``in_flight`` initialization above) and swaps it in with the
        # queued updates replayed, instead of discarding the worker's
        # result.  close() copes with a still-busy worker.
        self._pending_during_rebuild = pending_during_rebuild
        return samples

    def close(self) -> None:
        """Shut down the reconstruction worker, if one is running."""
        recon = self._recon
        self._recon = None
        if recon is not None:
            recon.close()

    def __enter__(self) -> "DynamicSimulation":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
