"""Whole-classifier snapshots: warm restarts without recomputation.

Computing atomic predicates and building the AP Tree is the expensive part
of bringing AP Classifier up (Fig. 11); the query structures themselves
are tiny (§VII-B). A controller that restarts -- or a standby replica --
can therefore load a snapshot instead of recomputing: this module
serializes the network, the atoms, the ``R`` mapping, and the tree to one
JSON document and restores a ready-to-serve classifier from it.

On load the network is recompiled to predicates (cheap and deterministic)
and every stored predicate function is checked against the recompiled one
by BDD node identity -- a stale snapshot against a changed network fails
loudly instead of answering queries wrong.

.. deprecated::
    ``save_classifier``/``load_classifier`` are thin shims now; call
    :mod:`repro.persist` instead (``persist.classifier_to_json`` /
    ``persist.classifier_from_json`` for the string form, or
    ``persist.save``/``persist.load`` for files, which also speak the
    binary artifact format).
"""

from __future__ import annotations

import json
import warnings

from ..bdd.serialize import dump_node, load_node
from ..network.dataplane import DataPlane
from ..network.serialize import network_from_json, network_to_json
from .aptree import APTree, APTreeNode
from .atomic import AtomicUniverse
from .classifier import APClassifier

__all__ = ["save_classifier", "load_classifier", "SnapshotMismatch"]

FORMAT_VERSION = 1


class SnapshotMismatch(ValueError):
    """The snapshot does not correspond to the recompiled network."""


def _dump_tree(node: APTreeNode) -> list:
    if node.is_leaf:
        return ["L", node.atom_id]
    return ["N", node.pid, _dump_tree(node.low), _dump_tree(node.high)]


def _load_tree(
    payload: list, pid_map: dict[int, int], fn_nodes: dict[int, int]
) -> APTreeNode:
    if payload[0] == "L":
        return APTreeNode.leaf(payload[1])
    _, stored_pid, low, high = payload
    pid = pid_map[stored_pid]
    return APTreeNode.internal(
        pid,
        fn_nodes[pid],
        _load_tree(low, pid_map, fn_nodes),
        _load_tree(high, pid_map, fn_nodes),
    )


def save_classifier(classifier: APClassifier) -> str:
    """Deprecated shim; use repro.persist (``classifier_to_json``)."""
    warnings.warn(
        "save_classifier is deprecated; use repro.persist"
        " (persist.classifier_to_json, or persist.save for files)",
        DeprecationWarning,
        stacklevel=2,
    )
    return _save_json(classifier)


def load_classifier(text: str) -> APClassifier:
    """Deprecated shim; use repro.persist (``classifier_from_json``)."""
    warnings.warn(
        "load_classifier is deprecated; use repro.persist"
        " (persist.classifier_from_json, or persist.load for files)",
        DeprecationWarning,
        stacklevel=2,
    )
    return _load_json(text)


def _save_json(classifier: APClassifier) -> str:
    """Serialize a built classifier to a JSON string."""
    manager = classifier.dataplane.manager
    universe = classifier.universe
    payload = {
        "version": FORMAT_VERSION,
        "strategy": classifier.strategy,
        "network": json.loads(network_to_json(classifier.dataplane.network)),
        "predicates": [
            {
                "pid": pid,
                # The slot is the stable identity across serialization
                # (pids depend on compile order).
                "slot": [
                    classifier.dataplane.predicate(pid).kind,
                    classifier.dataplane.predicate(pid).box,
                    classifier.dataplane.predicate(pid).port,
                ],
                "bdd": dump_node(manager, universe.predicate_fn(pid).node),
                "r": sorted(universe.r(pid)),
            }
            for pid in universe.predicate_ids()
        ],
        "atoms": [
            {"atom_id": atom_id, "bdd": dump_node(manager, fn.node)}
            for atom_id, fn in sorted(universe.atoms().items())
        ],
        "tree": _dump_tree(classifier.tree.root),
    }
    return json.dumps(payload)


def _load_json(text: str) -> APClassifier:
    """Restore a classifier from :func:`_save_json` output.

    Raises :class:`SnapshotMismatch` when the stored predicates disagree
    with the ones recompiled from the stored network (which would mean
    the snapshot was edited or is corrupt).
    """
    payload = json.loads(text)
    if payload.get("version") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported classifier snapshot version {payload.get('version')!r}"
        )
    network = network_from_json(json.dumps(payload["network"]))
    dataplane = DataPlane(network)
    manager = dataplane.manager

    from ..bdd.function import Function

    # Match stored predicates to recompiled ones by slot (pids depend on
    # compile order, which serialization normalizes).
    live_by_slot = {slot: lp for slot, lp in dataplane.iter_slots()}
    pid_map: dict[int, int] = {}
    stored_fns: dict[int, Function] = {}
    stored_r: dict[int, set[int]] = {}
    for entry in payload["predicates"]:
        slot = tuple(entry["slot"])
        node = load_node(manager, entry["bdd"])
        live = live_by_slot.get(slot)
        if live is None or live.fn.node != node:
            raise SnapshotMismatch(
                f"stored predicate at slot {slot} does not match the "
                "recompiled network (stale or corrupted snapshot)"
            )
        pid_map[entry["pid"]] = live.pid
        stored_fns[live.pid] = Function(manager, node)
        stored_r[live.pid] = set(entry["r"])
    if len(stored_fns) != len(live_by_slot):
        raise SnapshotMismatch(
            "snapshot and recompiled network disagree on the predicate set"
        )

    # Rebuild the universe without refinement.
    universe = AtomicUniverse(manager)
    atoms: dict[int, Function] = {}
    for entry in payload["atoms"]:
        atoms[entry["atom_id"]] = Function(
            manager, load_node(manager, entry["bdd"])
        )
    universe._atoms = dict(atoms)
    universe._next_atom_id = max(atoms, default=-1) + 1
    universe._pred_fns = dict(stored_fns)
    universe._r = {pid: set(r) for pid, r in stored_r.items()}
    universe._containing = {atom_id: set() for atom_id in atoms}
    for pid, r_set in stored_r.items():
        for atom_id in r_set:
            if atom_id not in universe._containing:
                raise SnapshotMismatch(
                    f"R({pid}) references unknown atom {atom_id}"
                )
            universe._containing[atom_id].add(pid)

    fn_nodes = {pid: fn.node for pid, fn in stored_fns.items()}
    tree = APTree(manager, _load_tree(payload["tree"], pid_map, fn_nodes))
    if set(tree.leaf_depths()) != set(atoms):
        raise SnapshotMismatch("tree leaves do not cover the stored atoms")

    return APClassifier(
        dataplane, universe, tree, strategy=payload.get("strategy", "oapt")
    )
