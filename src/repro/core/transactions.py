"""Verify-then-commit update transactions.

Section I's verification workflow: "Prior to data plane updates, the
controller needs to verify that the data plane, with the new updates, can
forward the packets correctly and comply with the flow properties."

A :class:`UpdateTransaction` applies a batch of rule changes to the live
classifier immediately (updates are cheap and exactly reversible), lets
the caller run any checks against the *resulting* state, and either
commits -- keeping the changes -- or rolls back by replaying the exact
inverse operations. Used as a context manager, an exception (including a
failed verification) rolls back automatically::

    with classifier.transaction() as txn:
        txn.insert_rule("SEAT", detour)
        txn.ensure(lambda clf: not NetworkVerifier.from_classifier(clf)
                   .find_loops("SEAT"), "detour must not loop")
    # committed here; raised -> rolled back
"""

from __future__ import annotations

from typing import Callable

from ..network.rules import ForwardingRule

__all__ = ["UpdateTransaction", "VerificationFailed"]


class VerificationFailed(RuntimeError):
    """A transaction check rejected the staged data plane state."""


class UpdateTransaction:
    """A reversible batch of forwarding-rule changes."""

    def __init__(self, classifier) -> None:
        self.classifier = classifier
        # Inverse operations, applied in reverse order on rollback.
        self._inverses: list[tuple[str, str, ForwardingRule]] = []
        self._closed = False

    # ------------------------------------------------------------------
    # Staged operations
    # ------------------------------------------------------------------

    def insert_rule(self, box: str, rule: ForwardingRule) -> None:
        self._check_open()
        self.classifier.insert_rule(box, rule)
        self._inverses.append(("remove", box, rule))

    def remove_rule(self, box: str, rule: ForwardingRule) -> None:
        self._check_open()
        self.classifier.remove_rule(box, rule)
        self._inverses.append(("insert", box, rule))

    # ------------------------------------------------------------------
    # Verification
    # ------------------------------------------------------------------

    def ensure(
        self, check: Callable[[object], bool], message: str = "verification failed"
    ) -> None:
        """Run a predicate against the staged state; raise to abort.

        ``check`` receives the classifier (whose data plane already
        includes this transaction's changes) and returns truthiness.
        """
        self._check_open()
        if not check(self.classifier):
            raise VerificationFailed(message)

    # ------------------------------------------------------------------
    # Outcome
    # ------------------------------------------------------------------

    @property
    def pending_operations(self) -> int:
        return len(self._inverses)

    def commit(self) -> None:
        """Keep the staged changes; the transaction is finished."""
        self._check_open()
        self._inverses.clear()
        self._closed = True

    def rollback(self) -> None:
        """Undo every staged change, newest first."""
        self._check_open()
        while self._inverses:
            action, box, rule = self._inverses.pop()
            if action == "remove":
                self.classifier.remove_rule(box, rule)
            else:
                self.classifier.insert_rule(box, rule)
        self._closed = True

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("transaction already committed or rolled back")

    # ------------------------------------------------------------------
    # Context manager protocol
    # ------------------------------------------------------------------

    def __enter__(self) -> "UpdateTransaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._closed:
            return False
        if exc_type is None:
            self.commit()
        else:
            self.rollback()
        return False  # propagate any exception after rolling back
