"""Real-time update engine (Section VI-A).

Data plane changes arrive as :class:`PredicateChange` diffs from the
:class:`DataPlane`.  Applying one keeps the classifier exact:

* **removal** tombstones the predicate -- the AP Tree keeps evaluating it
  (removing internal nodes would require merging subtrees), but stage 2 and
  the ``R`` mapping forget it immediately;
* **addition** refines every atom against the new predicate (``a & p`` /
  ``a & ~p``) and mirrors the splits onto the tree's leaves.

Both operations are local and fast; they degrade tree balance over time,
which is what periodic reconstruction (Section VI-B) repairs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

from ..network.dataplane import LabeledPredicate, PredicateChange
from .aptree import APTree
from .atomic import AtomicUniverse
from .weights import VisitCounter

__all__ = ["UpdateEngine", "UpdateResult"]


@dataclass(frozen=True)
class UpdateResult:
    """Accounting for one applied predicate change (Fig. 13 material)."""

    removed_pid: int | None
    added_pid: int | None
    atoms_split: int
    #: Atoms whose ``R``/stage-2 membership changed because a removal
    #: tombstoned the predicate out of them.  Pure removals split nothing,
    #: but they are not free: every atom that carried the predicate had
    #: its reverse mapping patched, and Fig. 13 accounting needs to tell
    #: the two maintenance kinds apart.
    tombstoned: int
    elapsed_s: float


class UpdateEngine:
    """Applies predicate changes to a (universe, tree) pair in lock-step."""

    def __init__(
        self,
        universe: AtomicUniverse,
        tree: APTree | None,
        counter: VisitCounter | None = None,
        recorder=None,
    ) -> None:
        self.universe = universe
        self.tree = tree
        self.counter = counter
        #: Optional :class:`repro.obs.Recorder` for update metrics
        #: (splits applied, affected leaves, latency distribution).
        self.recorder = recorder
        self.updates_applied = 0

    def apply(self, change: PredicateChange) -> UpdateResult:
        """Apply one diff; returns timing and split statistics."""
        started = time.perf_counter()
        removed_pid: int | None = None
        added_pid: int | None = None
        atoms_split = 0
        tombstoned = 0
        if change.removed is not None:
            removed_pid = change.removed.pid
            tombstoned = self.remove_predicate(removed_pid)
        if change.added is not None:
            added_pid = change.added.pid
            atoms_split = self.add_predicate(change.added)
        self.updates_applied += 1
        elapsed_s = time.perf_counter() - started
        rec = self.recorder
        if rec is not None:
            rec.updates.record_update(
                added=added_pid is not None,
                removed=removed_pid is not None,
                atoms_split=atoms_split,
                tombstoned=tombstoned,
                elapsed_s=elapsed_s,
            )
        return UpdateResult(
            removed_pid=removed_pid,
            added_pid=added_pid,
            atoms_split=atoms_split,
            tombstoned=tombstoned,
            elapsed_s=elapsed_s,
        )

    def apply_all(self, changes: list[PredicateChange]) -> list[UpdateResult]:
        return [self.apply(change) for change in changes]

    def add_predicate(self, labeled: LabeledPredicate) -> int:
        """Refine the universe by one predicate and split tree leaves.

        Returns the number of atoms that were split in two.
        """
        splits = self.universe.add_predicate(labeled.pid, labeled.fn)
        split_count = 0
        if self.counter is not None:
            for split in splits:
                if split.is_split:
                    assert split.inside_id is not None
                    assert split.outside_id is not None
                    self.counter.on_split(
                        split.old_id, split.inside_id, split.outside_id
                    )
        if self.tree is not None:
            split_count = self.tree.apply_splits(
                labeled.pid, labeled.fn.node, splits
            )
        else:
            split_count = sum(1 for split in splits if split.is_split)
        return split_count

    def replay(
        self, pending: Sequence[tuple[str, LabeledPredicate | int]]
    ) -> int:
        """Re-apply updates that arrived while a reconstruction ran.

        ``pending`` is the journal the query process kept during the
        rebuild (Fig. 8): ``("add", labeled)`` entries carry the *original*
        :class:`LabeledPredicate` (pid, kind, box, table, fn) so the
        replayed universe matches a direct build field-for-field, and
        ``("remove", pid)`` entries carry just the pid.  The freshly built
        structure predates those updates, so they are replayed here before
        the swap.  Deletes of predicates the rebuild never saw (added *and*
        removed while it ran) are skipped.  Returns the number of replayed
        entries.
        """
        replayed = 0
        for kind, payload in pending:
            if kind == "add":
                assert isinstance(payload, LabeledPredicate)
                self.add_predicate(payload)
            else:
                pid = payload.pid if isinstance(payload, LabeledPredicate) else payload
                if not self.universe.has_predicate(pid):
                    continue
                self.remove_predicate(pid)
            replayed += 1
        rec = self.recorder
        if rec is not None:
            rec.updates.replayed += replayed
        return replayed

    def remove_predicate(self, pid: int) -> int:
        """Tombstone a predicate; the tree structure is intentionally kept.

        The tree is still marked changed: compiled artifacts treat any
        maintenance conservatively as staleness and fall back to the
        interpreted tree until recompiled (Section VI-B split).  Returns
        the number of atoms whose ``R`` membership the tombstone patched.
        """
        tombstoned = len(self.universe.r(pid))
        self.universe.remove_predicate(pid)
        if self.tree is not None:
            self.tree.touch()
        return tombstoned
