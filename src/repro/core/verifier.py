"""Network-wide invariant verification on top of AP Classifier.

The paper's Section I applications -- verification of flow properties,
attack detection, fault localization -- all reduce to evaluating the
behavior of *every* atomic predicate, because the atoms partition the
header space: checking each atom once checks every possible packet.
This module packages those sweeps as an API:

* reachability between boxes/hosts (as sets of atoms, convertible to
  predicates over concrete header fields);
* loop and blackhole detection;
* waypoint enforcement ("all packets from A to B traverse the firewall");
* pairwise isolation ("no packet reaches both tenants").

This is the AP-Verifier-style whole-network analysis the paper contrasts
itself against (Section II) -- included both as a baseline capability and
because AP Classifier makes it cheap: one stage-2 walk per atom.
"""

from __future__ import annotations

from dataclasses import dataclass

from .atomic import AtomicUniverse
from .behavior import Behavior, BehaviorComputer
from ..network.dataplane import DataPlane

__all__ = ["NetworkVerifier", "WaypointViolation"]


@dataclass(frozen=True)
class WaypointViolation:
    """One packet class that reaches the destination around the waypoint."""

    atom_id: int
    path: tuple[str, ...]


class NetworkVerifier:
    """Exhaustive per-atom behavior analysis from a fixed ingress."""

    def __init__(self, dataplane: DataPlane, universe: AtomicUniverse) -> None:
        self.dataplane = dataplane
        self.universe = universe
        self._computer = BehaviorComputer(dataplane, universe)
        self._cache: dict[tuple[int, str, str | None], Behavior] = {}

    @classmethod
    def from_classifier(cls, classifier) -> "NetworkVerifier":
        return cls(classifier.dataplane, classifier.universe)

    def _behavior(
        self, atom_id: int, ingress: str, in_port: str | None = None
    ) -> Behavior:
        key = (atom_id, ingress, in_port)
        cached = self._cache.get(key)
        if cached is None:
            cached = self._computer.compute(atom_id, ingress, in_port)
            self._cache[key] = cached
        return cached

    def invalidate(self) -> None:
        """Drop cached behaviors (call after any data plane change)."""
        self._cache.clear()

    # ------------------------------------------------------------------
    # Reachability
    # ------------------------------------------------------------------

    def atoms_reaching_host(self, ingress: str, host: str) -> frozenset[int]:
        """Packet classes that, injected at ``ingress``, reach ``host``."""
        return frozenset(
            atom_id
            for atom_id in self.universe.atom_ids()
            if host in self._behavior(atom_id, ingress).delivered_hosts()
        )

    def atoms_traversing(self, ingress: str, box: str) -> frozenset[int]:
        """Packet classes whose forwarding trees include ``box``."""
        return frozenset(
            atom_id
            for atom_id in self.universe.atom_ids()
            if box in self._behavior(atom_id, ingress).boxes_traversed()
        )

    def reachability_matrix(self) -> dict[tuple[str, str], frozenset[int]]:
        """(ingress box, host) -> atoms delivered; the network-wide map."""
        hosts = [host for _, host in self.dataplane.network.topology.hosts()]
        matrix: dict[tuple[str, str], frozenset[int]] = {}
        for ingress in sorted(self.dataplane.network.boxes):
            for host in hosts:
                matrix[(ingress, host)] = self.atoms_reaching_host(ingress, host)
        return matrix

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------

    def find_loops(self, ingress: str) -> frozenset[int]:
        """Packet classes that loop when injected at ``ingress``."""
        return frozenset(
            atom_id
            for atom_id in self.universe.atom_ids()
            if self._behavior(atom_id, ingress).has_loop
        )

    def find_blackholes(self, ingress: str) -> frozenset[int]:
        """Packet classes delivered nowhere from ``ingress`` (dropped or
        looped), i.e. candidates for forwarding-correctness review."""
        return frozenset(
            atom_id
            for atom_id in self.universe.atom_ids()
            if self._behavior(atom_id, ingress).is_dropped_everywhere
        )

    def verify_waypoint(
        self, ingress: str, host: str, waypoint: str
    ) -> list[WaypointViolation]:
        """Check every packet class from ``ingress`` to ``host`` passes
        ``waypoint``; returns the violations (empty = property holds)."""
        violations: list[WaypointViolation] = []
        for atom_id in sorted(self.atoms_reaching_host(ingress, host)):
            behavior = self._behavior(atom_id, ingress)
            if waypoint in behavior.boxes_traversed():
                continue
            offending = next(
                (
                    tuple(path)
                    for path in behavior.paths()
                    if path and path[-1] == host
                ),
                tuple(behavior.paths()[0]) if behavior.paths() else (),
            )
            violations.append(WaypointViolation(atom_id=atom_id, path=offending))
        return violations

    def verify_isolation(
        self, ingress: str, host_a: str, host_b: str
    ) -> frozenset[int]:
        """Packet classes from ``ingress`` delivered to BOTH hosts
        (empty = the two endpoints are isolated)."""
        return self.atoms_reaching_host(ingress, host_a) & self.atoms_reaching_host(
            ingress, host_b
        )

    def describe_atom(self, atom_id: int, max_cubes: int = 3) -> str:
        """A human-readable witness for an atom: a few header cubes."""
        layout = self.dataplane.layout
        fn = self.universe.atom_fn(atom_id)
        pieces = []
        for index, cube in enumerate(fn.iter_cubes()):
            if index >= max_cubes:
                pieces.append("...")
                break
            constraints = []
            for field in layout.fields:
                bits = [
                    (var - field.offset, polarity)
                    for var, polarity in cube.items()
                    if field.offset <= var < field.offset + field.width
                ]
                if not bits:
                    continue
                mask = 0
                value = 0
                for position, polarity in bits:
                    mask |= 1 << (field.width - 1 - position)
                    if polarity:
                        value |= 1 << (field.width - 1 - position)
                constraints.append(f"{field.name}&{mask:#x}=={value:#x}")
            pieces.append(" & ".join(constraints) if constraints else "any")
        return f"a{atom_id}: " + " | ".join(pieces)
