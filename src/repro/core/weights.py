"""Atom visit counters for distribution-aware trees (Section V-D).

Practical traffic is not uniform over the atomic predicates; AP Classifier
counts how often each leaf is visited over a period, converts counts to
weights "after reduction of a fraction", and rebuilds the tree so hot
leaves sit close to the root.
"""

from __future__ import annotations

from collections import Counter
from typing import Mapping

__all__ = ["VisitCounter"]


class VisitCounter:
    """Per-atom query visit counts with split-aware carry-over."""

    def __init__(self) -> None:
        self._counts: Counter[int] = Counter()
        self.total = 0

    def record(self, atom_id: int, count: int = 1) -> None:
        self._counts[atom_id] += count
        self.total += count

    def count(self, atom_id: int) -> int:
        return self._counts.get(atom_id, 0)

    def on_split(self, old_id: int, inside_id: int, outside_id: int) -> None:
        """Carry a split atom's history to its children, half each.

        The true split of traffic is unknown until new queries arrive; an
        even split keeps totals conserved and is corrected by subsequent
        measurements.
        """
        count = self._counts.pop(old_id, 0)
        if count:
            half = count // 2
            self._counts[inside_id] += count - half
            self._counts[outside_id] += half

    def on_merge(self, mapping: Mapping[int, int]) -> None:
        """Translate counts through an atom-coalescing mapping.

        Counts of merged atoms are summed onto the surviving id; totals
        are conserved.
        """
        merged: Counter[int] = Counter()
        for atom_id, count in self._counts.items():
            merged[mapping.get(atom_id, atom_id)] += count
        self._counts = merged

    def weights(self, floor: float = 1.0) -> dict[int, float]:
        """Counts scaled to weights.

        Normalizes by the mean count so weights hover around 1.0 (the
        paper's "reduction of a fraction"), then clamps to ``floor`` so a
        never-visited atom still counts as a leaf worth placing.
        """
        if not self._counts:
            return {}
        mean = self.total / len(self._counts)
        if mean <= 0:
            return {atom_id: floor for atom_id in self._counts}
        return {
            atom_id: max(count / mean, floor)
            for atom_id, count in self._counts.items()
        }

    def reset(self) -> None:
        self._counts.clear()
        self.total = 0

    def as_mapping(self) -> Mapping[int, int]:
        return dict(self._counts)

    def __repr__(self) -> str:
        return f"VisitCounter({len(self._counts)} atoms, {self.total} visits)"
