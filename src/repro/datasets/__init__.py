"""Dataset, workload, and update generators.

The paper evaluates on the Internet2 and Stanford backbone snapshots,
which are not redistributable; :func:`internet2_like` and
:func:`stanford_like` build structurally equivalent synthetic planes (see
DESIGN.md for the substitution argument).  Workload generators reproduce
the paper's query traces and update streams.
"""

from .fattree import fattree
from .internet2 import INTERNET2_LINKS, INTERNET2_ROUTERS, internet2_like
from .middleboxes import group_atoms, make_middlebox
from .stanford import ZONE_COUNT, stanford_like
from .synthetic import random_network, toy_network
from .updates import RuleUpdate, rule_update_stream
from .workloads import (
    PacketTrace,
    pareto_atom_counts,
    pareto_over_atoms,
    random_headers,
    uniform_over_atoms,
    zipf_over_headers,
)

__all__ = [
    "fattree",
    "internet2_like",
    "INTERNET2_ROUTERS",
    "INTERNET2_LINKS",
    "stanford_like",
    "ZONE_COUNT",
    "toy_network",
    "random_network",
    "RuleUpdate",
    "rule_update_stream",
    "PacketTrace",
    "uniform_over_atoms",
    "pareto_over_atoms",
    "pareto_atom_counts",
    "random_headers",
    "zipf_over_headers",
    "make_middlebox",
    "group_atoms",
]
