"""Dataset, workload, and update generators.

The paper evaluates on the Internet2 and Stanford backbone snapshots,
which are not redistributable; :func:`internet2_like` and
:func:`stanford_like` build structurally equivalent synthetic planes (see
DESIGN.md for the substitution argument).  Workload generators reproduce
the paper's query traces and update streams, and the scenario foundry
(:mod:`repro.datasets.acl`, :mod:`repro.datasets.fattree`,
:mod:`repro.datasets.ipv6_wan`, :mod:`repro.datasets.sdn`) adds the
adversarial regimes the ROADMAP calls for.

Prefer :func:`get_scenario` / :func:`list_scenarios` over calling the
generators directly: the registry binds every generator to typed params,
a single master seed, and the canonical trace/update workloads.
"""

from .acl import acl_heavy
from .fattree import clos_ecmp, fattree
from .internet2 import INTERNET2_LINKS, INTERNET2_ROUTERS, internet2_like
from .ipv6_wan import ipv6_wan
from .middleboxes import group_atoms, make_middlebox
from .registry import (
    Scenario,
    ScenarioError,
    derive_seed,
    describe_scenarios,
    get_scenario,
    list_scenarios,
)
from .sdn import SDNEvent, packet_in_stream, sdn_policy
from .stanford import ZONE_COUNT, stanford_like
from .synthetic import random_network, toy_network
from .updates import RuleUpdate, rule_update_stream
from .workloads import (
    PacketTrace,
    pareto_atom_counts,
    pareto_over_atoms,
    random_headers,
    uniform_over_atoms,
    zipf_over_headers,
)

__all__ = [
    "fattree",
    "clos_ecmp",
    "acl_heavy",
    "ipv6_wan",
    "sdn_policy",
    "SDNEvent",
    "packet_in_stream",
    "internet2_like",
    "INTERNET2_ROUTERS",
    "INTERNET2_LINKS",
    "stanford_like",
    "ZONE_COUNT",
    "toy_network",
    "random_network",
    "Scenario",
    "ScenarioError",
    "derive_seed",
    "get_scenario",
    "list_scenarios",
    "describe_scenarios",
    "RuleUpdate",
    "rule_update_stream",
    "PacketTrace",
    "uniform_over_atoms",
    "pareto_over_atoms",
    "pareto_atom_counts",
    "random_headers",
    "zipf_over_headers",
    "make_middlebox",
    "group_atoms",
]
