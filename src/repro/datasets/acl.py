"""ACL-heavy firewall corpus generator (Hazelhurst-style).

Hazelhurst's BDD-based analysis of firewall and router access lists
(PAPERS.md) works on *dense, overlapping, first-match-heavy* rule
corpora: many lists stamped onto many interfaces, every list a deep
first-match chain, and the matched ranges -- source prefixes and
destination port ranges -- drawn from a small shared region of header
space so that rules from different lists intersect each other heavily.
That regime is the worst case for atomic-predicate counts: each ACL
predicate is the complement of a union of ranges, and when the ranges
of different lists nest and straddle one another the membership vectors
multiply combinatorially instead of adding.

:func:`acl_heavy` builds exactly that corpus, with the two knobs the
regime is defined by:

* ``overlap`` -- the fraction of deny rules whose range is drawn from a
  shared "hot" region (prefixes of random length nested inside one /8,
  port ranges nested inside the privileged ports).  The remaining rules
  draw private, pairwise-disjoint /24s, which add atoms only linearly.
  Raising ``overlap`` is what makes the atom count grow super-linearly
  in the rule count (property-tested in ``tests/test_scenarios.py``).
* ``rules_per_list`` -- the first-match depth of every chain.  Later
  rules are partially shadowed by earlier ones, so depth exercises the
  first-match subtraction in the predicate compiler, not just unions.

Topology is deliberately small -- a border router feeding one firewall
with ``lists`` filtered customer ports -- because the stress here is
predicate *structure*, not path length.
"""

from __future__ import annotations

import random

from ..headerspace.fields import five_tuple_layout
from ..network.builder import Network
from ..network.rules import AclRule, Match

__all__ = ["acl_heavy"]

#: The shared hot region deny prefixes nest inside: 172.0.0.0/8.
_HOT_SRC_BASE = 172 << 24
#: Privileged destination ports; hot port ranges nest under 1024.
_HOT_PORT_BITS = 6  # ranges of size 2^(16-len), len in [6, 14]


def _hot_src_rule(rng: random.Random) -> Match:
    """A deny source prefix nested inside the hot /8.

    Length is drawn from [9, 24]: short prefixes straddle many longer
    ones, which is what makes distinct lists refine each other.
    """
    plen = rng.randrange(9, 25)
    offset = rng.getrandbits(plen - 8) << (32 - plen)
    return Match.prefix("src_ip", _HOT_SRC_BASE | offset, plen)


def _hot_port_rule(rng: random.Random) -> Match:
    """A deny destination port range nested under the privileged ports."""
    plen = rng.randrange(_HOT_PORT_BITS, 15)
    value = rng.getrandbits(plen) << (16 - plen)
    return Match.prefix("dst_port", value, plen)


def _cold_src_rule(rng: random.Random, list_index: int) -> Match:
    """A private /24 disjoint from every other list's cold rules.

    Each list owns its own /16 of cold space (192.<list>.0.0/16), so two
    cold rules from different lists can never intersect -- they add
    equivalence classes linearly, never multiplicatively.
    """
    value = (192 << 24) | (list_index << 16) | (rng.randrange(256) << 8)
    return Match.prefix("src_ip", value, 24)


def acl_heavy(
    lists: int = 8,
    rules_per_list: int = 10,
    overlap: float = 0.8,
    port_rule_fraction: float = 0.3,
    seed: int = 2019,
) -> Network:
    """Build the ACL-heavy firewall network.

    ``lists`` filtered customer ports on one firewall, each with its own
    first-match chain of ``rules_per_list`` rules (depth includes the
    final permit-any).  A rule denies either a hot overlapping range
    (probability ``overlap``; source prefix or, with probability
    ``port_rule_fraction``, a destination port range) or a private cold
    /24.  ``seed`` fixes the whole corpus.
    """
    if lists < 1:
        raise ValueError("lists must be >= 1")
    if rules_per_list < 2:
        raise ValueError("rules_per_list must be >= 2 (deny chain + permit)")
    if not 0.0 <= overlap <= 1.0:
        raise ValueError("overlap must be in [0, 1]")
    rng = random.Random(seed)
    network = Network(five_tuple_layout(), name="acl-heavy")
    network.add_box("border")
    network.add_box("fw")
    network.link("border", "to_fw", "fw", "to_border")
    network.link("fw", "to_border", "border", "to_fw")

    # Forwarding: each customer port serves its own /16; the border sends
    # the whole aggregate to the firewall.
    network.add_forwarding_rule(
        "border", Match.prefix("dst_ip", 10 << 24, 8), "to_fw", priority=8
    )
    for index in range(lists):
        port = f"cust{index}"
        network.attach_host("fw", port, f"net_{port}")
        network.add_forwarding_rule(
            "fw",
            Match.prefix("dst_ip", (10 << 24) | ((index + 1) << 16), 16),
            port,
            priority=16,
        )

    # The first-match chains: deny ... deny, then permit-any.
    for index in range(lists):
        rules: list[AclRule] = []
        for _ in range(rules_per_list - 1):
            if rng.random() < overlap:
                if rng.random() < port_rule_fraction:
                    match = _hot_port_rule(rng)
                else:
                    match = _hot_src_rule(rng)
            else:
                match = _cold_src_rule(rng, index)
            rules.append(AclRule(match, permit=False))
        rules.append(AclRule(Match.any(), permit=True))
        network.add_output_acl("fw", f"cust{index}", rules)
    return network
