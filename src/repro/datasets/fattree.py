"""k-ary fat-tree datacenter data plane.

The paper motivates AP Classifier with datacenter-scale query rates
("hundreds of thousands of new flows per second", Section I, citing the
IMC datacenter traffic studies). This generator builds the standard k-ary
fat-tree (Al-Fares et al., SIGCOMM'08) with two-level routing:

* ``(k/2)^2`` core switches, ``k`` pods of ``k/2`` aggregation and ``k/2``
  edge switches, hosts on edge ports;
* downward routes on /24 pod/subnet prefixes;
* upward default routes that spread traffic across uplinks by suffix
  (a deterministic stand-in for ECMP, which keeps behavior per-packet
  well-defined as the model requires).

Useful for scale tests (predicate and atom counts grow with k) and for
the traffic-engineering example.
"""

from __future__ import annotations

from ..headerspace.fields import dst_ip_layout
from ..network.builder import Network
from ..network.rules import Match

__all__ = ["fattree"]


def _pod_subnet(pod: int, edge: int) -> int:
    """Address plan 10.pod.edge.0/24 (the SIGCOMM'08 convention)."""
    return (10 << 24) | (pod << 16) | (edge << 8)


def fattree(k: int = 4, hosts_per_edge: int = 1) -> Network:
    """Build a k-ary fat-tree network (k even, >= 2)."""
    if k < 2 or k % 2:
        raise ValueError("fat-tree arity k must be even and >= 2")
    half = k // 2
    network = Network(dst_ip_layout(), name=f"fattree-{k}")

    cores = [f"core_{i}_{j}" for i in range(half) for j in range(half)]
    for name in cores:
        network.add_box(name)
    aggs: dict[tuple[int, int], str] = {}
    edges: dict[tuple[int, int], str] = {}
    for pod in range(k):
        for index in range(half):
            aggs[(pod, index)] = f"agg_{pod}_{index}"
            edges[(pod, index)] = f"edge_{pod}_{index}"
            network.add_box(aggs[(pod, index)])
            network.add_box(edges[(pod, index)])

    # Wiring: edge <-> agg full mesh within a pod; agg i <-> cores row i.
    for pod in range(k):
        for agg_index in range(half):
            agg = aggs[(pod, agg_index)]
            for edge_index in range(half):
                edge = edges[(pod, edge_index)]
                network.link(agg, f"down_{edge_index}", edge, f"up_{agg_index}")
                network.link(edge, f"up_{agg_index}", agg, f"down_{edge_index}")
            for j in range(half):
                core = f"core_{agg_index}_{j}"
                network.link(agg, f"core_{j}", core, f"pod_{pod}")
                network.link(core, f"pod_{pod}", agg, f"core_{j}")

    # Hosts and their /32 routes; the subnet's remaining addresses fall to
    # a /24 pointing at the first host port (gateway-style).
    for pod in range(k):
        for edge_index in range(half):
            edge = edges[(pod, edge_index)]
            subnet = _pod_subnet(pod, edge_index)
            for host_index in range(hosts_per_edge):
                port = f"host_{host_index}"
                network.attach_host(edge, port, f"h_{pod}_{edge_index}_{host_index}")
                network.add_forwarding_rule(
                    edge,
                    Match.prefix("dst_ip", subnet | (host_index + 2), 32),
                    port,
                    priority=32,
                )
            network.add_forwarding_rule(
                edge, Match.prefix("dst_ip", subnet, 24), "host_0", priority=24
            )

    for pod in range(k):
        for agg_index in range(half):
            agg = aggs[(pod, agg_index)]
            # Downward: /24 per edge subnet in this pod.
            for edge_index in range(half):
                network.add_forwarding_rule(
                    agg,
                    Match.prefix("dst_ip", _pod_subnet(pod, edge_index), 24),
                    f"down_{edge_index}",
                    priority=24,
                )
            # Upward: spread other pods across core uplinks by pod parity.
            for other_pod in range(k):
                if other_pod == pod:
                    continue
                network.add_forwarding_rule(
                    agg,
                    Match.prefix("dst_ip", (10 << 24) | (other_pod << 16), 16),
                    f"core_{other_pod % half}",
                    priority=16,
                )

    for pod in range(k):
        for edge_index in range(half):
            edge = edges[(pod, edge_index)]
            # Upward from edge: in-pod subnets to the right agg, rest split.
            for other_edge in range(half):
                if other_edge == edge_index:
                    continue
                network.add_forwarding_rule(
                    edge,
                    Match.prefix("dst_ip", _pod_subnet(pod, other_edge), 24),
                    f"up_{other_edge % half}",
                    priority=24,
                )
            for other_pod in range(k):
                if other_pod == pod:
                    continue
                network.add_forwarding_rule(
                    edge,
                    Match.prefix("dst_ip", (10 << 24) | (other_pod << 16), 16),
                    f"up_{other_pod % half}",
                    priority=16,
                )

    # Core: pod /16 -> pod port.
    for i in range(half):
        for j in range(half):
            core = f"core_{i}_{j}"
            for pod in range(k):
                network.add_forwarding_rule(
                    core,
                    Match.prefix("dst_ip", (10 << 24) | (pod << 16), 16),
                    f"pod_{pod}",
                    priority=16,
                )
    return network
