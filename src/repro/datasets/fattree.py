"""k-ary fat-tree / Clos datacenter data planes.

The paper motivates AP Classifier with datacenter-scale query rates
("hundreds of thousands of new flows per second", Section I, citing the
IMC datacenter traffic studies). This generator builds the standard k-ary
fat-tree (Al-Fares et al., SIGCOMM'08) with two-level routing:

* ``(k/2)^2`` core switches, ``k`` pods of ``k/2`` aggregation and ``k/2``
  edge switches, hosts on edge ports;
* downward routes on /24 pod/subnet prefixes;
* upward default routes that spread traffic across uplinks by suffix
  (a deterministic stand-in for ECMP, which keeps behavior per-packet
  well-defined as the model requires).

:func:`clos_ecmp` is the multipath variant: every upward route carries a
*group* of uplink ports instead of a single pick, so one rule emits the
packet on ``ecmp_width`` ports at once. In the behavior model that is
multicast -- exactly how a header-space treatment of ECMP looks before a
hash function collapses the choice -- and it multiplies the reachable
(box, port) sets per header, stressing the stage-2 behavior machinery
(multicast R-sets) rather than predicate structure.

Useful for scale tests (predicate and atom counts grow with k) and for
the traffic-engineering example.
"""

from __future__ import annotations

from ..headerspace.fields import dst_ip_layout
from ..network.builder import Network
from ..network.rules import Match

__all__ = ["fattree", "clos_ecmp"]


def _pod_subnet(pod: int, edge: int) -> int:
    """Address plan 10.pod.edge.0/24 (the SIGCOMM'08 convention)."""
    return (10 << 24) | (pod << 16) | (edge << 8)


def _uplink_group(prefix: str, start: int, width: int, half: int) -> tuple[str, ...]:
    """``width`` uplink ports starting at ``start``, wrapping modulo ``half``.

    With ``width == 1`` this degenerates to the classic deterministic
    suffix spread, so :func:`fattree` output is unchanged by the refactor.
    """
    return tuple(f"{prefix}_{(start + i) % half}" for i in range(width))


def _build(k: int, hosts_per_edge: int, ecmp_width: int, name: str) -> Network:
    half = k // 2
    network = Network(dst_ip_layout(), name=name)

    cores = [f"core_{i}_{j}" for i in range(half) for j in range(half)]
    for box in cores:
        network.add_box(box)
    aggs: dict[tuple[int, int], str] = {}
    edges: dict[tuple[int, int], str] = {}
    for pod in range(k):
        for index in range(half):
            aggs[(pod, index)] = f"agg_{pod}_{index}"
            edges[(pod, index)] = f"edge_{pod}_{index}"
            network.add_box(aggs[(pod, index)])
            network.add_box(edges[(pod, index)])

    # Wiring: edge <-> agg full mesh within a pod; agg i <-> cores row i.
    for pod in range(k):
        for agg_index in range(half):
            agg = aggs[(pod, agg_index)]
            for edge_index in range(half):
                edge = edges[(pod, edge_index)]
                network.link(agg, f"down_{edge_index}", edge, f"up_{agg_index}")
                network.link(edge, f"up_{agg_index}", agg, f"down_{edge_index}")
            for j in range(half):
                core = f"core_{agg_index}_{j}"
                network.link(agg, f"core_{j}", core, f"pod_{pod}")
                network.link(core, f"pod_{pod}", agg, f"core_{j}")

    # Hosts and their /32 routes; the subnet's remaining addresses fall to
    # a /24 pointing at the first host port (gateway-style).
    for pod in range(k):
        for edge_index in range(half):
            edge = edges[(pod, edge_index)]
            subnet = _pod_subnet(pod, edge_index)
            for host_index in range(hosts_per_edge):
                port = f"host_{host_index}"
                network.attach_host(edge, port, f"h_{pod}_{edge_index}_{host_index}")
                network.add_forwarding_rule(
                    edge,
                    Match.prefix("dst_ip", subnet | (host_index + 2), 32),
                    port,
                    priority=32,
                )
            network.add_forwarding_rule(
                edge, Match.prefix("dst_ip", subnet, 24), "host_0", priority=24
            )

    for pod in range(k):
        for agg_index in range(half):
            agg = aggs[(pod, agg_index)]
            # Downward: /24 per edge subnet in this pod.
            for edge_index in range(half):
                network.add_forwarding_rule(
                    agg,
                    Match.prefix("dst_ip", _pod_subnet(pod, edge_index), 24),
                    f"down_{edge_index}",
                    priority=24,
                )
            # Upward: spread other pods across core uplinks by pod suffix;
            # with ecmp_width > 1 each route carries the whole uplink group.
            for other_pod in range(k):
                if other_pod == pod:
                    continue
                network.add_forwarding_rule(
                    agg,
                    Match.prefix("dst_ip", (10 << 24) | (other_pod << 16), 16),
                    _uplink_group("core", other_pod % half, ecmp_width, half),
                    priority=16,
                )

    for pod in range(k):
        for edge_index in range(half):
            edge = edges[(pod, edge_index)]
            # Upward from edge: in-pod subnets to the right agg, rest split.
            for other_edge in range(half):
                if other_edge == edge_index:
                    continue
                network.add_forwarding_rule(
                    edge,
                    Match.prefix("dst_ip", _pod_subnet(pod, other_edge), 24),
                    _uplink_group("up", other_edge % half, ecmp_width, half),
                    priority=24,
                )
            for other_pod in range(k):
                if other_pod == pod:
                    continue
                network.add_forwarding_rule(
                    edge,
                    Match.prefix("dst_ip", (10 << 24) | (other_pod << 16), 16),
                    _uplink_group("up", other_pod % half, ecmp_width, half),
                    priority=16,
                )

    # Core: pod /16 -> pod port.
    for i in range(half):
        for j in range(half):
            core = f"core_{i}_{j}"
            for pod in range(k):
                network.add_forwarding_rule(
                    core,
                    Match.prefix("dst_ip", (10 << 24) | (pod << 16), 16),
                    f"pod_{pod}",
                    priority=16,
                )
    return network


def fattree(k: int = 4, hosts_per_edge: int = 1) -> Network:
    """Build a k-ary fat-tree network (k even, >= 2)."""
    if k < 2 or k % 2:
        raise ValueError("fat-tree arity k must be even and >= 2")
    return _build(k, hosts_per_edge, ecmp_width=1, name=f"fattree-{k}")


def clos_ecmp(k: int = 4, hosts_per_edge: int = 1, ecmp_width: int = 0) -> Network:
    """Build a k-ary Clos fabric with ECMP uplink groups.

    ``ecmp_width`` is the number of uplinks in every upward route's
    multipath group; ``0`` (the default) means *all* ``k/2`` uplinks.
    ``ecmp_width=1`` collapses to the plain :func:`fattree` routing.
    """
    if k < 2 or k % 2:
        raise ValueError("Clos arity k must be even and >= 2")
    half = k // 2
    if ecmp_width == 0:
        ecmp_width = half
    if not 1 <= ecmp_width <= half:
        raise ValueError(f"ecmp_width must be in [1, {half}] (or 0 for all uplinks)")
    return _build(k, hosts_per_edge, ecmp_width, name=f"clos-{k}-ecmp{ecmp_width}")
