"""Internet2-like synthetic data plane.

The paper's first dataset is the Internet2 backbone snapshot: 9 routers,
126,017 IPv4 forwarding rules, no ACLs, reducing to 161 predicates
(Table I).  That snapshot is not redistributable here, so this generator
builds a structurally equivalent stand-in:

* the real 9-node Abilene/Internet2 backbone topology;
* destination-prefix (LPM) forwarding only, over a 32-bit ``dst_ip``
  header -- exactly the rule shape of the original;
* each router originates a set of customer /16 prefixes, each served by
  its own customer port (so the number of *predicates* -- output ports
  with traffic -- is controlled by ``prefixes_per_router``);
* shortest-path routes toward every prefix from every router, so most
  predicates are unions of whole prefix groups;
* a configurable fraction of "traffic-engineered" /24 exceptions routed to
  a different router, which is what gives real backbones their
  non-hierarchical equivalence classes.

With the default parameters the generated plane has ~150 predicates and
atoms on the same order as the paper's 161 predicates, at rule counts
sized for seconds-scale experiments (scale ``rules_per_prefix`` /
``prefixes_per_router`` up for stress runs).
"""

from __future__ import annotations

import random
from collections import deque

from ..headerspace.fields import dst_ip_layout
from ..network.builder import Network
from ..network.rules import Match

__all__ = ["internet2_like", "INTERNET2_ROUTERS", "INTERNET2_LINKS"]

INTERNET2_ROUTERS = (
    "ATLA",
    "CHIC",
    "HOUS",
    "KANS",
    "LOSA",
    "NEWY",
    "SALT",
    "SEAT",
    "WASH",
)

#: The classic Abilene backbone adjacency.
INTERNET2_LINKS = (
    ("SEAT", "SALT"),
    ("SEAT", "LOSA"),
    ("LOSA", "SALT"),
    ("LOSA", "HOUS"),
    ("SALT", "KANS"),
    ("KANS", "HOUS"),
    ("KANS", "CHIC"),
    ("HOUS", "ATLA"),
    ("CHIC", "ATLA"),
    ("CHIC", "NEWY"),
    ("ATLA", "WASH"),
    ("NEWY", "WASH"),
)


def _shortest_next_hops(adjacency: dict[str, list[str]]) -> dict[tuple[str, str], str]:
    """(source, destination) -> neighbor on a shortest path.

    BFS per destination with alphabetical tie-breaking, so routing is
    deterministic across runs.
    """
    next_hop: dict[tuple[str, str], str] = {}
    for destination in adjacency:
        parent: dict[str, str] = {destination: destination}
        queue = deque([destination])
        while queue:
            current = queue.popleft()
            for neighbor in sorted(adjacency[current]):
                if neighbor not in parent:
                    parent[neighbor] = current
                    queue.append(neighbor)
        for source in adjacency:
            if source == destination or source not in parent:
                continue
            next_hop[(source, destination)] = parent[source]
    return next_hop


def internet2_like(
    prefixes_per_router: int = 4,
    te_fraction: float = 0.25,
    seed: int = 2015,
) -> Network:
    """Build the Internet2-like network.

    ``prefixes_per_router`` customer /16s per router, each on its own
    customer port; ``te_fraction`` of prefixes also get a /24 exception
    homed at a different router.
    """
    if prefixes_per_router <= 0:
        raise ValueError("prefixes_per_router must be positive")
    rng = random.Random(seed)
    network = Network(dst_ip_layout(), name="internet2-like")
    adjacency: dict[str, list[str]] = {name: [] for name in INTERNET2_ROUTERS}
    for left, right in INTERNET2_LINKS:
        adjacency[left].append(right)
        adjacency[right].append(left)

    for name in INTERNET2_ROUTERS:
        network.add_box(name)
    for left, right in INTERNET2_LINKS:
        network.link(left, f"to_{right}", right, f"to_{left}")
        network.link(right, f"to_{left}", left, f"to_{right}")

    next_hop = _shortest_next_hops(adjacency)

    # Prefix plan: 10.<index>.0.0/16, owner round-robin over routers, each
    # prefix homed on its own customer port of the owner.
    prefixes: list[tuple[int, int, str, str]] = []  # (value, plen, owner, port)
    index = 1
    for position in range(prefixes_per_router):
        for owner in INTERNET2_ROUTERS:
            value = (10 << 24) | (index << 16)
            port = f"cust{position}"
            prefixes.append((value, 16, owner, port))
            index += 1

    # Traffic-engineered /24 exceptions: a sub-prefix homed elsewhere.
    exceptions: list[tuple[int, int, str, str]] = []
    for value, plen, owner, _port in prefixes:
        if rng.random() >= te_fraction:
            continue
        other = rng.choice([r for r in INTERNET2_ROUTERS if r != owner])
        sub_value = value | (rng.randrange(1, 255) << 8)
        exceptions.append((sub_value, 24, other, "te0"))

    # Attach hosts and install routes: every router routes every prefix.
    host_ports: set[tuple[str, str]] = set()
    for value, plen, owner, port in prefixes + exceptions:
        if (owner, port) not in host_ports:
            host_ports.add((owner, port))
            network.attach_host(owner, port, f"net_{owner}_{port}")
        for router in INTERNET2_ROUTERS:
            if router == owner:
                out_port = port
            else:
                out_port = f"to_{next_hop[(router, owner)]}"
            network.add_forwarding_rule(
                router,
                Match.prefix("dst_ip", value, plen),
                out_port,
                priority=plen,
            )
    return network
