"""IPv6-width WAN data plane.

The paper's evaluation is IPv4-only, but nothing in the AP construction
is width-specific: predicates, atoms, and the AP Tree are all functions
of the BDD variable order. This scenario re-runs the Internet2-like
backbone shape at IPv6 width -- a 128-bit ``dst_ip6`` header over the
same 9-router Abilene topology -- so the BDD layer is exercised with 4x
the variables of the friendly WAN case and the on-disk artifact carries
128 levels per node column instead of 32. That is the stress axis:
variable count and artifact size, not rule semantics.

Address plan (documentation range, RFC 3849):

* each router originates customer /48s under ``2001:db8::/32``,
  round-robin, one customer port per prefix (mirroring
  :func:`repro.datasets.internet2_like`);
* a ``te_fraction`` of prefixes grow a /56 exception homed at a
  different router, giving the non-hierarchical equivalence classes a
  real backbone has.

Addresses are built with :func:`repro.headerspace.fields.parse_ipv6`, so
the plan reads like a router config rather than bit arithmetic.
"""

from __future__ import annotations

import random

from ..headerspace.fields import dst_ip6_layout, parse_ipv6
from ..network.builder import Network
from ..network.rules import Match
from .internet2 import INTERNET2_LINKS, INTERNET2_ROUTERS, _shortest_next_hops

__all__ = ["ipv6_wan"]

#: All customer prefixes nest under the RFC 3849 documentation /32.
_V6_BASE = parse_ipv6("2001:db8::")


def ipv6_wan(
    prefixes_per_router: int = 4,
    te_fraction: float = 0.25,
    seed: int = 2021,
) -> Network:
    """Build the IPv6 WAN network.

    ``prefixes_per_router`` customer /48s per router under 2001:db8::/32,
    each on its own customer port; ``te_fraction`` of prefixes also get a
    /56 exception homed at a different router.
    """
    if prefixes_per_router <= 0:
        raise ValueError("prefixes_per_router must be positive")
    rng = random.Random(seed)
    network = Network(dst_ip6_layout(), name="ipv6-wan")
    adjacency: dict[str, list[str]] = {name: [] for name in INTERNET2_ROUTERS}
    for left, right in INTERNET2_LINKS:
        adjacency[left].append(right)
        adjacency[right].append(left)

    for name in INTERNET2_ROUTERS:
        network.add_box(name)
    for left, right in INTERNET2_LINKS:
        network.link(left, f"to_{right}", right, f"to_{left}")
        network.link(right, f"to_{left}", left, f"to_{right}")

    next_hop = _shortest_next_hops(adjacency)

    # Prefix plan: 2001:db8:<index>::/48, owner round-robin over routers.
    prefixes: list[tuple[int, int, str, str]] = []  # (value, plen, owner, port)
    index = 1
    for position in range(prefixes_per_router):
        for owner in INTERNET2_ROUTERS:
            value = _V6_BASE | (index << 80)
            prefixes.append((value, 48, owner, f"cust{position}"))
            index += 1

    # Traffic-engineered /56 exceptions: a sub-prefix homed elsewhere.
    exceptions: list[tuple[int, int, str, str]] = []
    for value, _plen, owner, _port in prefixes:
        if rng.random() >= te_fraction:
            continue
        other = rng.choice([r for r in INTERNET2_ROUTERS if r != owner])
        sub_value = value | (rng.randrange(1, 255) << 72)
        exceptions.append((sub_value, 56, other, "te0"))

    host_ports: set[tuple[str, str]] = set()
    for value, plen, owner, port in prefixes + exceptions:
        if (owner, port) not in host_ports:
            host_ports.add((owner, port))
            network.attach_host(owner, port, f"net_{owner}_{port}")
        for router in INTERNET2_ROUTERS:
            if router == owner:
                out_port = port
            else:
                out_port = f"to_{next_hop[(router, owner)]}"
            network.add_forwarding_rule(
                router,
                Match.prefix("dst_ip6", value, plen),
                out_port,
                priority=plen,
            )
    return network
