"""Middlebox flow-table generators for the Table II experiments.

Section VII-G: "we create ten entries for each flow table ... Match fields
are produced by dividing the packet header space into ten disjoint sets.
We obtain match fields by grouping all atomic predicates into ten
predicates."  The *deterministic ratio* is the portion of entries whose
post-rewrite atomic predicate is precomputed (Type 1); the rest force an
AP Tree re-search (Type 2/3).
"""

from __future__ import annotations

import random

from ..core.atomic import AtomicUniverse
from ..core.middlebox import (
    DETERMINISTIC,
    PAYLOAD_DEPENDENT,
    PROBABILISTIC,
    FlowEntry,
    HeaderRewrite,
    Middlebox,
    MiddleboxTable,
    RewriteBranch,
)

__all__ = ["make_middlebox", "group_atoms"]


def group_atoms(
    universe: AtomicUniverse, groups: int, rng: random.Random
) -> list[frozenset[int]]:
    """Partition the atom ids into ``groups`` non-empty disjoint sets."""
    atom_ids = sorted(universe.atom_ids())
    if groups <= 0:
        raise ValueError("groups must be positive")
    groups = min(groups, len(atom_ids))
    shuffled = atom_ids[:]
    rng.shuffle(shuffled)
    buckets: list[list[int]] = [[] for _ in range(groups)]
    for index, atom_id in enumerate(shuffled):
        buckets[index % groups].append(atom_id)
    return [frozenset(bucket) for bucket in buckets]


def make_middlebox(
    name: str,
    universe: AtomicUniverse,
    rng: random.Random,
    entries: int = 10,
    deterministic_ratio: float = 0.9,
    probabilistic_fraction: float = 0.5,
) -> Middlebox:
    """A middlebox whose flow table rewrites headers between atom groups.

    Each entry matches one atom group and rewrites matching packets'
    headers to land in a randomly chosen target atom (a full-header
    rewrite, the NAT-like worst case).  A ``deterministic_ratio`` fraction
    of entries are Type 1 (new atom precomputed); the remainder split
    between Type 2 (payload-dependent) and Type 3 (probabilistic over two
    targets) per ``probabilistic_fraction``.
    """
    if not 0.0 <= deterministic_ratio <= 1.0:
        raise ValueError("deterministic_ratio must be in [0, 1]")
    width = universe.manager.num_vars
    full_mask = (1 << width) - 1
    atom_ids = sorted(universe.atom_ids())
    table = MiddleboxTable()

    def rewrite_into(atom_id: int) -> tuple[HeaderRewrite, int]:
        header = universe.atom_fn(atom_id).random_sat(rng)
        return HeaderRewrite(mask=full_mask, value=header), atom_id

    for match_atoms in group_atoms(universe, entries, rng):
        target = rng.choice(atom_ids)
        rewrite, target_atom = rewrite_into(target)
        if rng.random() < deterministic_ratio:
            entry = FlowEntry(
                match_atoms=match_atoms,
                kind=DETERMINISTIC,
                branches=(
                    RewriteBranch(rewrite, probability=1.0, new_atom=target_atom),
                ),
            )
        elif rng.random() < probabilistic_fraction:
            alt_rewrite, _ = rewrite_into(rng.choice(atom_ids))
            entry = FlowEntry(
                match_atoms=match_atoms,
                kind=PROBABILISTIC,
                branches=(
                    RewriteBranch(rewrite, probability=0.5),
                    RewriteBranch(alt_rewrite, probability=0.5),
                ),
            )
        else:
            entry = FlowEntry(
                match_atoms=match_atoms,
                kind=PAYLOAD_DEPENDENT,
                branches=(RewriteBranch(rewrite, probability=1.0),),
            )
        table.append(entry)
    return Middlebox(name=name, table=table)
