"""The scenario registry: one typed, seedable API over every dataset.

Every benchmark and CLI entry point used to bake in its own dataset
calls -- a hardcoded dict here, a fixture pair there, each with its own
seeding habits (bare ``random.Random`` objects passed positionally, no
convention for which seed owns what). The registry replaces that with
one surface:

* :func:`get_scenario` / :func:`list_scenarios` -- look up a
  :class:`Scenario` by name with typed, validated keyword params;
* :class:`Scenario` -- the network factory, its
  :class:`~repro.headerspace.fields.HeaderLayout`, the canonical
  :class:`~repro.datasets.workloads.PacketTrace` workload, and the
  canonical update stream, all derived from a **single** ``seed``.

Seed convention: the master ``seed`` is handed unchanged to the network
generator (so ``get_scenario("internet2").network()`` is bit-identical
to the legacy ``internet2_like()`` and published BENCH numbers stay
comparable), while every workload RNG is seeded with
``derive_seed(seed, purpose)`` -- a SHA-256 derivation that is stable
across runs, platforms, and Python versions, and keeps independent
workloads from sharing a stream.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Any, Callable, Mapping

from ..core.atomic import AtomicUniverse
from ..headerspace.fields import HeaderLayout
from ..network.builder import Network
from .acl import acl_heavy
from .fattree import clos_ecmp, fattree
from .internet2 import internet2_like
from .ipv6_wan import ipv6_wan
from .sdn import sdn_policy
from .stanford import stanford_like
from .synthetic import toy_network
from .updates import RuleUpdate, rule_update_stream
from .workloads import PacketTrace, uniform_over_atoms

__all__ = [
    "Scenario",
    "ScenarioError",
    "derive_seed",
    "get_scenario",
    "list_scenarios",
    "describe_scenarios",
]


class ScenarioError(ValueError):
    """Unknown scenario name, unknown param, or a bad param value."""


def derive_seed(seed: int, purpose: str) -> int:
    """A 64-bit sub-seed for ``purpose``, stable across platforms.

    SHA-256 of ``"{seed}:{purpose}"`` -- unlike ``hash()``, never
    randomized per process, so the derived RNG streams are reproducible
    anywhere the same master seed is used.
    """
    digest = hashlib.sha256(f"{seed}:{purpose}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


@dataclass(frozen=True)
class _Param:
    """One typed scenario parameter; the type is the default's type."""

    default: Any
    doc: str

    @property
    def type(self) -> type:
        return type(self.default)


@dataclass(frozen=True)
class _Spec:
    """A registered scenario: factory plus its typed parameter surface."""

    name: str
    description: str
    stresses: str
    build: Callable[..., Network]
    params: Mapping[str, _Param]
    default_seed: int
    seeded: bool = True  # whether the factory accepts a ``seed`` kwarg


class Scenario:
    """A resolved scenario: bound params + the canonical workloads.

    The network is built lazily and cached; traces and update streams
    use purpose-derived RNGs (see :func:`derive_seed`), so calling
    ``trace`` twice with the same arguments gives the same packets and
    the update stream never perturbs the trace.
    """

    def __init__(self, spec: _Spec, params: dict[str, Any], seed: int) -> None:
        self._spec = spec
        self.name = spec.name
        self.description = spec.description
        self.params = dict(params)
        self.seed = seed
        self._network: Network | None = None

    def rng(self, purpose: str) -> random.Random:
        """A fresh RNG for ``purpose``, derived from the master seed."""
        return random.Random(derive_seed(self.seed, purpose))

    def network(self) -> Network:
        """The scenario's network (built once, cached)."""
        if self._network is None:
            kwargs = dict(self.params)
            if self._spec.seeded:
                kwargs["seed"] = self.seed
            self._network = self._spec.build(**kwargs)
        return self._network

    @property
    def layout(self) -> HeaderLayout:
        return self.network().layout

    def trace(self, universe: AtomicUniverse, count: int = 2000) -> PacketTrace:
        """The canonical query trace: uniform over the universe's atoms."""
        return uniform_over_atoms(universe, count, self.rng("trace"))

    def update_stream(
        self, count: int = 200, insert_fraction: float = 0.5
    ) -> list[RuleUpdate]:
        """The canonical churn stream against this scenario's network."""
        return rule_update_stream(
            self.network(), count, self.rng("updates"), insert_fraction
        )

    def describe(self) -> dict[str, Any]:
        """A JSON-able summary (the ``repro scenarios`` row)."""
        return {
            "name": self.name,
            "description": self.description,
            "stresses": self._spec.stresses,
            "seed": self.seed,
            "params": {
                name: {
                    "type": param.type.__name__,
                    "default": param.default,
                    "value": self.params[name],
                    "doc": param.doc,
                }
                for name, param in self._spec.params.items()
            },
        }


_REGISTRY: dict[str, _Spec] = {}


def _register(
    name: str,
    description: str,
    stresses: str,
    build: Callable[..., Network],
    params: dict[str, _Param],
    default_seed: int,
    seeded: bool = True,
) -> None:
    _REGISTRY[name] = _Spec(
        name, description, stresses, build, params, default_seed, seeded
    )


def list_scenarios() -> list[str]:
    """All registered scenario names, sorted."""
    return sorted(_REGISTRY)


def describe_scenarios() -> list[dict[str, Any]]:
    """Default-param descriptions of every scenario, sorted by name."""
    return [get_scenario(name).describe() for name in list_scenarios()]


def get_scenario(name: str, **params: Any) -> Scenario:
    """Look up ``name`` and bind ``params`` (plus optional ``seed``).

    Raises :class:`ScenarioError` for an unknown name, an unknown param,
    or a value that does not coerce to the param's declared type.
    String values are coerced (so CLI ``key=val`` pairs work directly);
    everything else must already have the right type.
    """
    spec = _REGISTRY.get(name)
    if spec is None:
        raise ScenarioError(
            f"unknown scenario {name!r}; choose from {list_scenarios()}"
        )
    seed = params.pop("seed", spec.default_seed)
    seed = _coerce(name, "seed", _Param(spec.default_seed, "master seed"), seed)
    resolved = {key: param.default for key, param in spec.params.items()}
    for key, value in params.items():
        if key not in spec.params:
            raise ScenarioError(
                f"unknown param {key!r} for scenario {name!r}; "
                f"choose from {sorted(spec.params) + ['seed']}"
            )
        resolved[key] = _coerce(name, key, spec.params[key], value)
    return Scenario(spec, resolved, seed)


def _coerce(scenario: str, key: str, param: _Param, value: Any) -> Any:
    kind = param.type
    if isinstance(value, str):
        try:
            return kind(value)
        except ValueError:
            raise ScenarioError(
                f"param {key!r} of scenario {scenario!r} expects "
                f"{kind.__name__}, got {value!r}"
            ) from None
    if kind is float and isinstance(value, int) and not isinstance(value, bool):
        return float(value)
    if not isinstance(value, kind) or isinstance(value, bool):
        raise ScenarioError(
            f"param {key!r} of scenario {scenario!r} expects "
            f"{kind.__name__}, got {value!r}"
        )
    return value


_register(
    "internet2",
    "Internet2/Abilene-like IPv4 backbone (the paper's first dataset)",
    "baseline WAN: LPM-only predicates, paper-comparable atom counts",
    internet2_like,
    {
        "prefixes_per_router": _Param(4, "customer /16s per router"),
        "te_fraction": _Param(0.25, "fraction of prefixes with a /24 TE exception"),
    },
    default_seed=2015,
)
_register(
    "stanford",
    "Stanford-like 5-tuple campus with zone ACLs (the paper's second dataset)",
    "ACL predicates + 104-bit headers, template sharing across zones",
    stanford_like,
    {
        "subnets_per_zone": _Param(4, "customer /24s per zone"),
        "host_ports_per_zone": _Param(2, "host-facing ports per zone"),
        "acl_zone_fraction": _Param(0.5, "fraction of zones with ACLs"),
        "acl_rules_per_list": _Param(4, "first-match depth per ACL"),
        "acl_templates": _Param(3, "distinct ACL bodies shared across zones"),
        "te_fraction": _Param(0.2, "fraction of subnets with TE exceptions"),
    },
    default_seed=2017,
)
_register(
    "toy",
    "Two-box teaching example (docs and smoke tests)",
    "nothing; it is the minimal end-to-end check",
    toy_network,
    {},
    default_seed=0,
    seeded=False,
)
_register(
    "fattree",
    "k-ary fat-tree datacenter fabric, deterministic single-path routing",
    "predicate/atom growth with k; datacenter path shapes",
    fattree,
    {
        "k": _Param(4, "fat-tree arity (even)"),
        "hosts_per_edge": _Param(1, "hosts per edge switch"),
    },
    default_seed=0,
    seeded=False,
)
_register(
    "clos-ecmp",
    "k-ary Clos fabric with multipath (ECMP) uplink groups",
    "stage-2 multicast/multipath R-sets; one rule, many out ports",
    clos_ecmp,
    {
        "k": _Param(4, "Clos arity (even)"),
        "hosts_per_edge": _Param(1, "hosts per edge switch"),
        "ecmp_width": _Param(0, "uplinks per multipath group (0 = all k/2)"),
    },
    default_seed=0,
    seeded=False,
)
_register(
    "acl-heavy",
    "Hazelhurst-style firewall corpus: dense overlapping first-match ACLs",
    "worst-case atom counts: super-linear atoms per predicate",
    acl_heavy,
    {
        "lists": _Param(8, "filtered customer ports (distinct ACL chains)"),
        "rules_per_list": _Param(10, "first-match depth per chain"),
        "overlap": _Param(0.8, "fraction of rules drawn from the shared hot region"),
        "port_rule_fraction": _Param(0.3, "hot rules matching dst-port ranges"),
    },
    default_seed=2019,
)
_register(
    "ipv6-wan",
    "Internet2-shaped backbone at IPv6 width (128-bit dst_ip6)",
    "BDD variable count (4x the v4 WAN) and artifact size",
    ipv6_wan,
    {
        "prefixes_per_router": _Param(4, "customer /48s per router"),
        "te_fraction": _Param(0.25, "fraction of prefixes with a /56 TE exception"),
    },
    default_seed=2021,
)
_register(
    "sdn-policy",
    "SDN leaf/spine with nmeta-style policy ACLs at the access edge",
    "serve + incremental together: packet-in queries under policy churn",
    sdn_policy,
    {
        "leaves": _Param(4, "leaf switches"),
        "policies": _Param(3, "distinct policy-ACL templates"),
        "guest_subnets": _Param(2, "guest /24s denied per template"),
    },
    default_seed=2022,
)
