"""SDN policy workload: packet-in queries under concurrent policy churn.

Modeled on nmeta-style SDN controllers (ROADMAP): the controller holds a
traffic-classification policy (per-edge-port ACLs denying well-known
service ports for guest subnets), answers a stream of packet-in queries
against the data plane, and *concurrently* pushes rule updates as the
policy and routing evolve. For AP Classifier that is the adversarial
serving regime -- ``QueryService`` micro-batches the packet-in stream
while ``IncrementalEngine`` patches atoms between batches -- so the
scenario ships both halves:

* :func:`sdn_policy` -- a leaf/spine fabric over the 5-tuple layout with
  shared policy-ACL templates stamped onto every leaf's host port (the
  controller pushes the *same* policy everywhere, so predicates overlap
  across leaves exactly as template-sharing does on stanford-like);
* :func:`packet_in_stream` -- the interleave: bursts of packet-in
  queries between the events of a rule-update stream, as one replayable
  event list.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..headerspace.fields import five_tuple_layout
from ..network.builder import Network
from ..network.rules import AclRule, Match
from .updates import RuleUpdate
from .workloads import PacketTrace

__all__ = ["sdn_policy", "SDNEvent", "packet_in_stream"]

#: Service ports an nmeta-style TC policy blocks at the access edge.
_POLICY_PORTS = (22, 23, 25, 445, 3389)


def sdn_policy(
    leaves: int = 4,
    policies: int = 3,
    guest_subnets: int = 2,
    seed: int = 2022,
) -> Network:
    """Build the SDN policy network.

    ``leaves`` leaf switches under two spines, leaf *i* serving
    10.(i+1).0.0/16 on a host port. ``policies`` ACL templates are drawn
    once from ``seed`` and stamped round-robin onto the leaf host ports:
    each template denies a couple of blocked service ports for
    ``guest_subnets`` guest /24s, then permits.
    """
    if leaves < 1:
        raise ValueError("leaves must be >= 1")
    if policies < 1:
        raise ValueError("policies must be >= 1")
    rng = random.Random(seed)
    network = Network(five_tuple_layout(), name="sdn-policy")

    spines = ("spine0", "spine1")
    for spine in spines:
        network.add_box(spine)
    for index in range(leaves):
        leaf = f"leaf{index}"
        network.add_box(leaf)
        for spine_index, spine in enumerate(spines):
            network.link(leaf, f"up{spine_index}", spine, f"down{index}")
            network.link(spine, f"down{index}", leaf, f"up{spine_index}")
        network.attach_host(leaf, "hosts", f"net_{leaf}")

    for index in range(leaves):
        leaf = f"leaf{index}"
        own = (10 << 24) | ((index + 1) << 16)
        network.add_forwarding_rule(
            leaf, Match.prefix("dst_ip", own, 16), "hosts", priority=16
        )
        for other in range(leaves):
            if other == index:
                continue
            # Deterministic spine pick by destination parity (the same
            # per-packet-well-defined ECMP stand-in fattree uses).
            network.add_forwarding_rule(
                leaf,
                Match.prefix("dst_ip", (10 << 24) | ((other + 1) << 16), 16),
                f"up{other % 2}",
                priority=16,
            )
    for spine in spines:
        for index in range(leaves):
            network.add_forwarding_rule(
                spine,
                Match.prefix("dst_ip", (10 << 24) | ((index + 1) << 16), 16),
                f"down{index}",
                priority=16,
            )

    # Policy templates: deny (guest /24, blocked dst_port) pairs, then
    # permit. One template object per policy; leaves share them
    # round-robin, so the same ACL body lands on many ports.
    templates: list[list[AclRule]] = []
    for _ in range(policies):
        rules: list[AclRule] = []
        for _ in range(guest_subnets):
            guest = (10 << 24) | (rng.randrange(1, leaves + 1) << 16) | (
                rng.randrange(200, 255) << 8
            )
            for port in rng.sample(_POLICY_PORTS, 2):
                match = Match.prefix("src_ip", guest, 24).with_prefix(
                    "dst_port", port, 16
                )
                rules.append(AclRule(match, permit=False))
        rules.append(AclRule(Match.any(), permit=True))
        templates.append(rules)
    for index in range(leaves):
        network.add_output_acl(f"leaf{index}", "hosts", templates[index % policies])
    return network


@dataclass(frozen=True)
class SDNEvent:
    """One controller event: a packet-in query or a rule update."""

    kind: str  # "packet_in" | "update"
    header: int | None = None
    update: RuleUpdate | None = None

    def __post_init__(self) -> None:
        if self.kind == "packet_in":
            if self.header is None or self.update is not None:
                raise ValueError("packet_in events carry a header only")
        elif self.kind == "update":
            if self.update is None or self.header is not None:
                raise ValueError("update events carry an update only")
        else:
            raise ValueError(f"unknown event kind {self.kind!r}")


def packet_in_stream(
    trace: PacketTrace,
    updates: list[RuleUpdate],
    rng: random.Random,
    burst: int = 16,
) -> list[SDNEvent]:
    """Interleave a query trace with a rule-update stream.

    Before each update a burst of packet-in queries arrives (size drawn
    uniformly from [burst/2, burst]); headers are consumed from ``trace``
    in order and any remainder trails after the last update, so every
    header and every update appears exactly once.
    """
    if burst < 1:
        raise ValueError("burst must be >= 1")
    events: list[SDNEvent] = []
    cursor = 0
    headers = trace.headers
    for update in updates:
        size = rng.randint(max(1, burst // 2), burst)
        for header in headers[cursor : cursor + size]:
            events.append(SDNEvent("packet_in", header=header))
        cursor += size
        events.append(SDNEvent("update", update=update))
    for header in headers[cursor:]:
        events.append(SDNEvent("packet_in", header=header))
    return events
