"""Stanford-backbone-like synthetic data plane.

The paper's second dataset is the Stanford campus backbone used by the HSA
authors: 16 boxes (2 backbone + 14 zone routers), 757,170 forwarding rules
and 1,584 ACL rules, reducing to 507 predicates (Table I).  This generator
reproduces its structure at configurable scale:

* two backbone routers (``bbra``, ``bbrb``), 14 zone routers, every zone
  dual-homed to both backbones;
* a 5-tuple header (ACLs filter on source, destination, and ports);
* each zone owns one /16 split into /24 subnets spread over its customer
  ports; zones default-route to a backbone, backbones route /16s to zones
  plus traffic-engineered /24 exceptions;
* first-match ACLs (deny-some, permit-rest) on a configurable fraction of
  customer ports, filtering on source prefixes and destination ports --
  these are what push the predicate count up and make atoms genuinely
  multi-dimensional.
"""

from __future__ import annotations

import random

from ..headerspace.fields import five_tuple_layout
from ..network.builder import Network
from ..network.rules import AclRule, Match

__all__ = ["stanford_like", "ZONE_COUNT"]

ZONE_COUNT = 14

#: Well-known destination ports ACLs commonly block.
_BLOCKED_PORTS = (23, 135, 139, 445, 1433)


def stanford_like(
    subnets_per_zone: int = 4,
    host_ports_per_zone: int = 2,
    acl_zone_fraction: float = 0.5,
    acl_rules_per_list: int = 4,
    acl_templates: int = 3,
    te_fraction: float = 0.2,
    seed: int = 2017,
) -> Network:
    """Build the Stanford-like network.

    ``subnets_per_zone`` /24s per zone distributed round-robin over
    ``host_ports_per_zone`` customer ports; roughly ``acl_zone_fraction``
    of zones get output ACLs on their customer ports, drawn from a pool of
    ``acl_templates`` distinct lists.  Sharing ACL templates across ports
    mirrors real campus configs (the same security policy is stamped onto
    many interfaces) and keeps the atomic-predicate count in the same
    regime as the paper's dataset; raising ``acl_templates`` makes the
    cross-product of source/port classes with destination classes grow
    quickly.
    """
    if subnets_per_zone <= 0 or host_ports_per_zone <= 0:
        raise ValueError("zone sizing parameters must be positive")
    rng = random.Random(seed)
    network = Network(five_tuple_layout(), name="stanford-like")
    backbones = ("bbra", "bbrb")
    zones = [f"zr{index:02d}" for index in range(1, ZONE_COUNT + 1)]

    for name in backbones:
        network.add_box(name)
    for name in zones:
        network.add_box(name)
    network.link("bbra", "to_bbrb", "bbrb", "to_bbra")
    network.link("bbrb", "to_bbra", "bbra", "to_bbrb")
    for zone in zones:
        for backbone in backbones:
            network.link(zone, f"to_{backbone}", backbone, f"to_{zone}")
            network.link(backbone, f"to_{zone}", zone, f"to_{backbone}")

    def zone_net(index: int) -> int:
        # 171.(64+index).0.0/16 -- the real campus uses 171.64.0.0/14.
        return (171 << 24) | ((64 + index) << 16)

    # Zone-internal subnets and routes.
    zone_subnets: dict[str, list[int]] = {}
    for index, zone in enumerate(zones):
        subnets = []
        for sub in range(subnets_per_zone):
            subnet = zone_net(index) | ((sub + 1) << 8)
            subnets.append(subnet)
            port = f"cust{sub % host_ports_per_zone}"
            network.add_forwarding_rule(
                zone, Match.prefix("dst_ip", subnet, 24), port, priority=24
            )
        zone_subnets[zone] = subnets
        for port_index in range(host_ports_per_zone):
            port = f"cust{port_index}"
            network.attach_host(zone, port, f"hosts_{zone}_{port}")
        # Default route: even zones prefer bbra, odd prefer bbrb.
        uplink = backbones[index % 2]
        network.add_forwarding_rule(
            zone, Match.any(), f"to_{uplink}", priority=0
        )

    # Backbone routes: /16 per zone, plus TE /24 exceptions to other zones.
    for backbone in backbones:
        for index, zone in enumerate(zones):
            network.add_forwarding_rule(
                backbone,
                Match.prefix("dst_ip", zone_net(index), 16),
                f"to_{zone}",
                priority=16,
            )
        for index, zone in enumerate(zones):
            for subnet in zone_subnets[zone]:
                if rng.random() >= te_fraction:
                    continue
                detour = rng.choice([z for z in zones if z != zone])
                network.add_forwarding_rule(
                    backbone,
                    Match.prefix("dst_ip", subnet, 24),
                    f"to_{detour}",
                    priority=24,
                )
    # Backbone-to-backbone transit for anything unknown is intentionally
    # absent: unallocated destinations are dropped, as in the real plane.

    # ACLs: deny a few source zones and blocked destination ports, then
    # permit the rest.  Lists come from a small template pool stamped onto
    # the customer ports of every other zone.
    templates: list[list[AclRule]] = []
    for _ in range(max(acl_templates, 1)):
        rules = []
        for _ in range(acl_rules_per_list - 1):
            if rng.random() < 0.5:
                blocked_zone = rng.randrange(ZONE_COUNT)
                rules.append(
                    AclRule(
                        Match.prefix("src_ip", zone_net(blocked_zone), 16),
                        permit=False,
                    )
                )
            else:
                port_value = rng.choice(_BLOCKED_PORTS)
                rules.append(
                    AclRule(
                        Match.prefix("dst_port", port_value, 16),
                        permit=False,
                    )
                )
        rules.append(AclRule(Match.any(), permit=True))
        templates.append(rules)
    for index, zone in enumerate(zones):
        if rng.random() >= acl_zone_fraction:
            continue
        for port_index in range(host_ports_per_zone):
            network.add_output_acl(
                zone, f"cust{port_index}", rng.choice(templates)
            )
    return network
