"""Generic synthetic networks: the paper's running example and a random
topology generator for stress/property testing."""

from __future__ import annotations

import random

from ..headerspace.fields import dst_ip_layout, parse_ipv4
from ..network.builder import Network
from ..network.rules import Match

__all__ = ["toy_network", "random_network"]


def toy_network() -> Network:
    """The running example of Fig. 1(c)/Fig. 3.

    Two boxes ``b1 -> b2``; ``p1`` = packets b1 forwards to host h1,
    ``p2`` = packets b1 forwards to b2, ``p3`` = packets b2 forwards to
    host h2.  ``p3`` straddles ``p1`` and ``p2``, producing the five
    non-empty atoms of Fig. 1(b) (plus the all-drop remainder class).
    """
    network = Network(dst_ip_layout(), name="toy")
    network.add_box("b1")
    network.add_box("b2")
    network.link("b1", "to_b2", "b2", "from_b1")
    network.attach_host("b1", "to_h1", "h1")
    network.attach_host("b2", "to_h2", "h2")

    def prefix(text: str, plen: int) -> Match:
        return Match.prefix("dst_ip", parse_ipv4(text), plen)

    # p1: b1 -> h1 for 10.1.0.0/16.
    network.add_forwarding_rule("b1", prefix("10.1.0.0", 16), "to_h1", priority=16)
    # p2: b1 -> b2 for 10.2.0.0/16.
    network.add_forwarding_rule("b1", prefix("10.2.0.0", 16), "to_b2", priority=16)
    # p3: b2 -> h2 for half of p1, half of p2, and 10.3.0.0/16.
    network.add_forwarding_rule("b2", prefix("10.1.0.0", 17), "to_h2", priority=17)
    network.add_forwarding_rule("b2", prefix("10.2.0.0", 17), "to_h2", priority=17)
    network.add_forwarding_rule("b2", prefix("10.3.0.0", 16), "to_h2", priority=16)
    return network


def random_network(
    boxes: int = 6,
    extra_links: int = 4,
    prefixes: int = 12,
    te_fraction: float = 0.3,
    seed: int = 0,
) -> Network:
    """A random connected dst-prefix network for property tests.

    Topology is a random spanning tree plus ``extra_links`` chords; each
    prefix is homed at a random box's host port and routed from everywhere
    along shortest paths; a fraction get /24 exceptions homed elsewhere.
    """
    if boxes < 2:
        raise ValueError("need at least two boxes")
    rng = random.Random(seed)
    network = Network(dst_ip_layout(), name=f"random-{seed}")
    names = [f"s{index}" for index in range(boxes)]
    for name in names:
        network.add_box(name)

    adjacency: dict[str, set[str]] = {name: set() for name in names}

    def connect(left: str, right: str) -> None:
        if right in adjacency[left] or left == right:
            return
        adjacency[left].add(right)
        adjacency[right].add(left)
        network.link(left, f"to_{right}", right, f"to_{left}")
        network.link(right, f"to_{left}", left, f"to_{right}")

    shuffled = names[:]
    rng.shuffle(shuffled)
    for index in range(1, len(shuffled)):
        connect(shuffled[index], rng.choice(shuffled[:index]))
    for _ in range(extra_links):
        connect(rng.choice(names), rng.choice(names))

    # Deterministic shortest-path next hops (BFS per destination).
    from collections import deque

    def next_hops(destination: str) -> dict[str, str]:
        parent = {destination: destination}
        queue = deque([destination])
        while queue:
            current = queue.popleft()
            for neighbor in sorted(adjacency[current]):
                if neighbor not in parent:
                    parent[neighbor] = current
                    queue.append(neighbor)
        return parent

    towards = {name: next_hops(name) for name in names}

    plan: list[tuple[int, int, str]] = []
    for index in range(prefixes):
        owner = rng.choice(names)
        value = (10 << 24) | ((index + 1) << 16)
        plan.append((value, 16, owner))
        if rng.random() < te_fraction:
            other = rng.choice([name for name in names if name != owner])
            plan.append((value | (rng.randrange(1, 255) << 8), 24, other))

    hosted: set[str] = set()
    for value, plen, owner in plan:
        if owner not in hosted:
            hosted.add(owner)
            network.attach_host(owner, "cust0", f"net_{owner}")
        for router in names:
            if router == owner:
                out_port = "cust0"
            else:
                out_port = f"to_{towards[owner][router]}"
            network.add_forwarding_rule(
                router, Match.prefix("dst_ip", value, plen), out_port, priority=plen
            )
    return network
