"""Data plane update workload generators (Sections VI and VII-E).

Two granularities:

* **rule-level** streams -- insert/withdraw forwarding rules on a live
  :class:`DataPlane`, the way an SDN controller actually changes state;
* **predicate-level** pools -- the abstraction Fig. 13/14 use directly
  (add/delete whole predicates), served by
  :class:`repro.core.reconstruction.DynamicSimulation`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..network.builder import Network
from ..network.rules import ForwardingRule, Match

__all__ = ["RuleUpdate", "rule_update_stream"]


@dataclass(frozen=True)
class RuleUpdate:
    """One rule-level event for a network box."""

    kind: str  # "insert" | "remove"
    box: str
    rule: ForwardingRule

    def __post_init__(self) -> None:
        if self.kind not in ("insert", "remove"):
            raise ValueError(f"unknown update kind {self.kind!r}")


def _churn_match(network: Network, rng: random.Random) -> tuple[Match, int]:
    """A random churn prefix at the network's destination-field width.

    IPv4 planes get /24 exceptions under 10.0.0.0/8 (the shape of BGP
    more-specific churn); IPv6 planes get the analogous /56 exceptions
    under 2001:db8::/32.  The two-draw rng sequence is identical either
    way, so pre-existing v4 streams replay bit-identically.
    """
    high = rng.randrange(1, 200)
    low = rng.randrange(1, 255)
    if "dst_ip6" in network.layout:
        value = (0x20010DB8 << 96) | (high << 80) | (low << 72)
        return Match.prefix("dst_ip6", value, 56), 56
    value = (10 << 24) | (high << 16) | (low << 8)
    return Match.prefix("dst_ip", value, 24), 24


def rule_update_stream(
    network: Network,
    count: int,
    rng: random.Random,
    insert_fraction: float = 0.5,
) -> list[RuleUpdate]:
    """A mixed insert/withdraw stream against an existing network.

    Inserts add more-specific exceptions (/24 under 10.0.0.0/8, or /56
    under 2001:db8::/32 on IPv6-width planes) pointing at an existing
    out port of the chosen box (a realistic BGP-churn shape); removals
    withdraw rules previously inserted by this stream, falling back to an
    insert when none remain.  The stream never withdraws the base plane's
    own rules, so it can be replayed against a fresh copy of the network.
    """
    boxes = sorted(network.boxes)
    inserted: list[RuleUpdate] = []
    stream: list[RuleUpdate] = []
    for _ in range(count):
        do_insert = rng.random() < insert_fraction or not inserted
        if do_insert:
            box = rng.choice(boxes)
            ports = network.box(box).table.out_ports()
            if not ports:
                continue
            match, plen = _churn_match(network, rng)
            rule = ForwardingRule(
                match,
                (rng.choice(ports),),
                priority=plen,
            )
            update = RuleUpdate("insert", box, rule)
            inserted.append(update)
            stream.append(update)
        else:
            victim = inserted.pop(rng.randrange(len(inserted)))
            stream.append(RuleUpdate("remove", victim.box, victim.rule))
    return stream
