"""Query workload generators.

The paper's query packets are "generated randomly with respect to the
atomic predicates" (Section VII-D): pick an atom, then a uniformly random
header inside it.  For Section VII-F the per-atom packet counts follow a
Pareto distribution (xm = 1, alpha = 1), making the trace heavily skewed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from ..core.atomic import AtomicUniverse
from ..headerspace.fields import HeaderLayout

__all__ = [
    "PacketTrace",
    "uniform_over_atoms",
    "pareto_over_atoms",
    "pareto_atom_counts",
    "random_headers",
    "zipf_over_headers",
]


@dataclass(frozen=True)
class PacketTrace:
    """A query trace: packed headers plus the atom each was drawn from."""

    headers: tuple[int, ...]
    atom_ids: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.headers) != len(self.atom_ids):
            raise ValueError("headers and atom_ids must align")

    def __len__(self) -> int:
        return len(self.headers)

    def atom_histogram(self) -> dict[int, int]:
        counts: dict[int, int] = {}
        for atom_id in self.atom_ids:
            counts[atom_id] = counts.get(atom_id, 0) + 1
        return counts


def uniform_over_atoms(
    universe: AtomicUniverse, count: int, rng: random.Random
) -> PacketTrace:
    """``count`` packets, atoms drawn uniformly (Section VII-D traces)."""
    atom_ids = sorted(universe.atom_ids())
    headers: list[int] = []
    chosen: list[int] = []
    for _ in range(count):
        atom_id = rng.choice(atom_ids)
        headers.append(universe.atom_fn(atom_id).random_sat(rng))
        chosen.append(atom_id)
    return PacketTrace(tuple(headers), tuple(chosen))


def pareto_atom_counts(
    universe: AtomicUniverse,
    rng: random.Random,
    base_packets: int = 1000,
    alpha: float = 1.0,
    xm: float = 1.0,
    cap: int = 50_000,
) -> dict[int, int]:
    """Per-atom packet counts from a Pareto(xm, alpha) draw.

    With the paper's xm = 1, alpha = 1: about half the atoms get the base
    1,000 packets and a heavy tail gets 20x that or more (Section VII-F).
    ``cap`` bounds the tail so a single draw cannot dominate a run.
    """
    counts: dict[int, int] = {}
    for atom_id in sorted(universe.atom_ids()):
        draw = xm / max(1.0 - rng.random(), 1e-12) ** (1.0 / alpha)
        counts[atom_id] = min(int(base_packets * draw), cap)
    return counts


def pareto_over_atoms(
    universe: AtomicUniverse,
    count: int,
    rng: random.Random,
    alpha: float = 1.0,
    xm: float = 1.0,
) -> PacketTrace:
    """``count`` packets with atoms weighted by a Pareto draw."""
    weights = pareto_atom_counts(universe, rng, alpha=alpha, xm=xm)
    atom_ids = sorted(weights)
    population = [weights[atom_id] for atom_id in atom_ids]
    chosen = rng.choices(atom_ids, weights=population, k=count)
    headers = [universe.atom_fn(atom_id).random_sat(rng) for atom_id in chosen]
    return PacketTrace(tuple(headers), tuple(chosen))


def random_headers(
    layout: HeaderLayout, count: int, rng: random.Random
) -> Sequence[int]:
    """Uniform headers over the whole space (no atom awareness)."""
    return [rng.getrandbits(layout.total_width) for _ in range(count)]


def zipf_over_headers(
    universe: AtomicUniverse,
    count: int,
    rng: random.Random,
    *,
    distinct: int = 1024,
    s: float = 1.0,
) -> PacketTrace:
    """``count`` packets repeating ``distinct`` headers Zipf(s)-ranked.

    The skew the hot-header result cache is built for: the Pareto trace
    above skews *atoms* but draws a fresh header inside the atom every
    time, so no exact header repeats.  Real query streams repeat exact
    flows; this trace fixes a population of ``distinct`` headers (atoms
    uniform, one concrete header each) and samples them with the
    classic Zipf weights ``1 / rank**s`` -- rank 1 dominates, the tail
    is long.  ``s = 1.0`` with 1024 distinct headers yields roughly a
    75% repeat rate per 10k queries.
    """
    if distinct < 1:
        raise ValueError("distinct must be >= 1")
    atom_ids = sorted(universe.atom_ids())
    population: list[int] = []
    population_atoms: list[int] = []
    for rank in range(distinct):
        atom_id = atom_ids[rank % len(atom_ids)]
        population.append(universe.atom_fn(atom_id).random_sat(rng))
        population_atoms.append(atom_id)
    weights = [1.0 / (rank + 1) ** s for rank in range(distinct)]
    picks = rng.choices(range(distinct), weights=weights, k=count)
    return PacketTrace(
        tuple(population[i] for i in picks),
        tuple(population_atoms[i] for i in picks),
    )
