"""Differential and what-if queries over classifier generations.

The artifact machinery makes classifier versions first-class; this module
answers the question those versions beg: **which packets changed
behavior?**  Two generations partition the same header space into two
atom universes; intersecting them (every non-empty before-atom x
after-atom overlap) yields the *common refinement* -- the coarsest
partition uniform in both generations.  Each overlap region is one
answer cell: behavior before, behavior after, the region's BDD, and its
exact header-count volume via BDD model counting.

Three pairings are supported, all through :func:`diff_generations`:

* **live + live** -- two classifiers sharing one BDD manager (the cheap
  path: intersections are direct ``apply_and`` calls);
* **artifact + artifact** -- two independently loaded generations with
  *separate* managers; one side's atoms are re-serialized into the other
  side's manager (:mod:`repro.bdd.serialize`), after which the sweep is
  exactly the shared-manager sweep.  Unlike the cube-witness fallback in
  :mod:`repro.core.delta`, this is exact for arbitrary planes;
* **live + shadow** -- :func:`what_if` forks a *shadow* classifier from a
  persistence snapshot (its own manager, its own tree), applies candidate
  rule changes through the incremental engine, and diffs against the
  untouched live generation.

Volumes are exact and additive: the overlap regions are pairwise
disjoint, so ``sum(entry.volume) == changed_volume`` counts precisely
the headers whose classification differs (property-tested against
brute-force enumeration on small universes).

Example::

    from repro.diff import diff_generations, what_if, parse_rule_spec
    report = diff_generations(before, after, ingress_box="SEAT")
    print(report.changed_volume, report.changed_share())
    box, rule = parse_rule_spec(
        "SEAT:dst_ip=10.3.0.0/24->to_SALT@24", before.dataplane.layout
    )
    answer = what_if(before, add=[(box, rule)], ingress_box="SEAT")
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field

from .bdd.function import Function
from .bdd.serialize import dump_nodes_flat, load_nodes_flat
from .core.behavior import Behavior
from .core.classifier import APClassifier
from .core.delta import diff_behaviors, first_divergence
from .headerspace.fields import HeaderLayout, format_ipv4, parse_ipv4
from .network.rules import ForwardingRule, Match

__all__ = [
    "ChangedClass",
    "GenerationDiff",
    "WhatIfReport",
    "diff_generations",
    "fork_shadow",
    "what_if",
    "parse_rule_spec",
    "format_rule_spec",
]


# ----------------------------------------------------------------------
# Report structures
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ChangedClass:
    """One cell of the common refinement whose behavior changed.

    ``region`` lives in the *before* generation's manager; ``volume`` is
    its exact model count over the full header width.
    """

    before_atom: int
    after_atom: int
    region: Function
    volume: int
    witness: int
    before: Behavior
    after: Behavior
    diverges_at: str | None

    def to_json(self, layout: HeaderLayout, total_volume: int) -> dict:
        return {
            "before_atom": self.before_atom,
            "after_atom": self.after_atom,
            "volume": self.volume,
            "share": self.volume / total_volume,
            "witness": self.witness,
            "witness_fields": _witness_fields(layout, self.witness),
            "before": _behavior_json(self.before),
            "after": _behavior_json(self.after),
            "diverges_at": self.diverges_at,
        }


@dataclass
class GenerationDiff:
    """The full answer to "which packets changed behavior?".

    ``entries`` are pairwise-disjoint regions (cells of the common
    refinement of the two atom universes), so ``changed_volume`` is their
    exact sum and ``changed_share()`` the fraction of the header space
    whose behavior from ``ingress`` differs between the generations.
    """

    ingress: str
    num_vars: int
    total_volume: int
    changed_volume: int
    entries: list[ChangedClass]
    atoms_before: int
    atoms_after: int
    pairs_examined: int
    cross_manager: bool
    elapsed_s: float
    sat_count_s: float
    transfer_s: float
    layout: HeaderLayout = field(repr=False, compare=False, default=None)

    @property
    def is_empty(self) -> bool:
        """True iff no packet class changed behavior."""
        return not self.entries

    def changed_share(self) -> float:
        """Fraction of the header space whose behavior changed."""
        return self.changed_volume / self.total_volume

    def to_json(self, limit: int | None = None) -> dict:
        """Strict-JSON report (no NaN/Infinity; plain types only).

        ``limit`` caps the per-class entries (the summary counters always
        cover the full diff); ``classes_truncated`` says how many were cut.
        """
        entries = self.entries if limit is None else self.entries[:limit]
        return {
            "ingress": self.ingress,
            "num_vars": self.num_vars,
            "total_volume": self.total_volume,
            "changed_volume": self.changed_volume,
            "changed_share": self.changed_share(),
            "changed_classes": len(self.entries),
            "classes_truncated": len(self.entries) - len(entries),
            "atoms_before": self.atoms_before,
            "atoms_after": self.atoms_after,
            "pairs_examined": self.pairs_examined,
            "cross_manager": self.cross_manager,
            "elapsed_s": self.elapsed_s,
            "sat_count_s": self.sat_count_s,
            "transfer_s": self.transfer_s,
            "classes": [
                entry.to_json(self.layout, self.total_volume)
                for entry in entries
            ],
        }


@dataclass
class WhatIfReport:
    """A :func:`what_if` answer: the shadow's diff plus fork accounting."""

    diff: GenerationDiff
    applied: list[str]
    shadow_build_s: float
    apply_s: float

    def to_json(self, limit: int | None = None) -> dict:
        payload = self.diff.to_json(limit)
        payload["applied"] = list(self.applied)
        payload["shadow_build_s"] = self.shadow_build_s
        payload["apply_s"] = self.apply_s
        return payload


# ----------------------------------------------------------------------
# The diff sweep
# ----------------------------------------------------------------------


def diff_generations(
    before: APClassifier,
    after: APClassifier,
    ingress_box: str,
    in_port: str | None = None,
    *,
    rng: random.Random | None = None,
    recorder=None,
) -> GenerationDiff:
    """Diff two classifier generations from one ingress point.

    Enumerates every non-empty intersection of a before-atom with an
    after-atom (the common refinement of the two universes), computes
    each side's behavior once per atom, and reports every region whose
    behavior observably differs together with its exact sat-count
    volume.  When the generations live in different BDD managers (two
    loaded artifacts, or a live classifier against a loaded one), the
    after side's atoms are transferred into the before manager by
    re-serialization first -- the sweep itself is always exact.

    The sweep is guided by the before generation's own stage-1
    classifier rather than testing all ``atoms_before x atoms_after``
    pairs: each after-atom is *peeled* -- pick a witness header of what
    remains uncovered, classify it through the before AP tree to find
    the (unique) before-atom containing it, emit that overlap, subtract
    it, repeat.  Atoms partition the space, so the loop runs exactly
    once per non-empty pair: the cost is O(pairs x tree depth) instead
    of O(atoms^2), which is what makes diffing thousand-atom
    generations serveable online.

    ``rng`` picks witness headers inside changed regions (deterministic
    ``first_sat`` when omitted).  ``recorder`` is an optional
    :class:`repro.obs.Recorder`; the comparison lands in its ``diff``
    section.
    """
    if before.dataplane.layout != after.dataplane.layout:
        raise ValueError(
            "cannot diff generations over different header layouts"
        )
    started = time.perf_counter()
    manager = before.dataplane.manager
    cross_manager = manager is not after.dataplane.manager
    before_atoms = sorted(before.universe.atoms().items())
    after_atoms = sorted(after.universe.atoms().items())

    transfer_s = 0.0
    if cross_manager:
        transfer_started = time.perf_counter()
        flat, offsets = dump_nodes_flat(
            after.dataplane.manager, [fn.node for _, fn in after_atoms]
        )
        transferred = load_nodes_flat(manager, flat, offsets)
        after_atoms = [
            (atom_id, Function(manager, node))
            for (atom_id, _), node in zip(after_atoms, transferred)
        ]
        transfer_s = time.perf_counter() - transfer_started

    before_fns = dict(before_atoms)
    before_cache: dict[int, Behavior] = {}
    after_cache: dict[int, Behavior] = {}
    entries: list[ChangedClass] = []
    pairs_examined = 0
    changed_volume = 0
    sat_count_s = 0.0
    for after_id, after_fn in after_atoms:
        # Peel the after-atom: whatever part of it is not yet accounted
        # for, a witness header of that part names (via the before AP
        # tree) the unique before-atom covering it.  Before-atoms
        # partition the space, so ``remaining`` strictly shrinks and
        # the loop body runs exactly once per non-empty overlap.
        remaining = after_fn
        while not remaining.is_false:
            witness = remaining.first_sat()
            before_id = before.classify(witness)
            before_fn = before_fns[before_id]
            overlap = remaining & before_fn
            remaining = remaining & ~before_fn
            pairs_examined += 1
            before_behavior = before_cache.get(before_id)
            if before_behavior is None:
                before_behavior = before_cache[before_id] = (
                    before.behavior_of_atom(before_id, ingress_box, in_port)
                )
            after_behavior = after_cache.get(after_id)
            if after_behavior is None:
                after_behavior = after_cache[after_id] = (
                    after.behavior_of_atom(after_id, ingress_box, in_port)
                )
            if not diff_behaviors(before_behavior, after_behavior):
                continue
            counting_started = time.perf_counter()
            volume = overlap.sat_count()
            sat_count_s += time.perf_counter() - counting_started
            changed_volume += volume
            entries.append(
                ChangedClass(
                    before_atom=before_id,
                    after_atom=after_id,
                    region=overlap,
                    volume=volume,
                    witness=(
                        overlap.random_sat(rng) if rng is not None else witness
                    ),
                    before=before_behavior,
                    after=after_behavior,
                    diverges_at=first_divergence(
                        before_behavior, after_behavior
                    ),
                )
            )
    # Largest change first: the report's head is its headline.
    entries.sort(key=lambda entry: (-entry.volume, entry.before_atom))
    report = GenerationDiff(
        ingress=ingress_box,
        num_vars=manager.num_vars,
        total_volume=1 << manager.num_vars,
        changed_volume=changed_volume,
        entries=entries,
        atoms_before=len(before_atoms),
        atoms_after=len(after_atoms),
        pairs_examined=pairs_examined,
        cross_manager=cross_manager,
        elapsed_s=time.perf_counter() - started,
        sat_count_s=sat_count_s,
        transfer_s=transfer_s,
        layout=before.dataplane.layout,
    )
    if recorder is not None:
        recorder.diff.record_comparison(
            pairs=pairs_examined,
            changed=len(entries),
            share=report.changed_share(),
            sat_count_s=sat_count_s,
        )
    return report


# ----------------------------------------------------------------------
# What-if: shadow forks
# ----------------------------------------------------------------------


def fork_shadow(classifier: APClassifier, *, recorder=None) -> APClassifier:
    """Fork an isolated shadow of a live classifier.

    The shadow round-trips through the persistence snapshot, so it owns a
    fresh BDD manager, network, and tree -- nothing is shared with (and
    nothing can leak back into) the live generation.  It comes up on the
    incremental maintenance engine, ready to absorb candidate rule
    changes atom-by-atom without full rebuilds.
    """
    from . import persist  # deferred: persist imports the classifier stack

    started = time.perf_counter()
    shadow = persist.classifier_from_json(persist.classifier_to_json(classifier))
    shadow.set_maintenance("incremental")
    if recorder is not None:
        recorder.diff.record_shadow_build(time.perf_counter() - started)
    return shadow


def what_if(
    classifier: APClassifier,
    ingress_box: str,
    *,
    add: list[tuple[str, ForwardingRule]] = (),
    remove: list[tuple[str, ForwardingRule]] = (),
    in_port: str | None = None,
    rng: random.Random | None = None,
    recorder=None,
) -> WhatIfReport:
    """Answer "what would change if these rules were applied?".

    Candidate changes are applied to a shadow fork (:func:`fork_shadow`)
    -- the live ``classifier`` is never touched, bit for bit -- and the
    shadow is diffed against the live generation.  ``add``/``remove``
    are ``(box, rule)`` pairs; build them directly or via
    :func:`parse_rule_spec`.
    """
    if not add and not remove:
        raise ValueError("what_if needs at least one rule to add or remove")
    started = time.perf_counter()
    shadow = fork_shadow(classifier, recorder=recorder)
    shadow_build_s = time.perf_counter() - started

    applied: list[str] = []
    apply_started = time.perf_counter()
    for box, rule in add:
        shadow.insert_rule(box, rule)
        applied.append(f"+{format_rule_spec(box, rule, shadow.dataplane.layout)}")
    for box, rule in remove:
        shadow.remove_rule(box, rule)
        applied.append(f"-{format_rule_spec(box, rule, shadow.dataplane.layout)}")
    apply_s = time.perf_counter() - apply_started

    report = diff_generations(
        classifier,
        shadow,
        ingress_box,
        in_port,
        rng=rng,
        recorder=recorder,
    )
    if recorder is not None:
        recorder.diff.record_whatif()
    return WhatIfReport(
        diff=report,
        applied=applied,
        shadow_build_s=shadow_build_s,
        apply_s=apply_s,
    )


# ----------------------------------------------------------------------
# Rule specs: the wire/CLI syntax for candidate changes
# ----------------------------------------------------------------------


def parse_rule_spec(spec: str, layout: HeaderLayout) -> tuple[str, ForwardingRule]:
    """Parse ``BOX:FIELD=VALUE/PLEN->PORT[,PORT...][@PRIO]`` into a rule.

    ``VALUE`` is dotted-quad for ``*_ip`` fields, decimal otherwise;
    ``->drop`` makes a drop rule; ``@PRIO`` defaults to the prefix
    length (the LPM convention).  Examples::

        SEAT:dst_ip=10.3.0.0/24->to_SALT
        b1:dst_ip=10.1.0.0/16->drop@99
    """
    head, arrow, action = spec.partition("->")
    if not arrow:
        raise ValueError(f"rule spec {spec!r} is missing '->ACTION'")
    box, colon, constraint = head.partition(":")
    if not colon or not box:
        raise ValueError(f"rule spec {spec!r} is missing 'BOX:'")
    field_name, equals, prefix_text = constraint.partition("=")
    if not equals or not field_name:
        raise ValueError(f"rule spec {spec!r} is missing 'FIELD=VALUE/PLEN'")
    if field_name not in layout:
        raise ValueError(
            f"rule spec {spec!r}: unknown field {field_name!r} "
            f"(layout has {layout.field_names()})"
        )
    value_text, slash, plen_text = prefix_text.partition("/")
    if not slash:
        raise ValueError(f"rule spec {spec!r} is missing '/PREFIXLEN'")
    try:
        if field_name.endswith("_ip"):
            value = parse_ipv4(value_text)
        else:
            value = int(value_text, 0)
        prefix_len = int(plen_text)
    except ValueError as exc:
        raise ValueError(f"rule spec {spec!r}: {exc}") from None
    width = layout.field(field_name).width
    if not 0 <= prefix_len <= width:
        raise ValueError(
            f"rule spec {spec!r}: prefix length {prefix_len} exceeds "
            f"field width {width}"
        )
    action, at, priority_text = action.partition("@")
    try:
        priority = int(priority_text) if at else prefix_len
    except ValueError:
        raise ValueError(
            f"rule spec {spec!r}: bad priority {priority_text!r}"
        ) from None
    if action == "drop":
        out_ports: tuple[str, ...] = ()
    elif action:
        out_ports = tuple(port for port in action.split(",") if port)
    else:
        raise ValueError(f"rule spec {spec!r} has an empty action")
    rule = ForwardingRule(
        Match.prefix(field_name, value, prefix_len), out_ports, priority
    )
    return box, rule


def format_rule_spec(
    box: str, rule: ForwardingRule, layout: HeaderLayout
) -> str:
    """Inverse of :func:`parse_rule_spec` for single-field prefix rules."""
    constraints = list(rule.match.constraints())
    if len(constraints) != 1:
        return f"{box}:{rule.describe()}"
    constraint = constraints[0]
    if constraint.field.endswith("_ip"):
        value_text = format_ipv4(constraint.value)
    else:
        value_text = str(constraint.value)
    action = ",".join(rule.out_ports) if rule.out_ports else "drop"
    return (
        f"{box}:{constraint.field}={value_text}/{constraint.prefix_len}"
        f"->{action}@{rule.priority}"
    )


# ----------------------------------------------------------------------
# JSON helpers
# ----------------------------------------------------------------------


def _behavior_json(behavior: Behavior) -> dict:
    """A behavior's observable summary as plain JSON types."""
    return {
        "paths": [list(path) for path in behavior.paths()],
        "delivered": sorted(behavior.delivered_hosts()),
        "dropped_everywhere": behavior.is_dropped_everywhere,
        "has_loop": behavior.has_loop,
    }


def _witness_fields(layout: HeaderLayout, witness: int) -> dict:
    """Per-field view of a witness header, IPs rendered dotted-quad."""
    values = layout.unpack(witness)
    return {
        name: format_ipv4(value) if name.endswith("_ip") else value
        for name, value in values.items()
    }
