"""Packet header model and ternary header-space algebra.

Provides the header layouts used by every predicate in the library, the
:class:`Packet` query type, and the wildcard algebra backing the Header
Space Analysis baseline.
"""

from .fields import (
    HeaderField,
    HeaderLayout,
    dst_ip6_layout,
    dst_ip_layout,
    five_tuple6_layout,
    five_tuple_layout,
    format_ipv4,
    format_ipv6,
    parse_ipv4,
    parse_ipv6,
)
from .header import Packet
from .wildcard import Wildcard, WildcardSet

__all__ = [
    "HeaderField",
    "HeaderLayout",
    "Packet",
    "Wildcard",
    "WildcardSet",
    "dst_ip_layout",
    "five_tuple_layout",
    "dst_ip6_layout",
    "five_tuple6_layout",
    "parse_ipv4",
    "format_ipv4",
    "parse_ipv6",
    "format_ipv6",
]
