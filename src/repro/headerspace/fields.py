"""Packet header field layouts.

The paper models each packet as a fixed-size header "including all fields
that are evaluated by forwarding tables and ACLs" (Section III).  A
:class:`HeaderLayout` fixes which fields exist, their widths, and their bit
offsets; every BDD variable index and every wildcard bit position in the
library is interpreted against one layout.

Bit numbering: variable/bit 0 is the most significant bit of the first
field.  A packed header is therefore a plain integer that compares and
prints naturally.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

__all__ = [
    "HeaderField",
    "HeaderLayout",
    "dst_ip_layout",
    "five_tuple_layout",
    "dst_ip6_layout",
    "five_tuple6_layout",
    "parse_ipv4",
    "format_ipv4",
    "parse_ipv6",
    "format_ipv6",
]


def parse_ipv4(text: str) -> int:
    """Parse dotted-quad IPv4 text into a 32-bit integer."""
    parts = text.split(".")
    if len(parts) != 4:
        raise ValueError(f"invalid IPv4 address: {text!r}")
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError(f"invalid IPv4 octet in {text!r}")
        value = (value << 8) | octet
    return value


def format_ipv4(value: int) -> str:
    """Format a 32-bit integer as dotted-quad IPv4 text."""
    if not 0 <= value < 1 << 32:
        raise ValueError(f"IPv4 value out of range: {value}")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def parse_ipv6(text: str) -> int:
    """Parse IPv6 text (with ``::`` compression) into a 128-bit integer."""
    if text.count("::") > 1:
        raise ValueError(f"invalid IPv6 address (multiple '::'): {text!r}")

    def parse_groups(part: str) -> list[int]:
        if not part:
            return []
        groups = []
        for token in part.split(":"):
            if not token or len(token) > 4:
                raise ValueError(f"invalid IPv6 group in {text!r}")
            groups.append(int(token, 16))
        return groups

    if "::" in text:
        head_text, _, tail_text = text.partition("::")
        head = parse_groups(head_text)
        tail = parse_groups(tail_text)
        missing = 8 - len(head) - len(tail)
        if missing < 1:
            raise ValueError(f"invalid IPv6 '::' expansion in {text!r}")
        groups = head + [0] * missing + tail
    else:
        groups = parse_groups(text)
        if len(groups) != 8:
            raise ValueError(f"IPv6 address needs 8 groups: {text!r}")
    value = 0
    for group in groups:
        if not 0 <= group <= 0xFFFF:
            raise ValueError(f"IPv6 group out of range in {text!r}")
        value = (value << 16) | group
    return value


def format_ipv6(value: int) -> str:
    """Format a 128-bit integer as IPv6 text (longest zero run compressed)."""
    if not 0 <= value < 1 << 128:
        raise ValueError(f"IPv6 value out of range: {value}")
    groups = [(value >> (112 - 16 * index)) & 0xFFFF for index in range(8)]
    # Find the longest run of zero groups (length >= 2) to compress.
    best_start, best_len = -1, 1
    index = 0
    while index < 8:
        if groups[index] == 0:
            run_start = index
            while index < 8 and groups[index] == 0:
                index += 1
            run_len = index - run_start
            if run_len > best_len:
                best_start, best_len = run_start, run_len
        else:
            index += 1
    if best_start < 0:
        return ":".join(f"{group:x}" for group in groups)
    head = ":".join(f"{group:x}" for group in groups[:best_start])
    tail = ":".join(f"{group:x}" for group in groups[best_start + best_len:])
    return f"{head}::{tail}"


@dataclass(frozen=True)
class HeaderField:
    """One named field with a width in bits and a computed bit offset."""

    name: str
    width: int
    offset: int = 0

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ValueError(f"field {self.name!r} must have positive width")

    @property
    def max_value(self) -> int:
        return (1 << self.width) - 1


class HeaderLayout:
    """An ordered collection of fields defining the packet header format."""

    def __init__(self, fields: Iterable[tuple[str, int]]) -> None:
        offset = 0
        ordered: list[HeaderField] = []
        by_name: dict[str, HeaderField] = {}
        for name, width in fields:
            if name in by_name:
                raise ValueError(f"duplicate field name {name!r}")
            field = HeaderField(name, width, offset)
            ordered.append(field)
            by_name[name] = field
            offset += width
        if not ordered:
            raise ValueError("a header layout needs at least one field")
        self.fields: tuple[HeaderField, ...] = tuple(ordered)
        self._by_name = by_name
        self.total_width = offset

    def field(self, name: str) -> HeaderField:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(
                f"unknown field {name!r}; layout has {self.field_names()}"
            ) from None

    def field_names(self) -> list[str]:
        return [field.name for field in self.fields]

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __eq__(self, other: object) -> bool:
        return isinstance(other, HeaderLayout) and self.fields == other.fields

    def __hash__(self) -> int:
        return hash(self.fields)

    # ------------------------------------------------------------------
    # Packing
    # ------------------------------------------------------------------

    def pack(self, values: Mapping[str, int]) -> int:
        """Pack per-field values into one header integer.

        Unspecified fields default to zero; unknown names are an error.
        """
        header = 0
        for name in values:
            if name not in self._by_name:
                raise KeyError(f"unknown field {name!r}")
        for field in self.fields:
            value = values.get(field.name, 0)
            if not 0 <= value <= field.max_value:
                raise ValueError(
                    f"value {value} out of range for {field.name!r} "
                    f"(width {field.width})"
                )
            header = (header << field.width) | value
        return header

    def unpack(self, header: int) -> dict[str, int]:
        """Split a packed header back into per-field values."""
        if not 0 <= header < 1 << self.total_width:
            raise ValueError(f"header {header} out of range for layout")
        values: dict[str, int] = {}
        remaining = header
        for field in reversed(self.fields):
            values[field.name] = remaining & field.max_value
            remaining >>= field.width
        return values

    def extract(self, header: int, name: str) -> int:
        """Read a single field from a packed header."""
        field = self.field(name)
        shift = self.total_width - field.offset - field.width
        return (header >> shift) & field.max_value

    # ------------------------------------------------------------------
    # Bit positions (= BDD variable indices)
    # ------------------------------------------------------------------

    def bit_positions(self, name: str) -> range:
        """Variable indices covering field ``name``, MSB first."""
        field = self.field(name)
        return range(field.offset, field.offset + field.width)

    def exact_literals(self, name: str, value: int) -> dict[int, bool]:
        """Literals (var -> polarity) for ``field == value``."""
        field = self.field(name)
        if not 0 <= value <= field.max_value:
            raise ValueError(f"value {value} out of range for {name!r}")
        return {
            field.offset + i: bool((value >> (field.width - 1 - i)) & 1)
            for i in range(field.width)
        }

    def prefix_literals(self, name: str, value: int, prefix_len: int) -> dict[int, bool]:
        """Literals for the ``prefix_len`` most significant bits of a field.

        This is the shape of a longest-prefix-match rule: only the top
        ``prefix_len`` bits are constrained.
        """
        field = self.field(name)
        if not 0 <= prefix_len <= field.width:
            raise ValueError(
                f"prefix length {prefix_len} out of range for {name!r}"
            )
        return {
            field.offset + i: bool((value >> (field.width - 1 - i)) & 1)
            for i in range(prefix_len)
        }


def dst_ip_layout() -> HeaderLayout:
    """Destination-IP-only layout (Internet2-style pure LPM forwarding)."""
    return HeaderLayout([("dst_ip", 32)])


def five_tuple_layout() -> HeaderLayout:
    """Classic 5-tuple layout used when ACLs filter on transport fields."""
    return HeaderLayout(
        [
            ("src_ip", 32),
            ("dst_ip", 32),
            ("src_port", 16),
            ("dst_port", 16),
            ("proto", 8),
        ]
    )


def dst_ip6_layout() -> HeaderLayout:
    """Destination-only IPv6 layout (128-bit LPM forwarding)."""
    return HeaderLayout([("dst_ip6", 128)])


def five_tuple6_layout() -> HeaderLayout:
    """IPv6 5-tuple: 296 header bits; exercises the engine at full width."""
    return HeaderLayout(
        [
            ("src_ip6", 128),
            ("dst_ip6", 128),
            ("src_port", 16),
            ("dst_port", 16),
            ("proto", 8),
        ]
    )
