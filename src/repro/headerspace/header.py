"""Concrete packets: a packed header value interpreted through a layout."""

from __future__ import annotations

from .fields import (
    HeaderLayout,
    format_ipv4,
    format_ipv6,
    parse_ipv4,
    parse_ipv6,
)

__all__ = ["Packet"]


class Packet:
    """A fully specified packet header.

    Queries to AP Classifier are packets -- equivalently flows, since all
    packets agreeing on the evaluated header fields behave identically
    (Section III).  The header is stored packed, so BDD evaluation and
    wildcard matching never re-encode anything.
    """

    __slots__ = ("layout", "value")

    def __init__(self, layout: HeaderLayout, value: int) -> None:
        if not 0 <= value < 1 << layout.total_width:
            raise ValueError(f"header value {value} out of range for layout")
        self.layout = layout
        self.value = value

    @classmethod
    def of(cls, layout: HeaderLayout, **fields: int | str) -> "Packet":
        """Build a packet from keyword fields.

        IP-typed fields accept text: names ending in ``_ip`` parse as
        dotted-quad IPv4, names ending in ``_ip6`` as IPv6.
        """
        values: dict[str, int] = {}
        for name, raw in fields.items():
            if isinstance(raw, str):
                if name.endswith("_ip6"):
                    values[name] = parse_ipv6(raw)
                elif name.endswith("_ip"):
                    values[name] = parse_ipv4(raw)
                else:
                    raise TypeError(
                        f"string value only allowed for *_ip/_ip6 fields, "
                        f"got {name!r}"
                    )
            else:
                values[name] = raw
        return cls(layout, layout.pack(values))

    def field(self, name: str) -> int:
        return self.layout.extract(self.value, name)

    def fields(self) -> dict[str, int]:
        return self.layout.unpack(self.value)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Packet)
            and other.layout == self.layout
            and other.value == self.value
        )

    def __hash__(self) -> int:
        return hash((self.layout, self.value))

    def __repr__(self) -> str:
        parts = []
        for field in self.layout.fields:
            value = self.layout.extract(self.value, field.name)
            if field.name.endswith("_ip6") and field.width == 128:
                parts.append(f"{field.name}={format_ipv6(value)}")
            elif field.name.endswith("_ip") and field.width == 32:
                parts.append(f"{field.name}={format_ipv4(value)}")
            else:
                parts.append(f"{field.name}={value}")
        return f"Packet({', '.join(parts)})"
