"""Ternary wildcard algebra over packed headers.

This is the substrate of the Header Space Analysis baseline (Kazemian et
al., NSDI'12; the paper compares against its Hassel-C implementation in
Section VII-D).  A :class:`Wildcard` is a ternary string over ``width``
bits: each bit is 0, 1, or ``*``.  A :class:`WildcardSet` is a union of
wildcards, which is what HSA transfer functions propagate.

Representation: two integers, ``mask`` (1 = bit is cared about) and
``value`` (the cared bits; don't-care positions are forced to 0 so the
representation is canonical and hashable).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

__all__ = ["Wildcard", "WildcardSet", "range_to_prefixes"]


def range_to_prefixes(low: int, high: int, width: int) -> list[tuple[int, int]]:
    """Cover the inclusive integer range [low, high] with prefixes.

    Returns ``(value, prefix_len)`` pairs -- the classic TCAM range
    expansion (a range over a w-bit field needs at most ``2w - 2``
    prefixes). Used to turn ACL port ranges into prefix rules.
    """
    if width <= 0:
        raise ValueError("width must be positive")
    top = (1 << width) - 1
    if not 0 <= low <= high <= top:
        raise ValueError(f"invalid range [{low}, {high}] for width {width}")
    prefixes: list[tuple[int, int]] = []
    current = low
    while current <= high:
        # Largest power-of-two block aligned at `current` that fits.
        size = current & -current if current else 1 << width
        while current + size - 1 > high:
            size >>= 1
        prefix_len = width - size.bit_length() + 1
        prefixes.append((current, prefix_len))
        current += size
    return prefixes


@dataclass(frozen=True)
class Wildcard:
    """One ternary match over ``width`` bits."""

    width: int
    mask: int
    value: int

    def __post_init__(self) -> None:
        full = (1 << self.width) - 1
        if self.mask & ~full:
            raise ValueError("mask has bits outside the header width")
        if self.value & ~self.mask:
            raise ValueError("value has bits in don't-care positions")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def any(cls, width: int) -> "Wildcard":
        """The all-``*`` wildcard matching every header."""
        return cls(width, 0, 0)

    @classmethod
    def exact(cls, width: int, value: int) -> "Wildcard":
        full = (1 << width) - 1
        return cls(width, full, value & full)

    @classmethod
    def from_string(cls, text: str) -> "Wildcard":
        """Parse a ternary string like ``"10**1"`` (MSB first)."""
        mask = 0
        value = 0
        for ch in text:
            mask <<= 1
            value <<= 1
            if ch == "1":
                mask |= 1
                value |= 1
            elif ch == "0":
                mask |= 1
            elif ch not in ("*", "x", "X"):
                raise ValueError(f"invalid ternary character {ch!r}")
        return cls(len(text), mask, value)

    @classmethod
    def from_prefix(
        cls, width: int, offset: int, field_width: int, value: int, prefix_len: int
    ) -> "Wildcard":
        """Wildcard constraining the top ``prefix_len`` bits of one field.

        ``offset`` is the field's bit offset from the MSB of the header,
        mirroring :meth:`HeaderLayout.prefix_literals`.
        """
        if not 0 <= prefix_len <= field_width:
            raise ValueError(f"prefix length {prefix_len} out of range")
        field_mask = ((1 << prefix_len) - 1) << (field_width - prefix_len)
        shift = width - offset - field_width
        return cls(width, field_mask << shift, (value & field_mask) << shift)

    # ------------------------------------------------------------------
    # Core algebra
    # ------------------------------------------------------------------

    def matches(self, header: int) -> bool:
        return (header & self.mask) == self.value

    def intersect(self, other: "Wildcard") -> "Wildcard | None":
        """Ternary intersection, or ``None`` when empty."""
        self._check(other)
        common = self.mask & other.mask
        if (self.value ^ other.value) & common:
            return None
        return Wildcard(
            self.width, self.mask | other.mask, self.value | other.value
        )

    def is_subset(self, other: "Wildcard") -> bool:
        """True iff every header matched by ``self`` is matched by ``other``."""
        self._check(other)
        if other.mask & ~self.mask:
            return False
        return (self.value ^ other.value) & other.mask == 0

    def subtract(self, other: "Wildcard") -> list["Wildcard"]:
        """``self`` minus ``other`` as a disjoint list of wildcards.

        Standard HSA expansion: for each cared bit of ``other`` that is
        free or agreeing in ``self``, emit ``self`` with that bit flipped
        and all previous cared bits pinned to agreement.
        """
        overlap = self.intersect(other)
        if overlap is None:
            return [self]
        pieces: list[Wildcard] = []
        pinned_mask = self.mask
        pinned_value = self.value
        for position in range(self.width - 1, -1, -1):
            bit = 1 << position
            if not other.mask & bit:
                continue
            if self.mask & bit:
                # self already fixes this bit; if it disagrees we'd have had
                # no overlap, so it must agree -- nothing to emit here.
                continue
            flipped = (other.value ^ bit) & bit
            pieces.append(
                Wildcard(
                    self.width,
                    pinned_mask | bit,
                    (pinned_value & ~bit) | flipped,
                )
            )
            pinned_mask |= bit
            pinned_value = (pinned_value & ~bit) | (other.value & bit)
        return pieces

    def rewrite(self, rewrite_mask: int, rewrite_value: int) -> "Wildcard":
        """Force the bits in ``rewrite_mask`` to ``rewrite_value``.

        Models header modification (e.g. NAT): rewritten bits become cared
        and fixed; other bits are untouched.
        """
        full = (1 << self.width) - 1
        rewrite_mask &= full
        return Wildcard(
            self.width,
            self.mask | rewrite_mask,
            (self.value & ~rewrite_mask) | (rewrite_value & rewrite_mask),
        )

    def sample(self, rng) -> int:
        """A uniformly random matching header."""
        free = ((1 << self.width) - 1) & ~self.mask
        noise = rng.getrandbits(self.width) & free
        return self.value | noise

    def count(self) -> int:
        """Number of matching headers."""
        free_bits = self.width - bin(self.mask).count("1")
        return 1 << free_bits

    def _check(self, other: "Wildcard") -> None:
        if other.width != self.width:
            raise ValueError(
                f"width mismatch: {self.width} vs {other.width}"
            )

    def __str__(self) -> str:
        chars = []
        for position in range(self.width - 1, -1, -1):
            bit = 1 << position
            if not self.mask & bit:
                chars.append("*")
            elif self.value & bit:
                chars.append("1")
            else:
                chars.append("0")
        return "".join(chars)

    def __repr__(self) -> str:
        return f"Wildcard({str(self)})"


class WildcardSet:
    """A union of ternary wildcards (a header-space region).

    Kept as a simple list with subset-absorption on insert; exact
    minimization is NP-hard and unnecessary for the baseline's role here.
    """

    __slots__ = ("width", "_members")

    def __init__(self, width: int, members: Iterable[Wildcard] = ()) -> None:
        self.width = width
        self._members: list[Wildcard] = []
        for member in members:
            self.add(member)

    @classmethod
    def empty(cls, width: int) -> "WildcardSet":
        return cls(width)

    @classmethod
    def full(cls, width: int) -> "WildcardSet":
        return cls(width, [Wildcard.any(width)])

    def add(self, wildcard: Wildcard) -> None:
        if wildcard.width != self.width:
            raise ValueError("width mismatch")
        for member in self._members:
            if wildcard.is_subset(member):
                return
        self._members = [
            member for member in self._members if not member.is_subset(wildcard)
        ]
        self._members.append(wildcard)

    def matches(self, header: int) -> bool:
        return any(member.matches(header) for member in self._members)

    def intersect_wildcard(self, wildcard: Wildcard) -> "WildcardSet":
        result = WildcardSet(self.width)
        for member in self._members:
            overlap = member.intersect(wildcard)
            if overlap is not None:
                result.add(overlap)
        return result

    def subtract_wildcard(self, wildcard: Wildcard) -> "WildcardSet":
        result = WildcardSet(self.width)
        for member in self._members:
            for piece in member.subtract(wildcard):
                result.add(piece)
        return result

    def union(self, other: "WildcardSet") -> "WildcardSet":
        result = WildcardSet(self.width, self._members)
        for member in other._members:
            result.add(member)
        return result

    @property
    def is_empty(self) -> bool:
        return not self._members

    def __iter__(self) -> Iterator[Wildcard]:
        return iter(self._members)

    def __len__(self) -> int:
        return len(self._members)

    def __repr__(self) -> str:
        inner = ", ".join(str(member) for member in self._members[:4])
        if len(self._members) > 4:
            inner += f", ... ({len(self._members)} total)"
        return f"WildcardSet({inner})"
