"""Network model: boxes, rules, ACLs, topology, and predicate compilation.

Implements the model of Section III -- a directed graph of boxes whose
forwarding tables and ACLs are packet filters -- plus the conversion of
those filters to BDD predicates and the compiled :class:`DataPlane` view
that the core algorithms operate on.
"""

from .box import Box, PortRef
from .builder import Network
from .dataplane import (
    ACL_IN,
    ACL_OUT,
    FORWARD,
    DataPlane,
    LabeledPredicate,
    PredicateChange,
)
from .predicates import PredicateCompiler
from .parsers import (
    ParseError,
    parse_acl,
    parse_acl_line,
    parse_acl_rules,
    parse_route_line,
    parse_routes,
)
from .rules import DROP, AclRule, FieldMatch, ForwardingRule, Match
from .serialize import (
    load_network,
    network_from_json,
    network_to_json,
    save_network,
)
from .tables import Acl, ForwardingTable

__all__ = [
    "Box",
    "PortRef",
    "Network",
    "DataPlane",
    "LabeledPredicate",
    "PredicateChange",
    "PredicateCompiler",
    "Match",
    "FieldMatch",
    "ForwardingRule",
    "AclRule",
    "ForwardingTable",
    "Acl",
    "DROP",
    "FORWARD",
    "ACL_IN",
    "ACL_OUT",
    "network_to_json",
    "network_from_json",
    "save_network",
    "load_network",
    "ParseError",
    "parse_route_line",
    "parse_routes",
    "parse_acl_line",
    "parse_acl_rules",
    "parse_acl",
]
