"""Boxes: the forwarding devices of the network model.

"Box" is the paper's umbrella term for routers, switches, and functional
middleboxes (firewalls, NATs, IDSes).  A box has a forwarding table and
ports whose ingress/egress may be guarded by ACLs (Section III).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..headerspace.header import Packet
from .tables import Acl, ForwardingTable

__all__ = ["PortRef", "Box"]


@dataclass(frozen=True, order=True)
class PortRef:
    """A (box, port) pair -- one end of a link."""

    box: str
    port: str

    def __str__(self) -> str:
        return f"{self.box}:{self.port}"


class Box:
    """One forwarding device."""

    def __init__(
        self,
        name: str,
        table: ForwardingTable | None = None,
        input_acls: dict[str, Acl] | None = None,
        output_acls: dict[str, Acl] | None = None,
    ) -> None:
        if not name:
            raise ValueError("box name must be non-empty")
        self.name = name
        self.table = table if table is not None else ForwardingTable()
        self.input_acls: dict[str, Acl] = dict(input_acls or {})
        self.output_acls: dict[str, Acl] = dict(output_acls or {})

    def set_input_acl(self, port: str, acl: Acl) -> None:
        self.input_acls[port] = acl

    def set_output_acl(self, port: str, acl: Acl) -> None:
        self.output_acls[port] = acl

    def admits(self, packet: Packet, in_port: str) -> bool:
        """Does the ingress ACL on ``in_port`` (if any) permit the packet?"""
        acl = self.input_acls.get(in_port)
        return acl is None or acl.permits(packet)

    def emits(self, packet: Packet, out_port: str) -> bool:
        """Does the egress ACL on ``out_port`` (if any) permit the packet?"""
        acl = self.output_acls.get(out_port)
        return acl is None or acl.permits(packet)

    def forward(self, packet: Packet, in_port: str | None = None) -> tuple[str, ...]:
        """Full single-box semantics: ingress ACL, table lookup, egress ACLs.

        Returns the output ports the packet actually leaves on (empty if
        dropped anywhere).  This is the reference implementation that the
        predicate compilation must agree with -- tests enforce that.
        """
        if in_port is not None and not self.admits(packet, in_port):
            return ()
        ports = self.table.lookup(packet)
        return tuple(port for port in ports if self.emits(packet, port))

    def __repr__(self) -> str:
        acls = len(self.input_acls) + len(self.output_acls)
        return f"Box({self.name!r}, {len(self.table)} rules, {acls} ACLs)"
