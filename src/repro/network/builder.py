"""Network: the assembled model a user hands to AP Classifier."""

from __future__ import annotations

from typing import Iterable

from ..headerspace.fields import HeaderLayout
from .box import Box
from .rules import AclRule, ForwardingRule, Match
from .tables import Acl
from .topology import Topology

__all__ = ["Network"]


class Network:
    """A header layout, a set of boxes, and the topology connecting them.

    This is the mutable, user-facing model.  :meth:`compile` (on
    :class:`repro.network.dataplane.DataPlane`) freezes it into labeled BDD
    predicates for the verification algorithms.
    """

    def __init__(self, layout: HeaderLayout, name: str = "network") -> None:
        self.layout = layout
        self.name = name
        self.boxes: dict[str, Box] = {}
        self.topology = Topology()

    # ------------------------------------------------------------------
    # Construction API
    # ------------------------------------------------------------------

    def add_box(self, name: str) -> Box:
        if name in self.boxes:
            raise ValueError(f"box {name!r} already exists")
        box = Box(name)
        self.boxes[name] = box
        self.topology.register_box(name)
        return box

    def box(self, name: str) -> Box:
        try:
            return self.boxes[name]
        except KeyError:
            raise KeyError(f"unknown box {name!r}") from None

    def link(self, src_box: str, src_port: str, dst_box: str, dst_port: str) -> None:
        self._require(src_box)
        self._require(dst_box)
        self.topology.add_link(src_box, src_port, dst_box, dst_port)

    def attach_host(self, box: str, port: str, host: str) -> None:
        self._require(box)
        self.topology.attach_host(box, port, host)

    def add_forwarding_rule(
        self,
        box: str,
        match: Match,
        out_ports: Iterable[str] | str,
        priority: int,
    ) -> ForwardingRule:
        if isinstance(out_ports, str):
            out_ports = (out_ports,)
        rule = ForwardingRule(match, tuple(out_ports), priority)
        self.box(box).table.add(rule)
        return rule

    def add_input_acl(
        self, box: str, port: str, rules: Iterable[AclRule], default_permit: bool = False
    ) -> Acl:
        acl = Acl(rules, default_permit=default_permit)
        self.box(box).set_input_acl(port, acl)
        return acl

    def add_output_acl(
        self, box: str, port: str, rules: Iterable[AclRule], default_permit: bool = False
    ) -> Acl:
        acl = Acl(rules, default_permit=default_permit)
        self.box(box).set_output_acl(port, acl)
        return acl

    def _require(self, box: str) -> None:
        if box not in self.boxes:
            raise KeyError(f"unknown box {box!r}")

    # ------------------------------------------------------------------
    # Statistics (Table I quantities)
    # ------------------------------------------------------------------

    def rule_count(self) -> int:
        return sum(len(box.table) for box in self.boxes.values())

    def acl_rule_count(self) -> int:
        total = 0
        for box in self.boxes.values():
            total += sum(len(acl) for acl in box.input_acls.values())
            total += sum(len(acl) for acl in box.output_acls.values())
        return total

    def stats(self) -> dict[str, int]:
        return {
            "boxes": len(self.boxes),
            "links": sum(1 for _ in self.topology.links()),
            "hosts": sum(1 for _ in self.topology.hosts()),
            "forwarding_rules": self.rule_count(),
            "acl_rules": self.acl_rule_count(),
        }

    def __repr__(self) -> str:
        return (
            f"Network({self.name!r}, {len(self.boxes)} boxes, "
            f"{self.rule_count()} rules)"
        )
