"""DataPlane: the compiled, labeled predicate view of a network.

This is the handoff point between the network model and the verification
algorithms: every ACL and every forwarding-table output port becomes one
:class:`LabeledPredicate` with a stable integer id.  The set of all labeled
predicates is the set ``P = {p1 .. pk}`` of Sections IV-V.

The data plane also owns *update* semantics (Section VI-A): a rule
insertion or deletion is converted into predicate changes -- the predicates
whose function actually changed are retired and re-minted under fresh ids,
everything else is untouched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping, Sequence

from ..bdd import BDDManager, Function
from .box import Box
from .builder import Network
from .predicates import ACL_IN, ACL_OUT, FORWARD, PredicateCompiler
from .rules import ForwardingRule
from .tables import Acl

__all__ = ["DataPlane", "LabeledPredicate", "PredicateChange", "FORWARD", "ACL_IN", "ACL_OUT"]


@dataclass(frozen=True)
class LabeledPredicate:
    """One predicate of the data plane with its provenance.

    ``port`` is the output port for ``forward``/``acl_out`` predicates and
    the input port for ``acl_in`` predicates.
    """

    pid: int
    kind: str
    box: str
    port: str
    fn: Function

    def __repr__(self) -> str:
        return f"LabeledPredicate(pid={self.pid}, {self.kind} {self.box}:{self.port})"


@dataclass(frozen=True)
class PredicateChange:
    """One predicate-level effect of a data plane update."""

    removed: LabeledPredicate | None
    added: LabeledPredicate | None

    def __post_init__(self) -> None:
        if self.removed is None and self.added is None:
            raise ValueError("a change must remove or add something")


class DataPlane:
    """Compiled network state: labeled predicates plus lookup indexes."""

    def __init__(
        self,
        network: Network,
        manager: BDDManager | None = None,
        precompiled: Mapping[str, Sequence[tuple[str, str, Function]]] | None = None,
    ) -> None:
        self.network = network
        self.layout = network.layout
        self.compiler = PredicateCompiler(network.layout, manager)
        self.manager = self.compiler.manager
        self._next_pid = 0
        self._predicates: dict[int, LabeledPredicate] = {}
        # (kind, box, port) -> LabeledPredicate, for diffing on updates.
        self._by_slot: dict[tuple[str, str, str], LabeledPredicate] = {}
        # box -> {out_port -> forward predicate}; the stage-2 hot index.
        self._forward_by_box: dict[str, dict[str, LabeledPredicate]] = {
            name: {} for name in network.boxes
        }
        for box in network.boxes.values():
            if precompiled is not None:
                # Sharded conversion already compiled this box's functions
                # (into *this* manager); mint them in the canonical order
                # so pids match a serial compile exactly.
                for kind, port, fn in precompiled[box.name]:
                    if fn.manager is not self.manager:
                        raise ValueError(
                            "precompiled predicates must live in the data "
                            "plane's manager"
                        )
                    self._mint(kind, box.name, port, fn)
            else:
                self._compile_box(box)

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------

    def _mint(self, kind: str, box: str, port: str, fn: Function) -> LabeledPredicate:
        predicate = LabeledPredicate(self._next_pid, kind, box, port, fn)
        self._next_pid += 1
        self._predicates[predicate.pid] = predicate
        self._by_slot[(kind, box, port)] = predicate
        if kind == FORWARD:
            self._forward_by_box.setdefault(box, {})[port] = predicate
        return predicate

    def _compile_box(self, box: Box) -> None:
        for kind, port, fn in self.compiler.box_predicates(box):
            self._mint(kind, box.name, port, fn)

    # ------------------------------------------------------------------
    # Read access
    # ------------------------------------------------------------------

    def predicates(self) -> list[LabeledPredicate]:
        """All live predicates in ascending pid order."""
        return [self._predicates[pid] for pid in sorted(self._predicates)]

    def predicate(self, pid: int) -> LabeledPredicate:
        return self._predicates[pid]

    def __len__(self) -> int:
        return len(self._predicates)

    def forwarding_entries(self, box: str) -> list[LabeledPredicate]:
        """The ``forward`` predicates of one box (one per live out port)."""
        return list(self._forward_by_box.get(box, {}).values())

    def input_acl_predicate(self, box: str, port: str) -> LabeledPredicate | None:
        return self._by_slot.get((ACL_IN, box, port))

    def output_acl_predicate(self, box: str, port: str) -> LabeledPredicate | None:
        return self._by_slot.get((ACL_OUT, box, port))

    def iter_slots(self) -> Iterator[tuple[tuple[str, str, str], LabeledPredicate]]:
        return iter(self._by_slot.items())

    # ------------------------------------------------------------------
    # Updates (Section VI-A: rule change -> predicate change)
    # ------------------------------------------------------------------

    def insert_rule(self, box: str, rule: ForwardingRule) -> list[PredicateChange]:
        """Install a forwarding rule and report the predicate-level diff."""
        self.network.box(box).table.add(rule)
        return self._refresh_forwarding(box)

    def remove_rule(self, box: str, rule: ForwardingRule) -> list[PredicateChange]:
        """Remove a forwarding rule and report the predicate-level diff."""
        self.network.box(box).table.remove(rule)
        return self._refresh_forwarding(box)

    def set_input_acl(self, box: str, port: str, acl: Acl) -> list[PredicateChange]:
        self.network.box(box).set_input_acl(port, acl)
        return self._refresh_acl(ACL_IN, box, port, acl)

    def set_output_acl(self, box: str, port: str, acl: Acl) -> list[PredicateChange]:
        self.network.box(box).set_output_acl(port, acl)
        return self._refresh_acl(ACL_OUT, box, port, acl)

    def _refresh_forwarding(self, box: str) -> list[PredicateChange]:
        table = self.network.box(box).table
        fresh = {
            port: fn
            for port, fn in self.compiler.port_predicates(table).items()
            if not fn.is_false
        }
        changes: list[PredicateChange] = []
        stale_slots = [
            slot
            for slot in self._by_slot
            if slot[0] == FORWARD and slot[1] == box
        ]
        for slot in stale_slots:
            _, _, port = slot
            old = self._by_slot[slot]
            new_fn = fresh.pop(port, None)
            if new_fn is not None and new_fn.node == old.fn.node:
                continue  # unchanged; keep the pid (and any AP Tree node)
            del self._by_slot[slot]
            del self._predicates[old.pid]
            self._forward_by_box[box].pop(port, None)
            added = (
                self._mint(FORWARD, box, port, new_fn)
                if new_fn is not None
                else None
            )
            changes.append(PredicateChange(removed=old, added=added))
        for port, fn in fresh.items():  # brand-new ports
            changes.append(
                PredicateChange(removed=None, added=self._mint(FORWARD, box, port, fn))
            )
        return changes

    def _refresh_acl(
        self, kind: str, box: str, port: str, acl: Acl
    ) -> list[PredicateChange]:
        fn = self.compiler.acl_predicate(acl)
        old = self._by_slot.get((kind, box, port))
        if old is not None and old.fn.node == fn.node:
            return []
        if old is not None:
            del self._predicates[old.pid]
        added = self._mint(kind, box, port, fn)
        return [PredicateChange(removed=old, added=added)]

    def __repr__(self) -> str:
        return f"DataPlane({self.network.name!r}, {len(self)} predicates)"
