"""Longest-prefix-match trie: the classic FIB lookup structure.

:class:`ForwardingTable` keeps rules in a priority-sorted list, which is
the right general structure (rules may match several fields); but the
overwhelmingly common case -- every rule a single destination-prefix
match with priority == prefix length -- admits the textbook binary trie
with O(prefix length) lookups. :class:`PrefixTrie` implements it;
``ForwardingTable`` switches to it transparently when (and only when) its
rule set fits the LPM shape, and tests pin both paths to identical
results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["PrefixTrie"]


@dataclass
class _TrieNode:
    zero: "_TrieNode | None" = None
    one: "_TrieNode | None" = None
    #: Payload of the prefix terminating at this node (None = no route).
    value: object | None = None
    has_value: bool = False


class PrefixTrie:
    """Binary trie mapping prefixes of a ``width``-bit key to payloads."""

    def __init__(self, width: int) -> None:
        if width <= 0:
            raise ValueError("width must be positive")
        self.width = width
        self._root = _TrieNode()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def _walk_to(self, value: int, prefix_len: int, create: bool) -> _TrieNode | None:
        node = self._root
        for position in range(prefix_len):
            bit = (value >> (self.width - 1 - position)) & 1
            branch = "one" if bit else "zero"
            child = getattr(node, branch)
            if child is None:
                if not create:
                    return None
                child = _TrieNode()
                setattr(node, branch, child)
            node = child
        return node

    def insert(self, value: int, prefix_len: int, payload: object) -> None:
        """Map the prefix to ``payload`` (replacing an existing mapping)."""
        self._check(value, prefix_len)
        node = self._walk_to(value, prefix_len, create=True)
        assert node is not None
        if not node.has_value:
            self._size += 1
        node.value = payload
        node.has_value = True

    def remove(self, value: int, prefix_len: int) -> None:
        """Unmap a prefix; raises ``KeyError`` when absent."""
        self._check(value, prefix_len)
        node = self._walk_to(value, prefix_len, create=False)
        if node is None or not node.has_value:
            raise KeyError(f"prefix {value:#x}/{prefix_len} not present")
        node.value = None
        node.has_value = False
        self._size -= 1

    def lookup(self, key: int) -> object | None:
        """Longest-prefix match for a full-width key (None = no route)."""
        node = self._root
        best = node.value if node.has_value else None
        for position in range(self.width):
            bit = (key >> (self.width - 1 - position)) & 1
            node = node.one if bit else node.zero  # type: ignore[assignment]
            if node is None:
                break
            if node.has_value:
                best = node.value
        return best

    def get(self, value: int, prefix_len: int) -> object | None:
        """Exact-prefix read (not an LPM lookup)."""
        self._check(value, prefix_len)
        node = self._walk_to(value, prefix_len, create=False)
        return node.value if node is not None and node.has_value else None

    def items(self) -> Iterator[tuple[int, int, object]]:
        """Yield (value, prefix_len, payload) in lexicographic order."""

        def walk(node: _TrieNode, value: int, depth: int):
            if node.has_value:
                yield value << (self.width - depth), depth, node.value
            if node.zero is not None:
                yield from walk(node.zero, value << 1, depth + 1)
            if node.one is not None:
                yield from walk(node.one, (value << 1) | 1, depth + 1)

        yield from walk(self._root, 0, 0)

    def _check(self, value: int, prefix_len: int) -> None:
        if not 0 <= prefix_len <= self.width:
            raise ValueError(f"prefix length {prefix_len} out of range")
        if not 0 <= value < 1 << self.width:
            raise ValueError(f"value {value:#x} out of range")

    def __repr__(self) -> str:
        return f"PrefixTrie(width={self.width}, {self._size} prefixes)"
