"""Parsers for textual rule formats.

A deployable control-plane tool ingests device state as text. This module
parses two simple line formats into model objects:

**Route lines** (static-route style)::

    route 10.1.0.0/16 -> eth0
    route 10.2.0.0/16 -> eth1, eth2      # multicast to two ports
    route 0.0.0.0/0 drop                 # explicit discard

**ACL lines** (Cisco-flavored, 5-tuple subset)::

    permit ip any any
    deny   ip 10.1.0.0/16 any
    permit tcp any 171.64.0.0/14 eq 80
    deny   udp host 10.0.0.1 any
    deny   tcp any any range 6000 6063   # expands to prefix rules

Both parsers report precise errors with line numbers; blank lines and
``#`` comments are ignored. A ``range`` qualifier expands into the
minimal prefix cover (classic TCAM range expansion), so one text line may
yield several :class:`AclRule` objects.
"""

from __future__ import annotations

import re

from ..headerspace.fields import HeaderLayout, parse_ipv4
from ..headerspace.wildcard import range_to_prefixes
from .rules import AclRule, ForwardingRule, Match
from .tables import Acl, ForwardingTable

__all__ = [
    "ParseError",
    "parse_route_line",
    "parse_routes",
    "parse_acl_line",
    "parse_acl",
]

_PROTO_NUMBERS = {"ip": None, "tcp": 6, "udp": 17, "icmp": 1}


class ParseError(ValueError):
    """A malformed rule line, with position information."""

    def __init__(self, message: str, line_no: int | None = None) -> None:
        prefix = f"line {line_no}: " if line_no is not None else ""
        super().__init__(prefix + message)
        self.line_no = line_no


def _strip(line: str) -> str:
    return line.split("#", 1)[0].strip()


def _parse_prefix(token: str) -> tuple[int, int]:
    """``A.B.C.D/len`` -> (value, prefix_len)."""
    if "/" in token:
        address, _, length_text = token.partition("/")
        try:
            length = int(length_text)
        except ValueError:
            raise ParseError(f"invalid prefix length in {token!r}") from None
        if not 0 <= length <= 32:
            raise ParseError(f"prefix length out of range in {token!r}")
        return parse_ipv4(address), length
    return parse_ipv4(token), 32


# ----------------------------------------------------------------------
# Routes
# ----------------------------------------------------------------------

_ROUTE_RE = re.compile(
    r"^route\s+(?P<prefix>\S+)\s+(?:->\s*(?P<ports>\S.*)|(?P<drop>drop))$"
)


def parse_route_line(line: str, line_no: int | None = None) -> ForwardingRule:
    """Parse one route line into a :class:`ForwardingRule`."""
    text = _strip(line)
    matched = _ROUTE_RE.match(text)
    if not matched:
        raise ParseError(f"unrecognized route syntax: {text!r}", line_no)
    try:
        value, length = _parse_prefix(matched.group("prefix"))
    except ValueError as error:
        raise ParseError(str(error), line_no) from None
    if matched.group("drop"):
        out_ports: tuple[str, ...] = ()
    else:
        out_ports = tuple(
            port.strip() for port in matched.group("ports").split(",") if port.strip()
        )
        if not out_ports:
            raise ParseError("route needs at least one output port", line_no)
    match = Match.prefix("dst_ip", value, length) if length else Match.any()
    return ForwardingRule(match, out_ports, priority=length)


def parse_routes(text: str) -> ForwardingTable:
    """Parse a route document into a forwarding table (LPM priorities)."""
    table = ForwardingTable()
    for line_no, raw in enumerate(text.splitlines(), start=1):
        if not _strip(raw):
            continue
        table.add(parse_route_line(raw, line_no))
    return table


# ----------------------------------------------------------------------
# ACLs
# ----------------------------------------------------------------------


def _parse_endpoint(tokens: list[str], line_no: int | None) -> tuple[int, int] | None:
    """Consume one address spec: ``any`` | ``host A.B.C.D`` | prefix."""
    if not tokens:
        raise ParseError("missing address specification", line_no)
    head = tokens.pop(0)
    if head == "any":
        return None
    if head == "host":
        if not tokens:
            raise ParseError("'host' needs an address", line_no)
        return parse_ipv4(tokens.pop(0)), 32
    try:
        return _parse_prefix(head)
    except ValueError as error:
        raise ParseError(str(error), line_no) from None


def _parse_port_int(tokens: list[str], what: str, line_no: int | None) -> int:
    if not tokens:
        raise ParseError(f"{what} needs a port number", line_no)
    try:
        port_value = int(tokens.pop(0))
    except ValueError:
        raise ParseError(f"{what} port must be an integer", line_no) from None
    if not 0 <= port_value <= 0xFFFF:
        raise ParseError(f"{what} port out of range", line_no)
    return port_value


def parse_acl_rules(
    line: str, layout: HeaderLayout, line_no: int | None = None
) -> list[AclRule]:
    """Parse one ACL line; ``range`` qualifiers expand to several rules."""
    text = _strip(line)
    tokens = text.split()
    if len(tokens) < 2:
        raise ParseError(f"unrecognized ACL syntax: {text!r}", line_no)
    action = tokens.pop(0)
    if action not in ("permit", "deny"):
        raise ParseError(f"action must be permit/deny, got {action!r}", line_no)
    permit = action == "permit"
    proto_name = tokens.pop(0)
    if proto_name not in _PROTO_NUMBERS:
        raise ParseError(f"unknown protocol {proto_name!r}", line_no)

    match = Match.any()
    proto = _PROTO_NUMBERS[proto_name]
    if proto is not None:
        if "proto" not in layout:
            raise ParseError(
                f"layout has no 'proto' field for protocol {proto_name!r}", line_no
            )
        match = match.with_prefix("proto", proto, layout.field("proto").width)

    source = _parse_endpoint(tokens, line_no)
    if source is not None:
        if "src_ip" not in layout:
            raise ParseError("layout has no 'src_ip' field", line_no)
        match = match.with_prefix("src_ip", source[0], source[1])
    destination = _parse_endpoint(tokens, line_no)
    if destination is not None:
        match = match.with_prefix("dst_ip", destination[0], destination[1])

    port_prefixes: list[tuple[int, int]] | None = None
    if tokens:
        qualifier = tokens.pop(0)
        if qualifier == "eq":
            value = _parse_port_int(tokens, "'eq'", line_no)
            port_prefixes = [(value, 16)]
        elif qualifier == "range":
            low = _parse_port_int(tokens, "'range'", line_no)
            high = _parse_port_int(tokens, "'range'", line_no)
            if low > high:
                raise ParseError("'range' low exceeds high", line_no)
            port_prefixes = range_to_prefixes(low, high, 16)
        else:
            raise ParseError(f"unsupported qualifier {qualifier!r}", line_no)
        if "dst_port" not in layout:
            raise ParseError("layout has no 'dst_port' field", line_no)
    if tokens:
        raise ParseError(f"trailing tokens: {' '.join(tokens)!r}", line_no)

    if port_prefixes is None:
        return [AclRule(match, permit=permit)]
    # range_to_prefixes returns aligned block starts: already full-width
    # field values with the don't-care low bits zero.
    return [
        AclRule(match.with_prefix("dst_port", value, plen), permit=permit)
        for value, plen in port_prefixes
    ]


def parse_acl_line(
    line: str, layout: HeaderLayout, line_no: int | None = None
) -> AclRule:
    """Parse one ACL line that must yield exactly one rule."""
    rules = parse_acl_rules(line, layout, line_no)
    if len(rules) != 1:
        raise ParseError(
            "line expands to multiple rules; use parse_acl_rules", line_no
        )
    return rules[0]


def parse_acl(
    text: str, layout: HeaderLayout, default_permit: bool = False
) -> Acl:
    """Parse an ACL document (first-match order preserved)."""
    acl = Acl(default_permit=default_permit)
    for line_no, raw in enumerate(text.splitlines(), start=1):
        if not _strip(raw):
            continue
        for rule in parse_acl_rules(raw, layout, line_no):
            acl.append(rule)
    return acl
