"""Compiling rules to BDD predicates.

Section III: "Forwarding tables and ACLs can be converted to predicates
using the algorithms in [22]".  This module implements those conversions:

* an ACL becomes one predicate -- true exactly for the packets it permits;
* a forwarding table becomes one predicate per output port -- true exactly
  for the packets the table sends to that port, honoring rule priority
  (higher-priority rules shadow lower ones).
"""

from __future__ import annotations

from ..bdd import BDDManager, Function
from ..headerspace.fields import HeaderLayout
from .box import Box
from .rules import Match
from .tables import Acl, ForwardingTable

__all__ = ["PredicateCompiler", "FORWARD", "ACL_IN", "ACL_OUT"]

#: Predicate kinds, shared with :mod:`repro.network.dataplane` (defined
#: here so worker processes can compile boxes without importing it).
FORWARD = "forward"
ACL_IN = "acl_in"
ACL_OUT = "acl_out"


class PredicateCompiler:
    """Translates matches, ACLs, and forwarding tables into BDD predicates.

    One compiler owns one :class:`BDDManager`; every predicate of a data
    plane must come from the same compiler so that hash-consing makes
    function equality an integer comparison.
    """

    def __init__(self, layout: HeaderLayout, manager: BDDManager | None = None) -> None:
        self.layout = layout
        self.manager = manager if manager is not None else BDDManager(layout.total_width)
        if self.manager.num_vars != layout.total_width:
            raise ValueError(
                f"manager has {self.manager.num_vars} variables but layout "
                f"needs {layout.total_width}"
            )
        self._true = Function.true(self.manager)
        self._false = Function.false(self.manager)

    @property
    def true(self) -> Function:
        return self._true

    @property
    def false(self) -> Function:
        return self._false

    def match_predicate(self, match: Match) -> Function:
        """The set of packets matching a rule body, as a cube."""
        return Function.cube(self.manager, match.to_literals(self.layout))

    def acl_predicate(self, acl: Acl) -> Function:
        """Packets permitted by a first-match ACL.

        Walks rules in match order keeping ``covered`` (packets decided by
        some earlier rule).  A permit rule contributes its match minus
        ``covered``; packets matching nothing fall to the default action.
        """
        permitted = self._false
        covered = self._false
        for rule in acl:
            body = self.match_predicate(rule.match)
            if rule.permit:
                permitted = permitted | (body - covered)
            covered = covered | body
        if acl.default_permit:
            permitted = permitted | ~covered
        return permitted

    def port_predicates(self, table: ForwardingTable) -> dict[str, Function]:
        """Per-output-port forwarding predicates.

        Iterates rules in descending priority, accumulating ``covered``;
        each rule's effective region is its match minus everything a
        higher-priority rule already claimed.  Packets matching no rule are
        dropped (they appear in no port predicate).  Multicast rules
        contribute their region to every listed port.
        """
        predicates: dict[str, Function] = {
            port: self._false for port in table.out_ports()
        }
        covered = self._false
        for rule in table:
            body = self.match_predicate(rule.match)
            effective = body - covered
            if not effective.is_false:
                for port in rule.out_ports:
                    predicates[port] = predicates[port] | effective
            covered = covered | body
        return predicates

    def box_predicates(self, box: Box) -> list[tuple[str, str, Function]]:
        """Every labeled predicate of one box as ``(kind, port, fn)``.

        This is *the* canonical per-box compile order -- forwarding ports
        (false ports skipped), then input ACLs, then output ACLs -- shared
        by :class:`repro.network.dataplane.DataPlane` and the sharded
        conversion workers so both assign identical pids.
        """
        compiled: list[tuple[str, str, Function]] = []
        for port, fn in self.port_predicates(box.table).items():
            if not fn.is_false:
                compiled.append((FORWARD, port, fn))
        for port, acl in box.input_acls.items():
            compiled.append((ACL_IN, port, self.acl_predicate(acl)))
        for port, acl in box.output_acls.items():
            compiled.append((ACL_OUT, port, self.acl_predicate(acl)))
        return compiled
