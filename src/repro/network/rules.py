"""Rules and matches: the raw contents of forwarding tables and ACLs.

A :class:`Match` is a conjunction of per-field prefix constraints (an exact
match is a full-width prefix; an absent field is unconstrained).  This
covers both dst-prefix forwarding rules and 5-tuple ACL rules, the two rule
shapes in the paper's datasets (Table I).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping

from ..headerspace.fields import HeaderLayout, format_ipv4
from ..headerspace.header import Packet
from ..headerspace.wildcard import Wildcard

__all__ = ["FieldMatch", "Match", "ForwardingRule", "AclRule", "DROP"]

#: Sentinel action for forwarding rules that discard the packet.
DROP: tuple[str, ...] = ()


@dataclass(frozen=True)
class FieldMatch:
    """Prefix constraint on one field: the top ``prefix_len`` bits of
    ``value`` must match."""

    field: str
    value: int
    prefix_len: int

    def __post_init__(self) -> None:
        if self.prefix_len < 0:
            raise ValueError("prefix length cannot be negative")

    def describe(self) -> str:
        if self.field.endswith("_ip"):
            return f"{self.field}={format_ipv4(self.value)}/{self.prefix_len}"
        return f"{self.field}={self.value}/{self.prefix_len}"


class Match:
    """A conjunction of field constraints."""

    __slots__ = ("_constraints",)

    def __init__(self, constraints: Mapping[str, FieldMatch] | None = None) -> None:
        self._constraints: dict[str, FieldMatch] = dict(constraints or {})

    @classmethod
    def any(cls) -> "Match":
        """The match-everything rule body (e.g. a default route)."""
        return cls()

    @classmethod
    def exact(cls, layout: HeaderLayout, **fields: int) -> "Match":
        """Exact-match on the given fields."""
        constraints = {
            name: FieldMatch(name, value, layout.field(name).width)
            for name, value in fields.items()
        }
        return cls(constraints)

    @classmethod
    def prefix(cls, field_name: str, value: int, prefix_len: int) -> "Match":
        """Single-field prefix match (the LPM forwarding rule shape)."""
        return cls({field_name: FieldMatch(field_name, value, prefix_len)})

    def with_prefix(self, field_name: str, value: int, prefix_len: int) -> "Match":
        """A copy with one more field constraint."""
        constraints = dict(self._constraints)
        constraints[field_name] = FieldMatch(field_name, value, prefix_len)
        return Match(constraints)

    @property
    def is_any(self) -> bool:
        return not self._constraints

    def constraints(self) -> Iterator[FieldMatch]:
        return iter(self._constraints.values())

    def constraint_for(self, field_name: str) -> FieldMatch | None:
        return self._constraints.get(field_name)

    # ------------------------------------------------------------------
    # Semantics
    # ------------------------------------------------------------------

    def to_literals(self, layout: HeaderLayout) -> dict[int, bool]:
        """BDD literals (variable -> polarity) encoding this match."""
        literals: dict[int, bool] = {}
        for constraint in self._constraints.values():
            literals.update(
                layout.prefix_literals(
                    constraint.field, constraint.value, constraint.prefix_len
                )
            )
        return literals

    def to_wildcard(self, layout: HeaderLayout) -> Wildcard:
        """Equivalent ternary wildcard (for the HSA baseline)."""
        wildcard = Wildcard.any(layout.total_width)
        for constraint in self._constraints.values():
            fld = layout.field(constraint.field)
            piece = Wildcard.from_prefix(
                layout.total_width,
                fld.offset,
                fld.width,
                constraint.value,
                constraint.prefix_len,
            )
            overlap = wildcard.intersect(piece)
            if overlap is None:  # disjoint constraints on one field
                raise ValueError("contradictory match constraints")
            wildcard = overlap
        return wildcard

    def matches(self, packet: Packet) -> bool:
        """Direct interpretation against a concrete packet."""
        for constraint in self._constraints.values():
            if constraint.prefix_len == 0:
                continue
            fld = packet.layout.field(constraint.field)
            shift = fld.width - constraint.prefix_len
            if (
                packet.field(constraint.field) >> shift
                != constraint.value >> shift
            ):
                return False
        return True

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Match) and other._constraints == self._constraints

    def __hash__(self) -> int:
        return hash(frozenset(self._constraints.items()))

    def __repr__(self) -> str:
        if self.is_any:
            return "Match(any)"
        inner = ", ".join(
            constraint.describe() for constraint in self._constraints.values()
        )
        return f"Match({inner})"


@dataclass(frozen=True)
class ForwardingRule:
    """One forwarding-table entry.

    ``out_ports`` is a tuple of output port names (several for multicast,
    empty -- :data:`DROP` -- to discard).  ``priority`` resolves overlaps:
    highest wins; for pure LPM tables the priority is the prefix length.
    """

    match: Match
    out_ports: tuple[str, ...]
    priority: int

    @property
    def is_drop(self) -> bool:
        return not self.out_ports

    def describe(self) -> str:
        action = "DROP" if self.is_drop else "->" + ",".join(self.out_ports)
        return f"[prio={self.priority}] {self.match!r} {action}"


@dataclass(frozen=True)
class AclRule:
    """One access-control entry; first matching rule decides."""

    match: Match
    permit: bool

    def describe(self) -> str:
        action = "permit" if self.permit else "deny"
        return f"{action} {self.match!r}"
