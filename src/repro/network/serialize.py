"""Network snapshot serialization (JSON).

Persists a :class:`Network` -- layout, topology, forwarding rules, ACLs --
to a JSON document and back. Used to freeze dataset instances to disk
(e.g. to rerun an experiment on the exact plane a bug appeared on), and
to move a plane between processes without re-generating it.

The format is versioned and deliberately flat: one object per rule, no
cross-references, so snapshots stay diff-able and hand-editable.
"""

from __future__ import annotations

import json
from typing import Any

from ..headerspace.fields import HeaderLayout
from .builder import Network
from .rules import AclRule, FieldMatch, ForwardingRule, Match
from .tables import Acl

__all__ = ["network_to_json", "network_from_json", "save_network", "load_network"]

FORMAT_VERSION = 1


def _match_to_obj(match: Match) -> list[dict[str, int | str]]:
    return [
        {"field": c.field, "value": c.value, "prefix_len": c.prefix_len}
        for c in match.constraints()
    ]


def _match_from_obj(items: list[dict[str, Any]]) -> Match:
    constraints = {
        item["field"]: FieldMatch(item["field"], item["value"], item["prefix_len"])
        for item in items
    }
    return Match(constraints)


def _acl_to_obj(acl: Acl) -> dict[str, Any]:
    return {
        "default_permit": acl.default_permit,
        "rules": [
            {"permit": rule.permit, "match": _match_to_obj(rule.match)}
            for rule in acl
        ],
    }


def _acl_from_obj(obj: dict[str, Any]) -> Acl:
    return Acl(
        [
            AclRule(_match_from_obj(rule["match"]), permit=rule["permit"])
            for rule in obj["rules"]
        ],
        default_permit=obj["default_permit"],
    )


def network_to_json(network: Network) -> str:
    """Serialize a network to a JSON string."""
    boxes = []
    for name in sorted(network.boxes):
        box = network.boxes[name]
        boxes.append(
            {
                "name": name,
                "rules": [
                    {
                        "match": _match_to_obj(rule.match),
                        "out_ports": list(rule.out_ports),
                        "priority": rule.priority,
                    }
                    for rule in box.table
                ],
                "input_acls": {
                    port: _acl_to_obj(acl) for port, acl in sorted(box.input_acls.items())
                },
                "output_acls": {
                    port: _acl_to_obj(acl)
                    for port, acl in sorted(box.output_acls.items())
                },
            }
        )
    payload = {
        "version": FORMAT_VERSION,
        "name": network.name,
        "layout": [[field.name, field.width] for field in network.layout.fields],
        "boxes": boxes,
        "links": [
            {"src_box": src.box, "src_port": src.port,
             "dst_box": dst.box, "dst_port": dst.port}
            for src, dst in sorted(network.topology.links())
        ],
        "hosts": [
            {"box": ref.box, "port": ref.port, "host": host}
            for ref, host in sorted(network.topology.hosts())
        ],
    }
    return json.dumps(payload, indent=2)


def network_from_json(text: str) -> Network:
    """Rebuild a network from :func:`network_to_json` output."""
    payload = json.loads(text)
    version = payload.get("version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported snapshot version {version!r} "
            f"(this build reads version {FORMAT_VERSION})"
        )
    layout = HeaderLayout([(name, width) for name, width in payload["layout"]])
    network = Network(layout, name=payload["name"])
    for box_obj in payload["boxes"]:
        box = network.add_box(box_obj["name"])
        for rule_obj in box_obj["rules"]:
            box.table.add(
                ForwardingRule(
                    _match_from_obj(rule_obj["match"]),
                    tuple(rule_obj["out_ports"]),
                    rule_obj["priority"],
                )
            )
        for port, acl_obj in box_obj["input_acls"].items():
            box.set_input_acl(port, _acl_from_obj(acl_obj))
        for port, acl_obj in box_obj["output_acls"].items():
            box.set_output_acl(port, _acl_from_obj(acl_obj))
    for link in payload["links"]:
        network.link(
            link["src_box"], link["src_port"], link["dst_box"], link["dst_port"]
        )
    for host in payload["hosts"]:
        network.attach_host(host["box"], host["port"], host["host"])
    return network


def save_network(network: Network, path) -> None:
    """Write a network snapshot to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(network_to_json(network))


def load_network(path) -> Network:
    """Read a network snapshot from ``path``."""
    with open(path, "r", encoding="utf-8") as handle:
        return network_from_json(handle.read())
