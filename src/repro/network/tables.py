"""Forwarding tables and ACLs: the stateful packet filters of a box.

Both are "packet filters" in the paper's model (Section III): an ACL is one
predicate; a forwarding table yields one predicate per output port.  The
classes here hold the raw rules and define lookup semantics; compilation to
BDD predicates lives in :mod:`repro.network.predicates`.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from ..headerspace.header import Packet
from .lpm import PrefixTrie
from .rules import AclRule, ForwardingRule

__all__ = ["ForwardingTable", "Acl"]


class ForwardingTable:
    """Priority-ordered forwarding rules (highest priority wins).

    For longest-prefix-match tables the natural priority is the prefix
    length, which is what the dataset generators use.  Ties are broken by
    insertion order (earlier wins), matching typical switch behavior where
    an existing entry shadows a later equal-priority insert.

    Lookups use a :class:`PrefixTrie` fast path whenever the rule set has
    the pure-LPM shape (every rule constrains one shared field with
    priority == prefix length); anything else falls back to the general
    priority scan.  The trie is rebuilt lazily after mutations, and tests
    pin both paths to identical results.
    """

    def __init__(self, rules: Iterable[ForwardingRule] = ()) -> None:
        self._rules: list[ForwardingRule] = []
        self._version = 0
        self._trie: PrefixTrie | None = None
        self._trie_field: str | None = None
        self._trie_version = -1
        for rule in rules:
            self.add(rule)

    @property
    def version(self) -> int:
        """Monotone counter bumped on every mutation (cache invalidation)."""
        return self._version

    def add(self, rule: ForwardingRule) -> None:
        """Insert keeping the list sorted by descending priority."""
        index = len(self._rules)
        while index > 0 and self._rules[index - 1].priority < rule.priority:
            index -= 1
        self._rules.insert(index, rule)
        self._version += 1

    def remove(self, rule: ForwardingRule) -> None:
        try:
            self._rules.remove(rule)
        except ValueError:
            raise KeyError(f"rule not present: {rule.describe()}") from None
        self._version += 1

    # ------------------------------------------------------------------
    # Lookup (trie fast path + general scan)
    # ------------------------------------------------------------------

    def _refresh_trie(self, packet: Packet) -> None:
        """Rebuild the LPM trie if the rule set allows it (else disable)."""
        self._trie_version = self._version
        self._trie = None
        self._trie_field = None
        field_name: str | None = None
        for rule in self._rules:
            constraints = list(rule.match.constraints())
            if not constraints:
                if rule.priority != 0:
                    return  # a non-trivial any-match breaks LPM ordering
                continue
            if len(constraints) > 1:
                return
            constraint = constraints[0]
            if field_name is None:
                field_name = constraint.field
            if constraint.field != field_name:
                return
            if constraint.prefix_len != rule.priority:
                return
        if field_name is None:
            return  # nothing to index (empty or any-only table)
        width = packet.layout.field(field_name).width
        trie = PrefixTrie(width)
        shift_base = width
        for rule in self._rules:  # priority order: first writer wins a slot
            constraint = rule.match.constraint_for(field_name)
            if constraint is None:
                value, prefix_len = 0, 0
            else:
                prefix_len = constraint.prefix_len
                keep = shift_base - prefix_len
                value = (constraint.value >> keep) << keep if keep else constraint.value
            if trie.get(value, prefix_len) is None:
                trie.insert(value, prefix_len, rule.out_ports)
        self._trie = trie
        self._trie_field = field_name

    def lookup(self, packet: Packet) -> tuple[str, ...]:
        """Output ports for ``packet`` (empty tuple = drop / no route)."""
        if self._trie_version != self._version:
            self._refresh_trie(packet)
        if self._trie is not None and self._trie_field is not None:
            result = self._trie.lookup(packet.field(self._trie_field))
            return result if result is not None else ()  # type: ignore[return-value]
        for rule in self._rules:
            if rule.match.matches(packet):
                return rule.out_ports
        return ()

    def out_ports(self) -> list[str]:
        """All port names referenced by any rule, in first-seen order."""
        seen: dict[str, None] = {}
        for rule in self._rules:
            for port in rule.out_ports:
                seen.setdefault(port)
        return list(seen)

    def __iter__(self) -> Iterator[ForwardingRule]:
        """Rules in match order (descending priority)."""
        return iter(self._rules)

    def __len__(self) -> int:
        return len(self._rules)

    def __repr__(self) -> str:
        return f"ForwardingTable({len(self._rules)} rules)"


class Acl:
    """First-match access control list.

    ``default_permit`` decides packets that match no rule; real-world ACLs
    usually end with an implicit deny, so the default is ``False`` -- but
    an absent ACL on a port is modeled as "no filter" by the box, not as a
    deny-all ACL.
    """

    def __init__(
        self, rules: Iterable[AclRule] = (), default_permit: bool = False
    ) -> None:
        self._rules: list[AclRule] = list(rules)
        self.default_permit = default_permit
        self._version = 0

    @property
    def version(self) -> int:
        return self._version

    def append(self, rule: AclRule) -> None:
        self._rules.append(rule)
        self._version += 1

    def remove(self, rule: AclRule) -> None:
        try:
            self._rules.remove(rule)
        except ValueError:
            raise KeyError(f"rule not present: {rule.describe()}") from None
        self._version += 1

    def permits(self, packet: Packet) -> bool:
        for rule in self._rules:
            if rule.match.matches(packet):
                return rule.permit
        return self.default_permit

    def __iter__(self) -> Iterator[AclRule]:
        return iter(self._rules)

    def __len__(self) -> int:
        return len(self._rules)

    def __repr__(self) -> str:
        default = "permit" if self.default_permit else "deny"
        return f"Acl({len(self._rules)} rules, default={default})"
