"""Topology: the directed graph of boxes, links, and attached hosts."""

from __future__ import annotations

from typing import Iterator

from .box import PortRef

__all__ = ["Topology"]


class Topology:
    """Directed link map between box ports, plus host attachment points.

    A link connects an output port of one box to an input port of another.
    A host is an external endpoint attached to an output port: a packet
    forwarded there has left the network (reached its destination, in the
    sense of Section IV-B path computation).
    """

    def __init__(self) -> None:
        self._links: dict[PortRef, PortRef] = {}
        self._hosts: dict[PortRef, str] = {}
        self._boxes: set[str] = set()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def register_box(self, name: str) -> None:
        self._boxes.add(name)

    def add_link(
        self, src_box: str, src_port: str, dst_box: str, dst_port: str
    ) -> None:
        """Connect ``src_box:src_port`` output to ``dst_box:dst_port`` input."""
        src = PortRef(src_box, src_port)
        if src in self._links or src in self._hosts:
            raise ValueError(f"output port {src} is already connected")
        self._links[src] = PortRef(dst_box, dst_port)
        self._boxes.add(src_box)
        self._boxes.add(dst_box)

    def attach_host(self, box: str, port: str, host: str) -> None:
        """Attach an external host to an output port."""
        src = PortRef(box, port)
        if src in self._links or src in self._hosts:
            raise ValueError(f"output port {src} is already connected")
        self._hosts[src] = host
        self._boxes.add(box)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def boxes(self) -> set[str]:
        return set(self._boxes)

    def next_hop(self, box: str, out_port: str) -> PortRef | None:
        """The (box, in_port) a packet leaving ``box:out_port`` arrives at,
        or ``None`` if the port leads to a host or is unconnected."""
        return self._links.get(PortRef(box, out_port))

    def host_at(self, box: str, out_port: str) -> str | None:
        """Host name attached at ``box:out_port``, if any."""
        return self._hosts.get(PortRef(box, out_port))

    def links(self) -> Iterator[tuple[PortRef, PortRef]]:
        return iter(self._links.items())

    def hosts(self) -> Iterator[tuple[PortRef, str]]:
        return iter(self._hosts.items())

    def degree(self, box: str) -> int:
        """Number of connected output ports on ``box``."""
        return sum(1 for ref in self._links if ref.box == box) + sum(
            1 for ref in self._hosts if ref.box == box
        )

    def __repr__(self) -> str:
        return (
            f"Topology({len(self._boxes)} boxes, {len(self._links)} links, "
            f"{len(self._hosts)} hosts)"
        )
