"""``repro.obs``: the observability layer of the classification pipeline.

A pluggable, no-op-by-default :class:`Recorder` collects BDD operation
cache behavior, AP Tree query depth distributions, classifier update
metrics, and dynamic-simulation timelines -- the counters the paper's
entire evaluation (Figs. 4-14) is built on.  See DESIGN.md
("Observability layer") for the architecture and the snapshot schema.
"""

from .recorder import (
    BDDCounters,
    DiffCounters,
    ParallelCounters,
    PersistCounters,
    Recorder,
    ServeCounters,
    TreeCounters,
    UpdateCounters,
)
from .schema import SNAPSHOT_SCHEMA, SchemaError, validate_snapshot

__all__ = [
    "BDDCounters",
    "DiffCounters",
    "ParallelCounters",
    "PersistCounters",
    "Recorder",
    "SNAPSHOT_SCHEMA",
    "SchemaError",
    "ServeCounters",
    "TreeCounters",
    "UpdateCounters",
    "validate_snapshot",
]
