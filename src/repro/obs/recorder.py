"""The :class:`Recorder`: low-overhead pipeline instrumentation.

The paper's whole evaluation (Figs. 4-14) is built on internal counters
-- predicate evaluations per query, AP Tree depth distributions, BDD
cache behavior, update latencies -- that the pipeline otherwise throws
away.  A :class:`Recorder` collects them without taxing the hot paths:

* every instrumented component (``BDDManager``, ``APTree``,
  ``UpdateEngine``, ``APClassifier``, ``DynamicSimulation``) carries a
  ``recorder`` attribute that is ``None`` by default;
* hot loops read that attribute once, up front, and take the exact
  pre-instrumentation code path when it is ``None`` -- the off state
  costs one attribute check per call, nothing per loop iteration
  (``benchmarks/bench_obs_overhead.py`` holds this to <5% on
  ``classify_many``);
* when a recorder is attached, counters are plain attribute increments
  on small ``__slots__`` objects -- no locks, no allocation per event.

One recorder may observe several components at once (a classifier wires
its manager, tree, and update engine together); counters from all of
them land in one :meth:`Recorder.snapshot`, a JSON-serializable dict
whose shape is pinned by :mod:`repro.obs.schema`.
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from typing import Iterator

__all__ = [
    "BDDCounters",
    "DiffCounters",
    "ParallelCounters",
    "PersistCounters",
    "Recorder",
    "ServeCounters",
    "TreeCounters",
    "UpdateCounters",
]

#: Snapshot format identifier; bump on incompatible shape changes.
#: /2 added the "parallel" section (offline-pipeline stage walls, shard
#: sizes, shipping volume) and ``updates.replayed``.
#: /3 added the "serve" section (online query service: batch-size
#: histogram, queue depth watermark, sheds/timeouts, service latency).
#: /4 added the "persist" section (artifact/snapshot save and load
#: timings, byte volumes, mmap-vs-copy load counts) and the serve
#: ``workers``/``generations`` counters (multi-worker serving).
#: /5 added the serve ``result_cache`` block (hot-header result cache:
#: hits, misses, evictions, invalidations, hit rate).
#: /6 added ``updates.tombstoned`` (atoms whose membership a removal
#: changed) and the ``updates.incremental`` block (merge/splice/patch
#: counters of the incremental maintenance engine).
#: /7 added the serve ``frames`` counter (batched framed-protocol
#: requests) and the serve ``shard`` block (multi-node router: topology,
#: per-shard routed counts, retries/failovers, generation-handoff count
#: and latency).
#: /8 added the "diff" section (differential/what-if queries: generation
#: comparisons, shadow-fork builds and build time, atom pairs examined,
#: model-counting time, and the changed-volume-share histogram).
#: /9 added the "scenario" section (which registry scenario produced the
#: workload: name, master seed, bound params; empty name = untagged).
SCHEMA_ID = "repro.obs.snapshot/9"

#: Service latencies kept for the percentile summary; same bounded-
#: reservoir treatment as update latencies.
MAX_SERVICE_LATENCY_SAMPLES = 50_000

#: Update latencies kept for the percentile summary.  Beyond this the
#: reservoir stops growing (count/mean/max stay exact; percentiles then
#: describe the first N updates, which is plenty for Fig. 13 shapes).
MAX_LATENCY_SAMPLES = 10_000


def _percentile(ordered: list[float], q: float) -> float:
    """Linear-interpolated percentile of an already-sorted sample."""
    if not ordered:
        return 0.0
    if len(ordered) == 1:
        return float(ordered[0])
    position = (len(ordered) - 1) * q / 100.0
    lower = math.floor(position)
    upper = math.ceil(position)
    if lower == upper:
        return float(ordered[lower])
    fraction = position - lower
    return ordered[lower] * (1 - fraction) + ordered[upper] * fraction


def _rate(hits: int, misses: int) -> float:
    total = hits + misses
    return hits / total if total else 0.0


class BDDCounters:
    """Manager-level counters: operation caches, node table, op timings."""

    __slots__ = (
        "apply_hits",
        "apply_misses",
        "ite_hits",
        "ite_misses",
        "not_hits",
        "not_misses",
        "cache_clears",
        "op_calls",
        "op_seconds",
    )

    def __init__(self) -> None:
        self.apply_hits = 0
        self.apply_misses = 0
        self.ite_hits = 0
        self.ite_misses = 0
        self.not_hits = 0
        self.not_misses = 0
        self.cache_clears = 0
        self.op_calls: dict[str, int] = {}
        self.op_seconds: dict[str, float] = {}

    def record_op(self, name: str, seconds: float) -> None:
        """Accrue one timed top-level operation (``time_bdd_ops`` mode)."""
        self.op_calls[name] = self.op_calls.get(name, 0) + 1
        self.op_seconds[name] = self.op_seconds.get(name, 0.0) + seconds


class TreeCounters:
    """Query-side counters: the paper's Fig. 7/8 material."""

    __slots__ = ("queries", "predicate_evaluations", "depth_histogram")

    def __init__(self) -> None:
        self.queries = 0
        self.predicate_evaluations = 0
        self.depth_histogram: dict[int, int] = {}

    def record_query(self, depth: int) -> None:
        """One classified packet that evaluated ``depth`` predicates."""
        self.queries += 1
        self.predicate_evaluations += depth
        histogram = self.depth_histogram
        histogram[depth] = histogram.get(depth, 0) + 1


class UpdateCounters:
    """Update-side counters: splits, rebuilds, staleness fallbacks."""

    __slots__ = (
        "updates_applied",
        "adds",
        "removes",
        "atoms_split",
        "tombstoned",
        "leaf_splits",
        "split_events",
        "rebuilds",
        "reconstructs",
        "replayed",
        "compiles",
        "incremental_merges",
        "incremental_splices",
        "incremental_patches",
        "incremental_patch_fallbacks",
        "incremental_full_rebuilds",
        "stale_fallback_swapped",
        "stale_fallback_version",
        "latency_samples",
        "latency_total_s",
        "latency_count",
        "latency_max_s",
    )

    def __init__(self) -> None:
        self.updates_applied = 0
        self.adds = 0
        self.removes = 0
        self.atoms_split = 0
        self.tombstoned = 0
        self.leaf_splits = 0
        self.split_events = 0
        self.rebuilds = 0
        self.reconstructs = 0
        self.replayed = 0
        self.compiles = 0
        self.incremental_merges = 0
        self.incremental_splices = 0
        self.incremental_patches = 0
        self.incremental_patch_fallbacks = 0
        self.incremental_full_rebuilds = 0
        self.stale_fallback_swapped = 0
        self.stale_fallback_version = 0
        self.latency_samples: list[float] = []
        self.latency_total_s = 0.0
        self.latency_count = 0
        self.latency_max_s = 0.0

    def record_update(
        self,
        added: bool,
        removed: bool,
        atoms_split: int,
        elapsed_s: float,
        tombstoned: int = 0,
    ) -> None:
        """Accounting for one applied :class:`PredicateChange`."""
        self.updates_applied += 1
        if added:
            self.adds += 1
        if removed:
            self.removes += 1
        self.atoms_split += atoms_split
        self.tombstoned += tombstoned
        self.latency_count += 1
        self.latency_total_s += elapsed_s
        if elapsed_s > self.latency_max_s:
            self.latency_max_s = elapsed_s
        if len(self.latency_samples) < MAX_LATENCY_SAMPLES:
            self.latency_samples.append(elapsed_s)

    def record_splits(self, leaves_split: int) -> None:
        """One ``APTree.apply_splits`` call that split ``leaves_split`` leaves."""
        self.split_events += 1
        self.leaf_splits += leaves_split

    def record_stale_fallback(self, reason: str) -> None:
        """A query fell back to the interpreted tree; ``reason`` is the
        :meth:`CompiledAPTree.stale_reason` verdict."""
        if reason == "swapped":
            self.stale_fallback_swapped += 1
        else:
            self.stale_fallback_version += 1

    @property
    def stale_fallbacks(self) -> int:
        return self.stale_fallback_swapped + self.stale_fallback_version


class ParallelCounters:
    """Offline-pipeline counters: stage walls, shards, shipping volume.

    Populated by :mod:`repro.parallel` -- per-stage wall time, the shard
    sizes each stage fanned out, bytes of serialized BDDs crossing the
    process boundary in each direction, and the atom count after each
    universe merge step (the divide-and-conquer convergence trace).
    """

    __slots__ = (
        "workers",
        "pool_tasks",
        "stage_seconds",
        "shard_sizes",
        "bytes_to_workers",
        "bytes_from_workers",
        "merge_atom_counts",
    )

    def __init__(self) -> None:
        self.workers = 0
        self.pool_tasks = 0
        self.stage_seconds: dict[str, float] = {}
        self.shard_sizes: dict[str, list[int]] = {}
        self.bytes_to_workers = 0
        self.bytes_from_workers = 0
        self.merge_atom_counts: list[int] = []

    def record_stage(self, stage: str, seconds: float) -> None:
        """Accrue wall time for one pipeline stage."""
        self.stage_seconds[stage] = self.stage_seconds.get(stage, 0.0) + seconds

    def record_shards(self, stage: str, sizes: list[int]) -> None:
        """One fan-out: the per-worker-task shard sizes of a stage."""
        self.shard_sizes.setdefault(stage, []).extend(sizes)
        self.pool_tasks += len(sizes)

    def record_shipping(self, to_workers: int, from_workers: int) -> None:
        """Serialized-BDD bytes sent to / received from workers."""
        self.bytes_to_workers += to_workers
        self.bytes_from_workers += from_workers

    def record_merge(self, atom_count: int) -> None:
        """One universe merge completed with ``atom_count`` atoms."""
        self.merge_atom_counts.append(atom_count)

    def record_pool(self, workers: int) -> None:
        """Note the pool width a stage ran with (max is reported)."""
        if workers > self.workers:
            self.workers = workers


class ServeCounters:
    """Online-query-service counters (:mod:`repro.serve`).

    Populated by :class:`repro.serve.QueryService`: admission outcomes
    (served / shed / timed out), micro-batch sizes, the admission-queue
    depth high-water mark, degradation events (stale-artifact serving
    windows, reconstruction swaps), and a service-latency reservoir for
    the p50/p99 summary.
    """

    __slots__ = (
        "requests",
        "served",
        "shed",
        "timeouts",
        "rejected",
        "batches",
        "batched_requests",
        "batch_size_histogram",
        "queue_depth_max",
        "swaps",
        "workers",
        "generations",
        "cache_hits",
        "cache_misses",
        "cache_evictions",
        "cache_invalidations",
        "cache_coalesced",
        "frames",
        "shard_shards",
        "shard_replicas",
        "shard_routed",
        "shard_retries",
        "shard_failovers",
        "shard_handoffs",
        "shard_handoff_total_s",
        "shard_handoff_last_s",
        "latency_samples",
        "latency_total_s",
        "latency_count",
        "latency_max_s",
    )

    def __init__(self) -> None:
        self.requests = 0
        self.served = 0
        self.shed = 0
        self.timeouts = 0
        self.rejected = 0
        self.batches = 0
        self.batched_requests = 0
        self.batch_size_histogram: dict[int, int] = {}
        self.queue_depth_max = 0
        self.swaps = 0
        self.workers = 0
        self.generations = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_evictions = 0
        self.cache_invalidations = 0
        self.cache_coalesced = 0
        self.frames = 0
        self.shard_shards = 0
        self.shard_replicas = 0
        self.shard_routed: dict[int, int] = {}
        self.shard_retries = 0
        self.shard_failovers = 0
        self.shard_handoffs = 0
        self.shard_handoff_total_s = 0.0
        self.shard_handoff_last_s = 0.0
        self.latency_samples: list[float] = []
        self.latency_total_s = 0.0
        self.latency_count = 0
        self.latency_max_s = 0.0

    def record_admission(self, queue_depth: int) -> None:
        """One request admitted with the queue at ``queue_depth``."""
        self.requests += 1
        if queue_depth > self.queue_depth_max:
            self.queue_depth_max = queue_depth

    def record_batch(self, size: int) -> None:
        """One dispatched micro-batch of ``size`` coalesced requests."""
        self.batches += 1
        self.batched_requests += size
        histogram = self.batch_size_histogram
        histogram[size] = histogram.get(size, 0) + 1

    def record_served(self, latency_s: float) -> None:
        """One request answered after ``latency_s`` in the service."""
        self.served += 1
        self.latency_count += 1
        self.latency_total_s += latency_s
        if latency_s > self.latency_max_s:
            self.latency_max_s = latency_s
        if len(self.latency_samples) < MAX_SERVICE_LATENCY_SAMPLES:
            self.latency_samples.append(latency_s)

    def record_frame(self, size: int, latency_s: float) -> None:
        """One framed-protocol batch of ``size`` requests answered.

        The whole frame counts as ``size`` requests/served but one
        latency sample (the frame is one round trip) and one batch.
        """
        self.frames += 1
        self.requests += size
        self.served += size
        self.latency_count += 1
        self.latency_total_s += latency_s
        if latency_s > self.latency_max_s:
            self.latency_max_s = latency_s
        if len(self.latency_samples) < MAX_SERVICE_LATENCY_SAMPLES:
            self.latency_samples.append(latency_s)
        self.record_batch(size)

    def record_route(self, shard: int, size: int) -> None:
        """``size`` queries routed to ``shard`` by the front-tier router."""
        routed = self.shard_routed
        routed[shard] = routed.get(shard, 0) + size

    def record_retry(self, *, failover: bool = False) -> None:
        """One replica retry (``failover`` when a different replica won)."""
        self.shard_retries += 1
        if failover:
            self.shard_failovers += 1

    def record_handoff(self, seconds: float) -> None:
        """One completed cluster-wide generation handoff."""
        self.shard_handoffs += 1
        self.shard_handoff_total_s += seconds
        self.shard_handoff_last_s = seconds
        self.generations += 1

    def summary(self) -> dict:
        """The JSON-shaped ``serve`` snapshot section (schema /7)."""
        ordered = sorted(self.latency_samples)
        return {
            "requests": self.requests,
            "served": self.served,
            "shed": self.shed,
            "timeouts": self.timeouts,
            "rejected": self.rejected,
            "batches": self.batches,
            "batched_requests": self.batched_requests,
            "mean_batch_size": (
                self.batched_requests / self.batches if self.batches else 0.0
            ),
            "batch_size_histogram": {
                str(size): self.batch_size_histogram[size]
                for size in sorted(self.batch_size_histogram)
            },
            "queue_depth_max": self.queue_depth_max,
            "swaps": self.swaps,
            "workers": self.workers,
            "generations": self.generations,
            "result_cache": {
                "hits": self.cache_hits,
                "misses": self.cache_misses,
                "evictions": self.cache_evictions,
                "invalidations": self.cache_invalidations,
                "coalesced": self.cache_coalesced,
                "hit_rate": _rate(self.cache_hits, self.cache_misses),
            },
            "frames": self.frames,
            "shard": {
                "shards": self.shard_shards,
                "replicas": self.shard_replicas,
                "routed": {
                    str(shard): self.shard_routed[shard]
                    for shard in sorted(self.shard_routed)
                },
                "retries": self.shard_retries,
                "failovers": self.shard_failovers,
                "handoffs": self.shard_handoffs,
                "handoff_s": {
                    "total": self.shard_handoff_total_s,
                    "last": self.shard_handoff_last_s,
                },
            },
            "latency_s": {
                "count": self.latency_count,
                "mean": (
                    self.latency_total_s / self.latency_count
                    if self.latency_count
                    else 0.0
                ),
                "p50": _percentile(ordered, 50.0),
                "p99": _percentile(ordered, 99.0),
                "max": self.latency_max_s,
            },
        }


class PersistCounters:
    """Persistence counters (:mod:`repro.persist` / :mod:`repro.artifact`).

    Populated by the save/load entry points: how many artifacts or
    snapshots were written and restored, the wall time and byte volume
    of each direction, and whether loads went through the ``mmap``
    zero-copy path or the stdlib copy fallback.
    """

    __slots__ = (
        "saves",
        "loads",
        "save_seconds",
        "load_seconds",
        "bytes_written",
        "bytes_read",
        "mmap_loads",
        "copy_loads",
    )

    def __init__(self) -> None:
        self.saves = 0
        self.loads = 0
        self.save_seconds = 0.0
        self.load_seconds = 0.0
        self.bytes_written = 0
        self.bytes_read = 0
        self.mmap_loads = 0
        self.copy_loads = 0

    def record_save(self, size_bytes: int, seconds: float) -> None:
        """One classifier persisted (``size_bytes`` on disk or in shm)."""
        self.saves += 1
        self.bytes_written += size_bytes
        self.save_seconds += seconds

    def record_load(
        self, size_bytes: int, seconds: float, *, mmapped: bool
    ) -> None:
        """One classifier (or serving engine) restored."""
        self.loads += 1
        self.bytes_read += size_bytes
        self.load_seconds += seconds
        if mmapped:
            self.mmap_loads += 1
        else:
            self.copy_loads += 1

    def summary(self) -> dict:
        """The JSON-shaped ``persist`` snapshot section (schema /4)."""
        return {
            "saves": self.saves,
            "loads": self.loads,
            "save_seconds": self.save_seconds,
            "load_seconds": self.load_seconds,
            "bytes_written": self.bytes_written,
            "bytes_read": self.bytes_read,
            "mmap_loads": self.mmap_loads,
            "copy_loads": self.copy_loads,
        }


class DiffCounters:
    """Differential-query counters (:mod:`repro.diff`).

    Populated by :func:`repro.diff.diff_generations` and
    :func:`repro.diff.what_if`: how many generation comparisons and
    what-if queries ran, how many shadow classifiers were forked (and
    how long the forks took), the atom-pair volume each sweep examined,
    and where the model-counting time went.  The changed-volume
    histogram buckets each comparison by the *share* of the header
    space whose behavior changed -- the operational question a diff
    answers ("how big is this change?") at a glance.
    """

    __slots__ = (
        "comparisons",
        "whatifs",
        "shadow_builds",
        "shadow_build_seconds",
        "pairs_examined",
        "changed_classes",
        "sat_count_seconds",
        "share_histogram",
    )

    #: Upper bounds (exclusive) of the changed-volume-share buckets; a
    #: share of exactly zero lands in its own "0" bucket.
    _SHARE_BUCKETS = (
        (0.001, "<0.1%"),
        (0.01, "<1%"),
        (0.1, "<10%"),
        (0.5, "<50%"),
    )

    def __init__(self) -> None:
        self.comparisons = 0
        self.whatifs = 0
        self.shadow_builds = 0
        self.shadow_build_seconds = 0.0
        self.pairs_examined = 0
        self.changed_classes = 0
        self.sat_count_seconds = 0.0
        self.share_histogram: dict[str, int] = {}

    def record_comparison(
        self, *, pairs: int, changed: int, share: float, sat_count_s: float
    ) -> None:
        """One generation diff: its sweep size, outcome, and count time."""
        self.comparisons += 1
        self.pairs_examined += pairs
        self.changed_classes += changed
        self.sat_count_seconds += sat_count_s
        bucket = ">=50%"
        if share == 0.0:
            bucket = "0"
        else:
            for bound, name in self._SHARE_BUCKETS:
                if share < bound:
                    bucket = name
                    break
        self.share_histogram[bucket] = self.share_histogram.get(bucket, 0) + 1

    def record_shadow_build(self, seconds: float) -> None:
        """One shadow classifier forked from a live generation."""
        self.shadow_builds += 1
        self.shadow_build_seconds += seconds

    def record_whatif(self) -> None:
        """One complete what-if query answered."""
        self.whatifs += 1

    def summary(self) -> dict:
        """The JSON-shaped ``diff`` snapshot section (schema /8)."""
        return {
            "comparisons": self.comparisons,
            "whatifs": self.whatifs,
            "shadow_builds": self.shadow_builds,
            "shadow_build_seconds": self.shadow_build_seconds,
            "pairs_examined": self.pairs_examined,
            "changed_classes": self.changed_classes,
            "sat_count_seconds": self.sat_count_seconds,
            "changed_volume_histogram": {
                bucket: self.share_histogram[bucket]
                for bucket in sorted(self.share_histogram)
            },
        }


class Recorder:
    """Collects instrumentation from every component it is attached to.

    ``time_bdd_ops`` additionally times each *top-level* BDD operation
    (``apply_and``/``or``/``xor``/``diff``, ``ite``, ``negate``); it is
    off by default because the per-op clock reads dominate tiny
    operations.
    """

    def __init__(self, time_bdd_ops: bool = False) -> None:
        self.time_bdd_ops = time_bdd_ops
        self.bdd = BDDCounters()
        self.tree = TreeCounters()
        self.updates = UpdateCounters()
        self.parallel = ParallelCounters()
        self.serve = ServeCounters()
        self.persist = PersistCounters()
        self.diff = DiffCounters()
        self.timeline: list[dict] = []
        # Which registry scenario produced the observed workload; the
        # empty name means the run was not scenario-tagged.
        self.scenario: dict = {"name": "", "seed": 0, "params": {}}
        self._managers: list = []  # BDDManager instances under observation
        self._nodes_at_attach: list[int] = []

    def set_scenario(self, scenario) -> None:
        """Tag snapshots with a :class:`repro.datasets.Scenario`.

        Accepts the scenario object itself (name/seed/params attributes)
        or ``None`` to clear the tag.
        """
        if scenario is None:
            self.scenario = {"name": "", "seed": 0, "params": {}}
        else:
            self.scenario = {
                "name": scenario.name,
                "seed": scenario.seed,
                "params": dict(scenario.params),
            }

    # ------------------------------------------------------------------
    # Attachment
    # ------------------------------------------------------------------

    def attach_manager(self, manager) -> None:
        """Start observing a :class:`BDDManager` (node growth baseline)."""
        if manager.recorder is not self:
            manager.recorder = self
        if not any(existing is manager for existing in self._managers):
            self._managers.append(manager)
            self._nodes_at_attach.append(len(manager))

    def attach_tree(self, tree) -> None:
        """Start observing an :class:`APTree`."""
        tree.recorder = self
        self.attach_manager(tree.manager)

    @contextmanager
    def observe(self, classifier) -> Iterator["Recorder"]:
        """Attach to an :class:`APClassifier` for the duration of a block.

        Benchmarks use this to take an instrumented pass over a shared
        (session-scoped) classifier without leaving the recorder wired
        into later, timing-sensitive measurements.
        """
        classifier.set_recorder(self)
        try:
            yield self
        finally:
            classifier.set_recorder(None)

    @contextmanager
    def observe_tree(self, tree) -> Iterator["Recorder"]:
        """Attach to a bare :class:`APTree` (and its manager) for a block."""
        previous_tree = tree.recorder
        previous_manager = tree.manager.recorder
        self.attach_tree(tree)
        try:
            yield self
        finally:
            tree.recorder = previous_tree
            tree.manager.recorder = previous_manager

    # ------------------------------------------------------------------
    # Event intake (non-counter shaped)
    # ------------------------------------------------------------------

    def record_timeline_sample(
        self, time_s: float, throughput_qps: float, event: str = ""
    ) -> None:
        """One dynamic-simulation throughput bucket (Fig. 14 material)."""
        self.timeline.append(
            {
                "time_s": time_s,
                "throughput_qps": throughput_qps,
                "event": event,
            }
        )

    # ------------------------------------------------------------------
    # Snapshot
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """The collected state as a JSON-serializable dict.

        The shape is pinned by :data:`repro.obs.schema.SNAPSHOT_SCHEMA`
        (currently ``repro.obs.snapshot/9``) and checked by
        :func:`repro.obs.schema.validate_snapshot`; every number is
        finite, so ``json.dumps(..., allow_nan=False)`` always succeeds.
        Sections: ``scenario`` (which registry scenario produced the
        workload), ``bdd`` (cache and node-table counters), ``tree``
        (per-query evaluation counts and depth histogram), ``updates``
        (splits, rebuilds, staleness fallbacks), ``parallel`` (offline
        pipeline phases), ``serve`` (the query service's batch/queue/
        latency counters), ``persist`` (artifact/snapshot save and load
        traffic), ``diff`` (generation diffs and what-if queries), and
        ``timeline`` (dynamic-run samples).
        """
        bdd = self.bdd
        tree = self.tree
        updates = self.updates
        parallel = self.parallel
        nodes_attached = sum(self._nodes_at_attach)
        nodes_current = sum(len(manager) for manager in self._managers)
        ordered_latencies = sorted(updates.latency_samples)
        return {
            "schema": SCHEMA_ID,
            "scenario": dict(self.scenario),
            "bdd": {
                "apply_cache": {
                    "hits": bdd.apply_hits,
                    "misses": bdd.apply_misses,
                    "hit_rate": _rate(bdd.apply_hits, bdd.apply_misses),
                },
                "ite_cache": {
                    "hits": bdd.ite_hits,
                    "misses": bdd.ite_misses,
                    "hit_rate": _rate(bdd.ite_hits, bdd.ite_misses),
                },
                "not_cache": {
                    "hits": bdd.not_hits,
                    "misses": bdd.not_misses,
                    "hit_rate": _rate(bdd.not_hits, bdd.not_misses),
                },
                "cache_clears": bdd.cache_clears,
                "node_table": {
                    "at_attach": nodes_attached,
                    "current": nodes_current,
                    "growth": nodes_current - nodes_attached,
                },
                "op_timings": {
                    name: {
                        "calls": bdd.op_calls[name],
                        "seconds": bdd.op_seconds.get(name, 0.0),
                    }
                    for name in sorted(bdd.op_calls)
                },
            },
            "tree": {
                "queries": tree.queries,
                "predicate_evaluations": tree.predicate_evaluations,
                "mean_evaluations_per_query": (
                    tree.predicate_evaluations / tree.queries
                    if tree.queries
                    else 0.0
                ),
                "depth_histogram": {
                    str(depth): tree.depth_histogram[depth]
                    for depth in sorted(tree.depth_histogram)
                },
            },
            "updates": {
                "updates_applied": updates.updates_applied,
                "adds": updates.adds,
                "removes": updates.removes,
                "atoms_split": updates.atoms_split,
                "tombstoned": updates.tombstoned,
                "leaf_splits": updates.leaf_splits,
                "split_events": updates.split_events,
                "rebuilds": updates.rebuilds,
                "reconstructs": updates.reconstructs,
                "replayed": updates.replayed,
                "compiles": updates.compiles,
                "incremental": {
                    "merges": updates.incremental_merges,
                    "splices": updates.incremental_splices,
                    "patches": updates.incremental_patches,
                    "patch_fallbacks": updates.incremental_patch_fallbacks,
                    "full_rebuilds": updates.incremental_full_rebuilds,
                },
                "stale_fallbacks": {
                    "total": updates.stale_fallbacks,
                    "swapped": updates.stale_fallback_swapped,
                    "version": updates.stale_fallback_version,
                },
                "latency_s": {
                    "count": updates.latency_count,
                    "mean": (
                        updates.latency_total_s / updates.latency_count
                        if updates.latency_count
                        else 0.0
                    ),
                    "p50": _percentile(ordered_latencies, 50.0),
                    "p95": _percentile(ordered_latencies, 95.0),
                    "max": updates.latency_max_s,
                },
            },
            "parallel": {
                "workers": parallel.workers,
                "pool_tasks": parallel.pool_tasks,
                "stage_seconds": {
                    stage: parallel.stage_seconds[stage]
                    for stage in sorted(parallel.stage_seconds)
                },
                "shard_sizes": {
                    stage: list(parallel.shard_sizes[stage])
                    for stage in sorted(parallel.shard_sizes)
                },
                "bytes_to_workers": parallel.bytes_to_workers,
                "bytes_from_workers": parallel.bytes_from_workers,
                "merge_atom_counts": list(parallel.merge_atom_counts),
            },
            "serve": self.serve.summary(),
            "persist": self.persist.summary(),
            "diff": self.diff.summary(),
            "timeline": list(self.timeline),
        }

    def __repr__(self) -> str:
        return (
            f"Recorder({self.tree.queries} queries, "
            f"{self.updates.updates_applied} updates, "
            f"{len(self.timeline)} timeline samples)"
        )
