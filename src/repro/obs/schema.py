"""The pinned shape of :meth:`Recorder.snapshot` payloads.

Benches emit snapshot sidecars (``benchmarks/results/*.obs.json``) and
the CLI prints snapshots for scripting; both are consumed by strict JSON
parsers, so the shape is a contract.  :func:`validate_snapshot` checks a
payload against :data:`SNAPSHOT_SCHEMA` -- a small JSON-Schema-like spec
interpreted by a hand-rolled walker (the container ships no third-party
dependencies, so ``jsonschema`` is out of reach).

The validator is deliberately strict about what the schema names and
permissive about extras: unknown keys are allowed (forward
compatibility), missing or mistyped declared keys are errors, and every
number must be finite (``NaN``/``Infinity`` are not JSON).
"""

from __future__ import annotations

import math

__all__ = ["SchemaError", "SNAPSHOT_SCHEMA", "validate_snapshot"]


class SchemaError(ValueError):
    """A snapshot payload does not match :data:`SNAPSHOT_SCHEMA`."""


def _cache_section() -> dict:
    return {
        "type": "object",
        "required": {
            "hits": {"type": "integer"},
            "misses": {"type": "integer"},
            "hit_rate": {"type": "number"},
        },
    }


#: Declarative spec of one snapshot.  Supported node kinds:
#: ``object`` (with ``required`` child specs and optional ``values``
#: spec applied to every non-required member), ``array`` (with
#: ``items``), ``string``, ``integer``, ``number``, ``const``.
SNAPSHOT_SCHEMA: dict = {
    "type": "object",
    "required": {
        "schema": {"type": "const", "value": "repro.obs.snapshot/9"},
        "scenario": {
            "type": "object",
            "required": {
                "name": {"type": "string"},
                "seed": {"type": "integer"},
                # Free-form bound params (values are scenario-typed:
                # ints and floats; names vary per scenario).
                "params": {"type": "object", "required": {}},
            },
        },
        "bdd": {
            "type": "object",
            "required": {
                "apply_cache": _cache_section(),
                "ite_cache": _cache_section(),
                "not_cache": _cache_section(),
                "cache_clears": {"type": "integer"},
                "node_table": {
                    "type": "object",
                    "required": {
                        "at_attach": {"type": "integer"},
                        "current": {"type": "integer"},
                        "growth": {"type": "integer"},
                    },
                },
                "op_timings": {
                    "type": "object",
                    "required": {},
                    "values": {
                        "type": "object",
                        "required": {
                            "calls": {"type": "integer"},
                            "seconds": {"type": "number"},
                        },
                    },
                },
            },
        },
        "tree": {
            "type": "object",
            "required": {
                "queries": {"type": "integer"},
                "predicate_evaluations": {"type": "integer"},
                "mean_evaluations_per_query": {"type": "number"},
                "depth_histogram": {
                    "type": "object",
                    "required": {},
                    "values": {"type": "integer"},
                },
            },
        },
        "updates": {
            "type": "object",
            "required": {
                "updates_applied": {"type": "integer"},
                "adds": {"type": "integer"},
                "removes": {"type": "integer"},
                "atoms_split": {"type": "integer"},
                "tombstoned": {"type": "integer"},
                "leaf_splits": {"type": "integer"},
                "split_events": {"type": "integer"},
                "rebuilds": {"type": "integer"},
                "reconstructs": {"type": "integer"},
                "replayed": {"type": "integer"},
                "compiles": {"type": "integer"},
                "incremental": {
                    "type": "object",
                    "required": {
                        "merges": {"type": "integer"},
                        "splices": {"type": "integer"},
                        "patches": {"type": "integer"},
                        "patch_fallbacks": {"type": "integer"},
                        "full_rebuilds": {"type": "integer"},
                    },
                },
                "stale_fallbacks": {
                    "type": "object",
                    "required": {
                        "total": {"type": "integer"},
                        "swapped": {"type": "integer"},
                        "version": {"type": "integer"},
                    },
                },
                "latency_s": {
                    "type": "object",
                    "required": {
                        "count": {"type": "integer"},
                        "mean": {"type": "number"},
                        "p50": {"type": "number"},
                        "p95": {"type": "number"},
                        "max": {"type": "number"},
                    },
                },
            },
        },
        "parallel": {
            "type": "object",
            "required": {
                "workers": {"type": "integer"},
                "pool_tasks": {"type": "integer"},
                "stage_seconds": {
                    "type": "object",
                    "required": {},
                    "values": {"type": "number"},
                },
                "shard_sizes": {
                    "type": "object",
                    "required": {},
                    "values": {
                        "type": "array",
                        "items": {"type": "integer"},
                    },
                },
                "bytes_to_workers": {"type": "integer"},
                "bytes_from_workers": {"type": "integer"},
                "merge_atom_counts": {
                    "type": "array",
                    "items": {"type": "integer"},
                },
            },
        },
        "serve": {
            "type": "object",
            "required": {
                "requests": {"type": "integer"},
                "served": {"type": "integer"},
                "shed": {"type": "integer"},
                "timeouts": {"type": "integer"},
                "rejected": {"type": "integer"},
                "batches": {"type": "integer"},
                "batched_requests": {"type": "integer"},
                "mean_batch_size": {"type": "number"},
                "batch_size_histogram": {
                    "type": "object",
                    "required": {},
                    "values": {"type": "integer"},
                },
                "queue_depth_max": {"type": "integer"},
                "swaps": {"type": "integer"},
                "workers": {"type": "integer"},
                "generations": {"type": "integer"},
                "result_cache": {
                    "type": "object",
                    "required": {
                        "hits": {"type": "integer"},
                        "misses": {"type": "integer"},
                        "evictions": {"type": "integer"},
                        "invalidations": {"type": "integer"},
                        "coalesced": {"type": "integer"},
                        "hit_rate": {"type": "number"},
                    },
                },
                "frames": {"type": "integer"},
                "shard": {
                    "type": "object",
                    "required": {
                        "shards": {"type": "integer"},
                        "replicas": {"type": "integer"},
                        "routed": {
                            "type": "object",
                            "required": {},
                            "values": {"type": "integer"},
                        },
                        "retries": {"type": "integer"},
                        "failovers": {"type": "integer"},
                        "handoffs": {"type": "integer"},
                        "handoff_s": {
                            "type": "object",
                            "required": {
                                "total": {"type": "number"},
                                "last": {"type": "number"},
                            },
                        },
                    },
                },
                "latency_s": {
                    "type": "object",
                    "required": {
                        "count": {"type": "integer"},
                        "mean": {"type": "number"},
                        "p50": {"type": "number"},
                        "p99": {"type": "number"},
                        "max": {"type": "number"},
                    },
                },
            },
        },
        "persist": {
            "type": "object",
            "required": {
                "saves": {"type": "integer"},
                "loads": {"type": "integer"},
                "save_seconds": {"type": "number"},
                "load_seconds": {"type": "number"},
                "bytes_written": {"type": "integer"},
                "bytes_read": {"type": "integer"},
                "mmap_loads": {"type": "integer"},
                "copy_loads": {"type": "integer"},
            },
        },
        "diff": {
            "type": "object",
            "required": {
                "comparisons": {"type": "integer"},
                "whatifs": {"type": "integer"},
                "shadow_builds": {"type": "integer"},
                "shadow_build_seconds": {"type": "number"},
                "pairs_examined": {"type": "integer"},
                "changed_classes": {"type": "integer"},
                "sat_count_seconds": {"type": "number"},
                "changed_volume_histogram": {
                    "type": "object",
                    "required": {},
                    "values": {"type": "integer"},
                },
            },
        },
        "timeline": {
            "type": "array",
            "items": {
                "type": "object",
                "required": {
                    "time_s": {"type": "number"},
                    "throughput_qps": {"type": "number"},
                    "event": {"type": "string"},
                },
            },
        },
    },
}


def _check(payload, spec: dict, path: str) -> None:
    kind = spec["type"]
    if kind == "const":
        if payload != spec["value"]:
            raise SchemaError(
                f"{path}: expected {spec['value']!r}, got {payload!r}"
            )
    elif kind == "string":
        if not isinstance(payload, str):
            raise SchemaError(f"{path}: expected string, got {type(payload).__name__}")
    elif kind == "integer":
        if not isinstance(payload, int) or isinstance(payload, bool):
            raise SchemaError(
                f"{path}: expected integer, got {type(payload).__name__}"
            )
    elif kind == "number":
        if isinstance(payload, bool) or not isinstance(payload, (int, float)):
            raise SchemaError(
                f"{path}: expected number, got {type(payload).__name__}"
            )
        if not math.isfinite(payload):
            raise SchemaError(f"{path}: non-finite number {payload!r}")
    elif kind == "array":
        if not isinstance(payload, list):
            raise SchemaError(f"{path}: expected array, got {type(payload).__name__}")
        items = spec.get("items")
        if items is not None:
            for index, item in enumerate(payload):
                _check(item, items, f"{path}[{index}]")
    elif kind == "object":
        if not isinstance(payload, dict):
            raise SchemaError(f"{path}: expected object, got {type(payload).__name__}")
        required = spec.get("required", {})
        for key, child in required.items():
            if key not in payload:
                raise SchemaError(f"{path}: missing required key {key!r}")
            _check(payload[key], child, f"{path}.{key}")
        values = spec.get("values")
        if values is not None:
            for key, value in payload.items():
                if key in required:
                    continue
                if not isinstance(key, str):
                    raise SchemaError(f"{path}: non-string key {key!r}")
                _check(value, values, f"{path}.{key}")
    else:  # pragma: no cover - schema author error
        raise AssertionError(f"unknown spec kind {kind!r}")


def validate_snapshot(payload: dict) -> dict:
    """Check ``payload`` against :data:`SNAPSHOT_SCHEMA`.

    Returns the payload unchanged for call-chaining; raises
    :class:`SchemaError` naming the offending path otherwise.
    """
    _check(payload, SNAPSHOT_SCHEMA, "$")
    return payload
