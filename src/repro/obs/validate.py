"""Validate snapshot JSON files from the command line.

CI's instrumentation smoke job runs::

    python -m repro.obs.validate benchmarks/results/*.obs.json

Each file must parse as strict JSON (no ``NaN``/``Infinity``) and match
:data:`repro.obs.schema.SNAPSHOT_SCHEMA`.  Exit status is the number of
invalid files (0 = all good).
"""

from __future__ import annotations

import json
import sys
from typing import Sequence

from .schema import SchemaError, validate_snapshot

__all__ = ["main"]


def _strict_parse_constant(name: str):
    raise ValueError(f"non-strict JSON constant {name!r}")


def main(argv: Sequence[str] | None = None) -> int:
    paths = list(sys.argv[1:] if argv is None else argv)
    if not paths:
        print("usage: python -m repro.obs.validate SNAPSHOT.json [...]")
        return 2
    failures = 0
    for path in paths:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(
                    handle, parse_constant=_strict_parse_constant
                )
            validate_snapshot(payload)
        except (OSError, ValueError, SchemaError) as exc:
            failures += 1
            print(f"FAIL {path}: {exc}")
        else:
            print(f"ok   {path}")
    return failures


if __name__ == "__main__":
    sys.exit(main())
