"""``repro.parallel``: the multi-core offline pipeline.

The paper's offline phase -- rule conversion, atomic-predicate
computation, AP Tree construction -- parallelizes along three different
seams (per box, per predicate shard, per trial/candidate chunk), and
Section VI-B's reconstruction loop is itself a second process.  This
package provides all four on top of one spawn-safe worker-pool layer:

* :mod:`~repro.parallel.pool` -- pool plumbing (``REPRO_WORKERS``,
  ``REPRO_MP_START``, contiguous sharding, serial fallback);
* :mod:`~repro.parallel.convert` -- sharded rule-to-BDD conversion;
* :mod:`~repro.parallel.atoms` + :mod:`~repro.parallel.merge` --
  divide-and-conquer atoms with a witness-guided universe merge;
* :mod:`~repro.parallel.build` -- fanned Best-from-Random trials and a
  chunked OAPT root scan;
* :mod:`~repro.parallel.recon` + :mod:`~repro.parallel.snapshot` -- a
  live reconstruction worker process and the artifact serialization it
  rides on;
* :mod:`~repro.parallel.pipeline` -- the composed end-to-end pipeline.

Every entry point is output-equivalent to its serial counterpart for
any worker count; see DESIGN.md ("Parallel offline pipeline").
"""

from .atoms import compute_atoms
from .build import (
    parallel_best_from_random,
    parallel_build_oapt,
    parallel_build_tree,
)
from .convert import convert_network, parallel_dataplane
from .merge import merge_universes
from .pipeline import OfflineResult, offline_pipeline
from .pool import (
    ENV_START,
    ENV_WORKERS,
    WorkerPool,
    close_shared_pools,
    default_start_method,
    resolve_workers,
    shard,
    shared_pool,
)
from .recon import ReconstructionProcess
from .snapshot import (
    restore_tree,
    restore_universe,
    snapshot_tree,
    snapshot_universe,
)

__all__ = [
    "ENV_START",
    "ENV_WORKERS",
    "OfflineResult",
    "ReconstructionProcess",
    "WorkerPool",
    "close_shared_pools",
    "compute_atoms",
    "convert_network",
    "default_start_method",
    "merge_universes",
    "offline_pipeline",
    "parallel_best_from_random",
    "parallel_build_oapt",
    "parallel_build_tree",
    "parallel_dataplane",
    "resolve_workers",
    "restore_tree",
    "restore_universe",
    "shard",
    "shared_pool",
    "snapshot_tree",
    "snapshot_universe",
]
