"""Stage 2 of the parallel offline pipeline: divide-and-conquer atoms.

Serial atom computation refines one working partition by every predicate
in turn, so late predicates pay BDD operations proportional to the
*full* atom count.  Splitting the predicate set into contiguous shards
keeps every worker's intermediate partition small (refinement cost grows
superlinearly in atom count), and the witness-guided
:func:`~repro.parallel.merge.merge_universes` combine step costs only
O(final atoms) BDD operations -- which is why the decomposition wins
even on a single core.

Workers are spawn-safe: each receives ``(pids, dumped predicate
functions)``, computes its shard universe in a private manager, and
ships back serialized atoms plus positional ``R`` sets.  The parent
reassembles each shard against its own canonical predicate functions,
folds the shards together with ``merge_universes``, and canonically
renumbers -- so the result is bit-identical to serial
``AtomicUniverse.compute(...).renumber_canonical()`` for any worker
count.
"""

from __future__ import annotations

from typing import Sequence

from ..bdd import BDDManager, Function
from ..bdd.serialize import dump_functions, load_functions
from ..core.atomic import AtomicUniverse
from ..network.dataplane import LabeledPredicate
from .merge import merge_universes
from .pool import WorkerPool, shard, shared_pool

__all__ = ["compute_atoms"]

#: One worker task: (pids, serialized predicate functions, same order).
_AtomsTask = tuple[tuple[int, ...], str]


def _atoms_shard(task: _AtomsTask):
    """Worker: full refinement over one predicate shard, privately.

    Returns ``(dumped atoms, r)`` where the atoms are serialized in
    sorted-atom-id order and ``r`` maps pid -> positions into that list.
    """
    pids, dumped = task
    manager = BDDManager(1)
    functions = load_functions(dumped)
    if functions:
        manager = functions[0].manager
    labeled = [
        LabeledPredicate(pid, "forward", "shard", "shard", fn)
        for pid, fn in zip(pids, functions)
    ]
    universe = AtomicUniverse.compute(manager, labeled)
    atom_order = sorted(universe.atom_ids())
    position = {atom_id: index for index, atom_id in enumerate(atom_order)}
    atoms = [universe.atom_fn(atom_id) for atom_id in atom_order]
    r = {
        pid: sorted(position[atom_id] for atom_id in universe.r(pid))
        for pid in pids
    }
    return dump_functions(atoms), r


def compute_atoms(
    manager: BDDManager,
    predicates: Sequence[LabeledPredicate],
    pool: WorkerPool | None = None,
    workers: int | None = None,
    recorder=None,
) -> AtomicUniverse:
    """Atomic predicates of ``predicates``, sharded across the pool.

    Output is independent of the worker count: atoms get canonical
    witness-ordered ids (see :meth:`AtomicUniverse.renumber_canonical`)
    on the serial path too, so ``workers=1`` and ``workers=8`` produce
    identical universes node-for-node.
    """
    if pool is None:
        pool = shared_pool(workers)
    predicates = list(predicates)
    parallel = recorder.parallel if recorder is not None else None
    if pool.serial or len(predicates) <= 1:
        if parallel is not None:
            parallel.record_shards("atoms", [len(predicates)])
        universe = AtomicUniverse.compute(manager, predicates)
        return universe.renumber_canonical()
    shards = shard(predicates, pool.workers)
    tasks: list[_AtomsTask] = []
    for chunk in shards:
        tasks.append(
            (
                tuple(labeled.pid for labeled in chunk),
                dump_functions([labeled.fn for labeled in chunk]),
            )
        )
    results = pool.map(_atoms_shard, tasks)
    bytes_to = sum(len(dumped) for _, dumped in tasks)
    bytes_from = 0
    universes: list[AtomicUniverse] = []
    for chunk, (dumped_atoms, r) in zip(shards, results):
        bytes_from += len(dumped_atoms)
        atoms = load_functions(dumped_atoms, manager)
        universes.append(
            AtomicUniverse.assemble(
                manager,
                {labeled.pid: labeled.fn for labeled in chunk},
                atoms,
                r,
            )
        )
    merged = universes[0]
    for other in universes[1:]:
        merged = merge_universes(merged, other, recorder=recorder)
    if parallel is not None:
        parallel.record_pool(pool.workers)
        parallel.record_shards("atoms", [len(chunk) for chunk in shards])
        parallel.record_shipping(to_workers=bytes_to, from_workers=bytes_from)
    return merged.renumber_canonical()
