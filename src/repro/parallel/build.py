"""Stage 3 of the parallel offline pipeline: tree construction.

Two construction strategies have exploitable parallelism:

* **Best-from-Random** -- the trials are independent once each gets its
  own seed (:func:`~repro.core.construction.draw_trial_seeds`).  Workers
  need no BDDs to *score* a trial: tree shape and leaf depths depend
  only on the ``R`` sets (integer sets), so each worker rebuilds the
  universe's structure from plain data, builds its trials' trees, and
  ships back one float per trial.  The parent rebuilds only the winning
  tree, against the real universe.
* **OAPT** -- the dominant cost is the root scan (all predicates against
  all atoms).  The survivor relation is acyclic, so a chunked scan --
  survivors of fixed-size chunks, then a scan over the survivors -- also
  yields a predicate not inferior to any other.  The chunk count is
  fixed (not tied to the worker count) and the serial fallback runs the
  same chunked scan in-process, so the chosen root is identical for
  every worker count.

Either way the final tree is built in the parent against the canonical
universe; only scores and candidate ids cross the process boundary.
"""

from __future__ import annotations

import random
import time
from typing import Mapping, Sequence

from ..core.aptree import APTree, build_ap_tree
from ..core.atomic import AtomicUniverse
from ..core.construction import (
    ConstructionReport,
    best_from_random,
    build_random,
    build_tree,
    draw_trial_seeds,
)
from ..core.ordering import _weigher, oapt_chooser, oapt_survivor
from .pool import WorkerPool, shard, shared_pool

__all__ = [
    "parallel_best_from_random",
    "parallel_build_oapt",
    "parallel_build_tree",
]

#: Chunk count for the OAPT root scan.  A constant (not the worker
#: count!) so the survivor-of-survivors outcome is identical under any
#: pool width, including the serial fallback.
_OAPT_ROOT_CHUNKS = 8


class _Structural:
    """A pickled stand-in exposing just what tree *scoring* reads.

    :func:`~repro.core.aptree.build_ap_tree` consults ``predicate_ids``,
    ``r``, ``atom_ids``, ``manager``, and ``predicate_fn(pid).node``;
    depths never evaluate a BDD, so a dummy node id suffices.
    """

    class _Fn:
        node = 0

    _FN = _Fn()

    def __init__(
        self, atom_ids: Sequence[int], r: Mapping[int, Sequence[int]]
    ) -> None:
        self.manager = None
        self._atom_ids = frozenset(atom_ids)
        self._r = {pid: frozenset(atoms) for pid, atoms in r.items()}

    def atom_ids(self) -> frozenset[int]:
        return self._atom_ids

    def predicate_ids(self) -> list[int]:
        return sorted(self._r)

    def r(self, pid: int) -> frozenset[int]:
        return self._r[pid]

    def predicate_fn(self, pid: int):
        return self._FN


#: One trial-scoring task:
#: (atom ids, (pid, r atom ids) pairs, seeds, (atom, weight) pairs | None).
_TrialTask = tuple[
    tuple[int, ...],
    tuple[tuple[int, tuple[int, ...]], ...],
    tuple[int, ...],
    tuple[tuple[int, float], ...] | None,
]


def _score_trials(task: _TrialTask) -> list[float]:
    """Worker: average leaf depth of one random-order tree per seed."""
    atom_ids, r_pairs, seeds, weight_pairs = task
    standin = _Structural(atom_ids, dict(r_pairs))
    weights = dict(weight_pairs) if weight_pairs is not None else None
    return [
        build_random(standin, random.Random(seed)).average_depth(weights)
        for seed in seeds
    ]


def parallel_best_from_random(
    universe: AtomicUniverse,
    trials: int = 100,
    rng: random.Random | None = None,
    weights: Mapping[int, float] | None = None,
    pool: WorkerPool | None = None,
) -> tuple[APTree, list[float]]:
    """Best-from-Random with trials fanned across the pool.

    Identical tree and identical depth list to
    ``best_from_random(universe, seeds=draw_trial_seeds(rng, trials))``:
    both paths score the same seeds in the same order and keep the first
    minimum.
    """
    rng = rng if rng is not None else random.Random(0)
    if pool is None:
        pool = shared_pool()
    seeds = draw_trial_seeds(rng, trials)
    if pool.serial:
        return best_from_random(universe, weights=weights, seeds=seeds)
    atom_ids = tuple(sorted(universe.atom_ids()))
    r_pairs = tuple(
        (pid, tuple(sorted(universe.r(pid))))
        for pid in universe.predicate_ids()
    )
    weight_pairs = tuple(sorted(weights.items())) if weights else None
    tasks: list[_TrialTask] = [
        (atom_ids, r_pairs, tuple(chunk), weight_pairs)
        for chunk in shard(seeds, pool.workers)
    ]
    depths = [depth for chunk in pool.map(_score_trials, tasks) for depth in chunk]
    best_index = min(range(len(depths)), key=depths.__getitem__)
    tree = build_random(universe, random.Random(seeds[best_index]))
    return tree, depths


#: One root-scan task:
#: ((pid, r atom ids) chunk, atom count, total weight, weight pairs | None).
_RootTask = tuple[
    tuple[tuple[int, tuple[int, ...]], ...],
    int,
    float,
    tuple[tuple[int, float], ...] | None,
]


def _chunk_survivor(task: _RootTask) -> int:
    """Worker: the OAPT survivor of one candidate chunk."""
    chunk, atom_count, weight_all, weight_pairs = task
    weigh = _weigher(dict(weight_pairs) if weight_pairs is not None else None)
    sets = {pid: frozenset(atoms) for pid, atoms in chunk}
    return oapt_survivor(
        [pid for pid, _ in chunk], sets, atom_count, weight_all, weigh
    )


def _oapt_root(
    universe: AtomicUniverse,
    weights: Mapping[int, float] | None,
    pool: WorkerPool,
) -> int | None:
    """The root predicate by chunked scan (None if nothing splits)."""
    atoms = universe.atom_ids()
    splitting = [
        pid
        for pid in universe.predicate_ids()
        if 0 < len(universe.r(pid)) < len(atoms)
    ]
    if not splitting:
        return None
    weigh = _weigher(dict(weights) if weights else None)
    weight_all = weigh(atoms)
    chunks = shard(splitting, min(_OAPT_ROOT_CHUNKS, len(splitting)))
    tasks: list[_RootTask] = [
        (
            tuple((pid, tuple(sorted(universe.r(pid)))) for pid in chunk),
            len(atoms),
            weight_all,
            tuple(sorted(weights.items())) if weights else None,
        )
        for chunk in chunks
    ]
    survivors = pool.map(_chunk_survivor, tasks)
    sets = {pid: universe.r(pid) for pid in survivors}
    return oapt_survivor(survivors, sets, len(atoms), weight_all, weigh)


def parallel_build_oapt(
    universe: AtomicUniverse,
    weights: Mapping[int, float] | None = None,
    pool: WorkerPool | None = None,
) -> APTree:
    """OAPT construction with the root scan spread across the pool.

    The serial fallback runs the *same* chunked scan in-process, so the
    resulting tree is identical for every worker count (though it may
    legitimately differ from :func:`~repro.core.construction.build_oapt`'s
    single-scan root when several predicates are mutually non-inferior).
    """
    if pool is None:
        pool = shared_pool()
    root = _oapt_root(universe, weights, pool)
    base = oapt_chooser(universe, weights)
    all_atoms = universe.atom_ids()

    def choose(candidates: list[int], atoms: frozenset[int]) -> int:
        if root is not None and atoms == all_atoms and root in candidates:
            return root
        return base(candidates, atoms)

    return build_ap_tree(universe, choose)


def parallel_build_tree(
    universe: AtomicUniverse,
    strategy: str = "oapt",
    rng: random.Random | None = None,
    trials: int = 100,
    weights: Mapping[int, float] | None = None,
    pool: WorkerPool | None = None,
    workers: int | None = None,
) -> ConstructionReport:
    """:func:`~repro.core.construction.build_tree` with pool dispatch.

    Strategies with no exploitable parallelism fall through to the
    serial builders unchanged.
    """
    if pool is None:
        pool = shared_pool(workers)
    rng = rng if rng is not None else random.Random(0)
    started = time.perf_counter()
    built_trials = 1
    if strategy == "best_from_random":
        tree, depths = parallel_best_from_random(
            universe, trials, rng, weights, pool
        )
        built_trials = len(depths)
    elif strategy == "oapt":
        tree = parallel_build_oapt(universe, weights, pool)
    else:
        return build_tree(universe, strategy, rng, trials, weights)
    elapsed = time.perf_counter() - started
    return ConstructionReport(
        strategy=strategy,
        tree=tree,
        elapsed_s=elapsed,
        average_depth=tree.average_depth(dict(weights) if weights else None),
        trials=built_trials,
    )
