"""Stage 1 of the parallel offline pipeline: sharded rule conversion.

Rule-to-predicate conversion is embarrassingly parallel per box
(Hazelhurst-style per-ACL/per-table independence): each worker gets the
network as JSON plus a contiguous shard of box names, compiles those
boxes' forwarding tables and ACLs into a *private* BDD manager, and ships
the functions back serialized.  The parent re-imports every shard into
the canonical manager and mints :class:`LabeledPredicate` ids in the same
box/slot order a serial compile would use, so pids are identical.
"""

from __future__ import annotations

from ..bdd import BDDManager, Function
from ..bdd.serialize import dump_functions, load_functions
from ..network.builder import Network
from ..network.dataplane import DataPlane
from ..network.predicates import PredicateCompiler
from ..network.serialize import network_from_json, network_to_json
from .pool import WorkerPool, shard, shared_pool

__all__ = ["convert_network", "parallel_dataplane"]

#: One worker task: (network JSON, box names to compile).
_ConvertTask = tuple[str, tuple[str, ...]]


def _convert_shard(task: _ConvertTask):
    """Worker: compile a shard of boxes in a private manager.

    Returns ``(entries, dumped)`` where ``entries[i]`` is the
    ``(box, kind, port)`` provenance of the i-th serialized function.
    """
    network_json, box_names = task
    network = network_from_json(network_json)
    compiler = PredicateCompiler(network.layout)
    entries: list[tuple[str, str, str]] = []
    functions: list[Function] = []
    for name in box_names:
        for kind, port, fn in compiler.box_predicates(network.box(name)):
            entries.append((name, kind, port))
            functions.append(fn)
    return entries, dump_functions(functions)


def convert_network(
    network: Network,
    manager: BDDManager,
    pool: WorkerPool,
    recorder=None,
) -> dict[str, list[tuple[str, str, Function]]]:
    """Compile every box across the pool; functions land in ``manager``.

    Returns the ``precompiled`` mapping :class:`DataPlane` accepts:
    box name -> ``(kind, port, fn)`` in canonical mint order.
    """
    names = list(network.boxes)
    parallel = recorder.parallel if recorder is not None else None
    if pool.serial:
        compiler = PredicateCompiler(network.layout, manager)
        if parallel is not None:
            parallel.record_shards("convert", [len(names)])
        return {
            name: compiler.box_predicates(network.box(name)) for name in names
        }
    network_json = network_to_json(network)
    shards = shard(names, pool.workers)
    tasks: list[_ConvertTask] = [
        (network_json, tuple(chunk)) for chunk in shards
    ]
    results = pool.map(_convert_shard, tasks)
    precompiled: dict[str, list[tuple[str, str, Function]]] = {
        name: [] for name in names
    }
    bytes_from = 0
    for entries, dumped in results:
        bytes_from += len(dumped)
        functions = load_functions(dumped, manager)
        for (name, kind, port), fn in zip(entries, functions):
            precompiled[name].append((kind, port, fn))
    if parallel is not None:
        parallel.record_pool(pool.workers)
        parallel.record_shards("convert", [len(chunk) for chunk in shards])
        parallel.record_shipping(
            to_workers=len(network_json) * len(tasks), from_workers=bytes_from
        )
    return precompiled


def parallel_dataplane(
    network: Network,
    manager: BDDManager | None = None,
    workers: int | None = None,
    pool: WorkerPool | None = None,
    recorder=None,
) -> DataPlane:
    """A :class:`DataPlane` whose conversion ran across the pool.

    Bit-identical to ``DataPlane(network, manager)`` -- same pids, same
    function nodes -- because workers replicate the canonical per-box
    compile order and the parent mints in serial box order.
    """
    if pool is None:
        pool = shared_pool(workers)
    if manager is None:
        manager = BDDManager(network.layout.total_width)
    if pool.serial:
        return DataPlane(network, manager)
    precompiled = convert_network(network, manager, pool, recorder=recorder)
    return DataPlane(network, manager, precompiled=precompiled)
