"""Merging two atomic universes (divide-and-conquer combine step).

The atoms of ``P1 ∪ P2`` are exactly the non-false pairwise intersections
``a1 & a2`` of the atoms of ``P1`` and ``P2`` (Boufkhad et al.: atom
computation decomposes over predicate subsets), and
``R(p) = union of the children of the old atoms in R(p)`` on whichever
side ``p`` came from.  The naive combine tries all ``n1 * n2`` pairs, and
almost all of those intersections are false; at bench scale that costs
more than serial refinement saves.

This merge never performs an unproductive BDD operation.  For each atom
``a1`` it walks the *remaining* region of ``a1`` by canonical witness:
``first_sat`` produces a packet inside the region, a Quick-Ordering AP
Tree over the second universe point-locates that packet to the unique
``a2`` containing it (integer-set construction, one BDD evaluation per
tree level -- no BDD algebra), and only then does it compute the
guaranteed-non-false ``remaining & a2`` and shrink ``remaining``.  Every
AND/DIFF pair yields one output atom, so the merge does O(final atoms)
BDD operations total.
"""

from __future__ import annotations

from ..bdd import Function
from ..core.atomic import AtomicUniverse
from ..core.construction import build_quick_ordering

__all__ = ["merge_universes"]


def merge_universes(
    first: AtomicUniverse, second: AtomicUniverse, recorder=None
) -> AtomicUniverse:
    """Combine two universes over disjoint predicate sets.

    Both must live in the same manager (serialized universes are loaded
    into the canonical manager before merging).  The result is the same
    partition ``AtomicUniverse.compute`` would produce over the union of
    the predicate snapshots -- identical atom functions and ``R`` sets,
    modulo atom-id labeling (see
    :meth:`AtomicUniverse.renumber_canonical`).
    """
    manager = first.manager
    if second.manager is not manager:
        raise ValueError("universes to merge must share one BDD manager")
    overlap = set(first.predicate_ids()) & set(second.predicate_ids())
    if overlap:
        raise ValueError(
            f"universes to merge share predicate pids {sorted(overlap)[:5]}"
        )
    locate = build_quick_ordering(second).classify
    first_sat = manager.first_sat
    atoms: list[Function] = []
    # Old atom id -> output atom ids (its fragments), per side.
    children_first: dict[int, list[int]] = {}
    children_second: dict[int, list[int]] = {
        atom_id: [] for atom_id in second.atom_ids()
    }
    for id1 in sorted(first.atom_ids()):
        remaining = first.atom_fn(id1)
        fragments: list[int] = []
        while not remaining.is_false:
            id2 = locate(first_sat(remaining.node))
            other = second.atom_fn(id2)
            fragments.append(len(atoms))
            children_second[id2].append(len(atoms))
            atoms.append(remaining & other)
            remaining = remaining - other
        children_first[id1] = fragments
    pred_fns: dict[int, Function] = {}
    r: dict[int, list[int]] = {}
    for source, children in (
        (first, children_first),
        (second, children_second),
    ):
        for pid in source.predicate_ids():
            pred_fns[pid] = source.predicate_fn(pid)
            r[pid] = [
                fragment
                for old_id in sorted(source.r(pid))
                for fragment in children[old_id]
            ]
    merged = AtomicUniverse.assemble(manager, pred_fns, atoms, r)
    if recorder is not None:
        recorder.parallel.record_merge(merged.atom_count)
    return merged
