"""The end-to-end parallel offline pipeline: rules -> predicates ->
atoms -> AP Tree, with every stage fanned across one worker pool.

This is the multi-core counterpart of the serial offline path
(``DataPlane`` + ``AtomicUniverse.compute`` + ``build_tree``) that
:meth:`repro.core.classifier.APClassifier.build` routes through when
``workers > 1``.  The contract is exact output equivalence: for a given
network and strategy, any worker count (including the serial fallback at
``workers=1``) produces the same pids, the same canonical atom ids with
the same BDD nodes, the same ``R`` sets, and a tree computing the same
classification function.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Mapping

from ..bdd import BDDManager
from ..core.atomic import AtomicUniverse
from ..core.construction import ConstructionReport
from ..network.builder import Network
from ..network.dataplane import DataPlane
from .atoms import compute_atoms
from .build import parallel_build_tree
from .convert import parallel_dataplane
from .pool import WorkerPool, shared_pool

__all__ = ["OfflineResult", "offline_pipeline"]


@dataclass
class OfflineResult:
    """Everything the offline pipeline produced, with per-stage walls."""

    dataplane: DataPlane
    universe: AtomicUniverse
    report: ConstructionReport
    workers: int
    timings: dict[str, float] = field(default_factory=dict)

    @property
    def total_s(self) -> float:
        return sum(self.timings.values())


def offline_pipeline(
    network: Network,
    workers: int | None = None,
    strategy: str = "oapt",
    manager: BDDManager | None = None,
    pool: WorkerPool | None = None,
    recorder=None,
    rng: random.Random | None = None,
    trials: int = 100,
    weights: Mapping[int, float] | None = None,
) -> OfflineResult:
    """Run conversion, atom computation, and construction on the pool.

    The three offline phases (rule-to-predicate conversion sharded per
    box, divide-and-conquer atomic predicates with a witness-guided
    merge, and the Best-from-Random / OAPT root scan) execute on
    ``pool`` (default: the shared pool sized by ``workers`` or
    ``REPRO_WORKERS``).  The returned :class:`OfflineResult` carries the
    dataplane, universe, tree, and per-phase ``timings``; the artifacts
    are output-equivalent to the serial build for any worker count --
    same canonical atom ids, same R-sets, same classifications.
    """
    if pool is None:
        pool = shared_pool(workers)
    parallel = recorder.parallel if recorder is not None else None
    timings: dict[str, float] = {}

    started = time.perf_counter()
    dataplane = parallel_dataplane(
        network, manager=manager, pool=pool, recorder=recorder
    )
    timings["convert"] = time.perf_counter() - started

    started = time.perf_counter()
    universe = compute_atoms(
        dataplane.manager, dataplane.predicates(), pool=pool, recorder=recorder
    )
    timings["atoms"] = time.perf_counter() - started

    started = time.perf_counter()
    report = parallel_build_tree(
        universe,
        strategy=strategy,
        rng=rng,
        trials=trials,
        weights=weights,
        pool=pool,
    )
    timings["build"] = time.perf_counter() - started

    if parallel is not None:
        parallel.record_pool(pool.workers)
        for stage, seconds in timings.items():
            parallel.record_stage(stage, seconds)
    return OfflineResult(
        dataplane=dataplane,
        universe=universe,
        report=report,
        workers=pool.workers,
        timings=timings,
    )
