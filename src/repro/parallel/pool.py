"""Worker-pool plumbing for the parallel offline pipeline.

Design rules every stage in this package follows:

* **spawn-safe tasks** -- a worker task is a module-level function whose
  arguments are picklable plain data (JSON strings, tuples of ints);
  nothing relies on memory inherited from the parent, so the same code
  runs under ``fork``, ``spawn``, and ``forkserver``;
* **private managers** -- a worker never sees the parent's
  :class:`~repro.bdd.manager.BDDManager`.  BDD functions cross the
  process boundary only through :func:`repro.bdd.serialize.dump_functions`
  / ``load_functions``;
* **graceful serial fallback** -- at ``workers <= 1`` every stage runs the
  plain in-process code path with no pool, no serialization, and no
  child processes.

``REPRO_WORKERS`` sets the default pool width (explicit ``workers=``
arguments win); ``REPRO_MP_START`` forces a start method (default:
``fork`` where available, else ``spawn``).
"""

from __future__ import annotations

import atexit
import multiprocessing
from typing import Callable, Iterable, Sequence, TypeVar

from .. import config

__all__ = [
    "ENV_WORKERS",
    "ENV_START",
    "WorkerPool",
    "default_start_method",
    "resolve_workers",
    "shard",
    "shared_pool",
    "close_shared_pools",
]

ENV_WORKERS = config.ENV_WORKERS
ENV_START = config.ENV_MP_START

_T = TypeVar("_T")
_R = TypeVar("_R")


def resolve_workers(workers: int | None = None) -> int:
    """The effective pool width: argument, else env, else 1 (serial)."""
    return config.workers(workers)


def default_start_method() -> str:
    """``REPRO_MP_START`` if set, else ``fork`` where available."""
    return config.mp_start()


def shard(items: Iterable[_T], shards: int) -> list[list[_T]]:
    """Split ``items`` into at most ``shards`` contiguous, near-even runs.

    Contiguity matters: predicates from one box (or one pid range) refine
    each other heavily, so contiguous shards keep intermediate universes
    small -- measured ~2x smaller merge inputs than interleaved sharding.
    Never returns an empty shard.
    """
    pool_items = list(items)
    count = max(1, min(shards, len(pool_items)))
    base, extra = divmod(len(pool_items), count)
    out: list[list[_T]] = []
    start = 0
    for index in range(count):
        size = base + (1 if index < extra else 0)
        if size:
            out.append(pool_items[start : start + size])
        start += size
    return out


class WorkerPool:
    """A lazily started ``multiprocessing.Pool`` with a serial fast path.

    The pool process group is created on the first :meth:`map` that has
    both ``workers > 1`` and more than one task; until then (and forever,
    at ``workers <= 1``) the pool costs nothing.
    """

    def __init__(
        self, workers: int | None = None, start_method: str | None = None
    ) -> None:
        self.workers = resolve_workers(workers)
        self.start_method = (
            start_method if start_method is not None else default_start_method()
        )
        self._pool = None

    @property
    def serial(self) -> bool:
        """True when every map runs in-process (the fallback path)."""
        return self.workers <= 1

    def map(
        self, task: Callable[[_T], _R], items: Sequence[_T]
    ) -> list[_R]:
        """Run ``task`` over ``items``, in order, across the pool."""
        items = list(items)
        if self.serial or len(items) <= 1:
            return [task(item) for item in items]
        if self._pool is None:
            context = multiprocessing.get_context(self.start_method)
            self._pool = context.Pool(processes=self.workers)
        return self._pool.map(task, items, chunksize=1)

    def close(self) -> None:
        """Tear down the worker processes (idempotent)."""
        pool = self._pool
        self._pool = None
        if pool is not None:
            pool.terminate()
            pool.join()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "live" if self._pool is not None else "lazy"
        return f"WorkerPool({self.workers} workers, {self.start_method}, {state})"


#: Process-wide pool cache keyed by (workers, start_method).  Pipeline
#: entry points reuse these so repeated builds (a test suite under
#: ``REPRO_WORKERS=2``, a bench sweeping worker counts) pay the process
#: startup cost once, not per call.
_SHARED: dict[tuple[int, str], WorkerPool] = {}


def shared_pool(
    workers: int | None = None, start_method: str | None = None
) -> WorkerPool:
    """A cached :class:`WorkerPool` for the resolved configuration."""
    pool = WorkerPool(workers, start_method)
    key = (pool.workers, pool.start_method)
    existing = _SHARED.get(key)
    if existing is None:
        _SHARED[key] = existing = pool
    return existing


def close_shared_pools() -> None:
    """Close every cached pool (registered at interpreter exit)."""
    pools = list(_SHARED.values())
    _SHARED.clear()
    for pool in pools:
        pool.close()


atexit.register(close_shared_pools)
