"""A real reconstruction process (Section VI-B, Fig. 8).

The query process ships a predicate snapshot (pids + serialized BDDs)
down a pipe; the worker computes the atomic universe and builds a fresh
AP Tree in its *own* manager, then ships both back as snapshots
(:mod:`repro.parallel.snapshot`).  The parent restores them into the
canonical manager and swaps after replaying queued updates -- the
version-stamp staleness machinery on the tree is untouched, because the
restored tree is a brand-new object at version 0.

The worker is a long-lived daemon: one process serves every rebuild of a
simulation run, so process startup is paid once.
"""

from __future__ import annotations

import random
import traceback
from multiprocessing import get_context
from typing import Sequence

from ..bdd import BDDManager
from ..bdd.serialize import dump_functions, load_functions
from ..core.aptree import APTree
from ..core.atomic import AtomicUniverse
from ..core.construction import build_tree
from ..network.dataplane import LabeledPredicate
from .pool import default_start_method
from .snapshot import (
    restore_tree,
    restore_universe,
    snapshot_tree,
    snapshot_universe,
)

__all__ = ["ReconstructionProcess"]


def _reconstruction_worker(conn, strategy: str) -> None:
    """Worker loop: one (universe, tree) rebuild per request, until None."""
    import time

    # Ready handshake: under spawn the child re-imports the package
    # before this line runs; signalling here lets the parent charge that
    # startup to construction instead of to the first rebuild.
    conn.send({"ready": True})
    while True:
        request = conn.recv()
        if request is None:
            break
        try:
            started = time.perf_counter()
            functions = load_functions(request["predicates"])
            manager = functions[0].manager if functions else BDDManager(1)
            labeled = [
                LabeledPredicate(pid, "forward", "recon", "recon", fn)
                for pid, fn in zip(request["pids"], functions)
            ]
            universe = AtomicUniverse.compute(manager, labeled)
            universe = universe.renumber_canonical()
            tree = build_tree(
                universe, strategy=request["strategy"], rng=random.Random(0)
            ).tree
            conn.send(
                {
                    "universe": snapshot_universe(universe),
                    "tree": snapshot_tree(tree, universe),
                    "elapsed_s": time.perf_counter() - started,
                }
            )
        except Exception:  # ship the failure instead of hanging the parent
            conn.send({"error": traceback.format_exc()})
    conn.close()


class ReconstructionProcess:
    """Handle on a live rebuild worker: submit / poll / receive.

    One rebuild may be in flight at a time (matching the paper's single
    reconstruction core); :meth:`submit` while busy is a logic error.
    """

    def __init__(
        self,
        manager: BDDManager,
        strategy: str = "oapt",
        start_method: str | None = None,
        recorder=None,
    ) -> None:
        self.manager = manager
        self.strategy = strategy
        self.recorder = recorder
        context = get_context(
            start_method if start_method is not None else default_start_method()
        )
        self._conn, child_conn = context.Pipe()
        self._process = context.Process(
            target=_reconstruction_worker,
            args=(child_conn, strategy),
            daemon=True,
        )
        self._process.start()
        child_conn.close()
        ready = self._conn.recv()
        if not (isinstance(ready, dict) and ready.get("ready")):
            raise RuntimeError("reconstruction worker failed to start")
        self._busy = False

    @property
    def busy(self) -> bool:
        """True while a submitted rebuild has not been received."""
        return self._busy

    def submit(self, predicates: Sequence[LabeledPredicate]) -> None:
        """Ship a predicate snapshot to the worker (non-blocking)."""
        if self._busy:
            raise RuntimeError("a rebuild is already in flight")
        dumped = dump_functions([labeled.fn for labeled in predicates])
        self._conn.send(
            {
                "pids": [labeled.pid for labeled in predicates],
                "predicates": dumped,
                "strategy": self.strategy,
            }
        )
        if self.recorder is not None:
            self.recorder.parallel.record_shipping(
                to_workers=len(dumped), from_workers=0
            )
        self._busy = True

    def poll(self, timeout: float = 0.0) -> bool:
        """Is a finished rebuild waiting to be received?"""
        return self._busy and self._conn.poll(timeout)

    def receive(self) -> tuple[AtomicUniverse, APTree, float]:
        """Block for the in-flight result and restore it canonically."""
        if not self._busy:
            raise RuntimeError("no rebuild in flight")
        payload = self._conn.recv()
        self._busy = False
        error = payload.get("error")
        if error is not None:
            raise RuntimeError(f"reconstruction worker failed:\n{error}")
        if self.recorder is not None:
            self.recorder.parallel.record_shipping(
                to_workers=0,
                from_workers=len(payload["universe"]["atoms"])
                + len(payload["universe"]["predicates"]),
            )
        universe = restore_universe(payload["universe"], self.manager)
        tree = restore_tree(payload["tree"], universe)
        return universe, tree, payload["elapsed_s"]

    def close(self) -> None:
        """Shut the worker down (idempotent)."""
        process = self._process
        if process is None:
            return
        self._process = None
        try:
            if process.is_alive():
                self._conn.send(None)
                process.join(timeout=5.0)
        except (BrokenPipeError, OSError):
            pass
        if process.is_alive():  # pragma: no cover - unresponsive worker
            process.terminate()
            process.join()
        self._conn.close()

    def __enter__(self) -> "ReconstructionProcess":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "busy" if self._busy else "idle"
        return f"ReconstructionProcess({self.strategy}, {state})"
