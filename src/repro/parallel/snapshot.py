"""Whole-artifact serialization: universes and AP Trees as plain data.

The reconstruction worker (Section VI-B, Fig. 8) computes a fresh
universe and tree in its own process and must ship both back to the
query process.  BDD functions travel via :mod:`repro.bdd.serialize`;
this module adds the structure around them: atom order, ``R`` sets as
positions, and the tree as a flat preorder record list.

Atom ids are positional: a snapshot stores atoms in sorted-id order and
:func:`restore_universe` re-mints them as ``0..n-1``.  Universes that
went through :meth:`AtomicUniverse.renumber_canonical` (everything the
parallel pipeline produces) already have exactly those ids, so a
snapshot round-trip is id-stable.
"""

from __future__ import annotations

from ..bdd import BDDManager
from ..bdd.serialize import dump_functions, load_functions
from ..core.aptree import APTree, APTreeNode
from ..core.atomic import AtomicUniverse

__all__ = [
    "snapshot_universe",
    "restore_universe",
    "snapshot_tree",
    "restore_tree",
]

_LEAF = -1


def snapshot_universe(universe: AtomicUniverse) -> dict:
    """The universe as a JSON-ready dict (atoms positional, R by position)."""
    order = sorted(universe.atom_ids())
    position = {atom_id: index for index, atom_id in enumerate(order)}
    pids = universe.predicate_ids()
    return {
        "atoms": dump_functions([universe.atom_fn(a) for a in order]),
        "pids": pids,
        "predicates": dump_functions([universe.predicate_fn(p) for p in pids]),
        "r": [
            sorted(position[atom_id] for atom_id in universe.r(pid))
            for pid in pids
        ],
    }


def restore_universe(payload: dict, manager: BDDManager) -> AtomicUniverse:
    """Rebuild a snapshot in ``manager``; atoms become ids ``0..n-1``."""
    atoms = load_functions(payload["atoms"], manager)
    predicates = load_functions(payload["predicates"], manager)
    pids = payload["pids"]
    return AtomicUniverse.assemble(
        manager,
        dict(zip(pids, predicates)),
        atoms,
        dict(zip(pids, payload["r"])),
    )


def snapshot_tree(tree: APTree, universe: AtomicUniverse) -> list[list[int]]:
    """The tree as preorder records.

    ``[_LEAF, atom position, 0]`` for leaves, ``[pid, low index, high
    index]`` for internal nodes; children always index later records.
    ``universe`` must be the universe the tree was built over (its atom
    order defines the leaf positions).
    """
    position = {
        atom_id: index
        for index, atom_id in enumerate(sorted(universe.atom_ids()))
    }
    records: list[list[int]] = []
    # (node, parent record index, child slot); preorder so children
    # always land at larger indices than their parent.
    stack: list[tuple[APTreeNode, int, int]] = [(tree.root, -1, 0)]
    while stack:
        node, parent, slot = stack.pop()
        index = len(records)
        if parent >= 0:
            records[parent][slot] = index
        if node.is_leaf:
            assert node.atom_id is not None
            records.append([_LEAF, position[node.atom_id], 0])
        else:
            assert node.pid is not None
            assert node.low is not None and node.high is not None
            records.append([node.pid, 0, 0])
            stack.append((node.high, index, 2))
            stack.append((node.low, index, 1))
    return records


def restore_tree(
    records: list[list[int]],
    universe: AtomicUniverse,
    extra_fn_nodes: dict[int, int] | None = None,
) -> APTree:
    """Rebuild a snapshot against a (restored) universe.

    Leaf positions resolve through the universe's sorted atom ids and
    internal nodes re-fetch their predicate's BDD node from the
    universe, so the tree is fully wired into the target manager.

    ``extra_fn_nodes`` resolves pids the universe no longer knows: a
    tree can reference *tombstoned* predicates (removed from the
    universe, still evaluated by their nodes until the next rebuild),
    and the binary artifact persists those functions separately (see
    ``repro.artifact.codec``).  A pid found in neither raises
    ``KeyError`` as before.
    """
    if not records:
        raise ValueError("empty tree snapshot")
    order = sorted(universe.atom_ids())
    built: list[APTreeNode | None] = [None] * len(records)
    for index in reversed(range(len(records))):
        pid, first, second = records[index]
        if pid == _LEAF:
            built[index] = APTreeNode.leaf(order[first])
        else:
            low = built[first]
            high = built[second]
            assert low is not None and high is not None
            if extra_fn_nodes is not None and not universe.has_predicate(pid):
                fn_node = extra_fn_nodes[pid]
            else:
                fn_node = universe.predicate_fn(pid).node
            built[index] = APTreeNode.internal(pid, fn_node, low, high)
    root = built[0]
    assert root is not None
    return APTree(universe.manager, root)
