"""One front door for classifier persistence.

The reproduction grew two on-disk forms: the human-readable JSON
snapshot (:mod:`repro.core.snapshots`) and the binary compiled artifact
(:mod:`repro.artifact`), which adds per-section CRCs and an ``mmap``
warm-start measured in milliseconds (the offline stage in Fig. 11 is
what it avoids; Section VII-B is why the result is small enough to ship
around).  This module unifies them:

* :func:`save` writes either format -- ``format="artifact"`` (default)
  or ``"json"``;
* :func:`load` restores from either, auto-detected by magic bytes, so
  callers never care which format a path holds;
* :func:`classifier_to_json` / :func:`classifier_from_json` are the
  supported string-level JSON API (the old
  ``core.snapshots.save_classifier``/``load_classifier`` names are
  deprecated shims over these);
* :func:`detect_format` answers "what is this file?" without loading.

Artifact-only capabilities (serving-only loads, shared-memory buffers,
``describe``) stay in :mod:`repro.artifact`.
"""

from __future__ import annotations

import os

from .artifact import (
    ArtifactError,
    is_artifact,
    load_artifact,
    save_artifact,
)
from .artifact.container import MAGIC
from .core.classifier import APClassifier
from .core.snapshots import SnapshotMismatch, _load_json, _save_json

__all__ = [
    "save",
    "load",
    "detect_format",
    "classifier_to_json",
    "classifier_from_json",
    "ArtifactError",
    "SnapshotMismatch",
]

FORMATS = ("artifact", "json")


def classifier_to_json(classifier: APClassifier) -> str:
    """The classifier as a JSON snapshot string (no file involved)."""
    return _save_json(classifier)


def classifier_from_json(text: str) -> APClassifier:
    """Restore a classifier from :func:`classifier_to_json` output."""
    return _load_json(text)


def save(
    classifier: APClassifier,
    path: str | os.PathLike,
    *,
    format: str = "artifact",
    backend: str | None = None,
    recorder=None,
) -> int:
    """Write ``classifier`` to ``path``; returns bytes written.

    ``format="artifact"`` (default) writes the checksummed binary
    container feeding the mmap warm start; ``format="json"`` writes the
    portable JSON snapshot.  Both are readable back via :func:`load`.
    """
    if format == "artifact":
        return save_artifact(
            classifier, path, backend=backend, recorder=recorder
        )
    if format == "json":
        import time

        start = time.perf_counter()
        text = classifier_to_json(classifier)
        data = text.encode()
        tmp = os.fspath(path) + ".tmp"
        with open(tmp, "wb") as handle:
            handle.write(data)
        os.replace(tmp, path)
        if recorder is None:
            recorder = classifier.recorder
        if recorder is not None:
            recorder.persist.record_save(
                len(data), time.perf_counter() - start
            )
        return len(data)
    raise ValueError(
        f"unknown persistence format {format!r} (expected one of {FORMATS})"
    )


def detect_format(path: str | os.PathLike) -> str:
    """``"artifact"`` or ``"json"``, sniffed from the file's first bytes."""
    with open(path, "rb") as handle:
        prefix = handle.read(len(MAGIC))
    return "artifact" if is_artifact(prefix) else "json"


def load(
    path: str | os.PathLike,
    *,
    backend: str | None = None,
    use_mmap: bool | None = None,
    verify: bool | None = None,
    deep_verify: bool = False,
    recorder=None,
) -> APClassifier:
    """Restore a classifier from ``path``, whatever format it holds.

    Artifacts honor the mmap/verify knobs; JSON snapshots ignore them
    (the JSON loader always recompiles the network and checks every
    predicate, the ``SnapshotMismatch`` defense).
    """
    if detect_format(path) == "artifact":
        return load_artifact(
            path,
            backend=backend,
            use_mmap=use_mmap,
            verify=verify,
            deep_verify=deep_verify,
            recorder=recorder,
        )
    import time

    start = time.perf_counter()
    with open(path, "rb") as handle:
        data = handle.read()
    classifier = classifier_from_json(data.decode())
    if recorder is not None:
        recorder.persist.record_load(
            len(data), time.perf_counter() - start, mmapped=False
        )
    return classifier
