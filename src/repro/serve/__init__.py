"""``repro.serve``: the online query service (serving layer).

Fronts an :class:`~repro.core.classifier.APClassifier` with an asyncio
micro-batching dispatcher so many concurrent callers share the compiled
engine's batch path, with bounded admission (backpressure or shedding),
per-request deadlines, and graceful degradation while the data plane
churns and reconstructions swap trees underneath the queries.  An
optional generation-keyed :class:`ResultCache` answers repeated hot
headers synchronously at admission.  See ``docs/serving.md`` for the
operations guide and the TCP wire protocol.
"""

from .cache import ResultCache
from .service import QueryService, QueryShed, ServiceClosed
from .shard import (
    ShardCluster,
    ShardRouter,
    serve_front_forever,
    start_front_server,
)
from .tcp import serve_forever, start_tcp_server
from .workers import ServeWorkerPool, closed_loop_qps

__all__ = [
    "QueryService",
    "QueryShed",
    "ResultCache",
    "ServiceClosed",
    "ServeWorkerPool",
    "ShardCluster",
    "ShardRouter",
    "closed_loop_qps",
    "serve_forever",
    "serve_front_forever",
    "start_front_server",
    "start_tcp_server",
]
