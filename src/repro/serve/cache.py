"""Hot-header result cache for the serving front-end.

Real query streams are heavily skewed: a handful of (flow, behavior)
headers dominate -- the Zipf-shaped workloads the serve benchmarks
replay.  For those, even the fused batch kernel is wasted work after the
first sighting, and so is the whole micro-batching machinery (future,
queue slot, dispatcher pass).  :class:`ResultCache` lets the service
answer repeats synchronously at admission time: one dict probe instead
of a queue round-trip.

Correctness hinges on *generation keying*.  Every event that can change
what a header classifies to -- a rule update, a reconstruction swap, a
generation handoff, or an out-of-band tree mutation observed as a
staleness fallback -- bumps :attr:`ResultCache.generation` and empties
the map, so a hit can only ever return an atom id computed by the
classifier generation currently serving.  The service performs all
cache operations on the event-loop thread and never awaits between the
generation check and the probe, which makes bump-then-clear atomic with
respect to queries.

Eviction is plain LRU over an ordered dict: hits refresh recency,
inserts beyond ``capacity`` evict the oldest entry.  Counters (hits,
misses, evictions, invalidations) land in
:class:`repro.obs.ServeCounters` when one is attached, feeding the
``serve.result_cache`` snapshot section (schema /5).
"""

from __future__ import annotations

from collections import OrderedDict

__all__ = ["ResultCache"]


class ResultCache:
    """Bounded LRU of ``header -> atom id`` for one classifier generation.

    Not thread-safe by itself: the owning :class:`~repro.serve.QueryService`
    confines every call to its event-loop thread.
    """

    __slots__ = ("capacity", "generation", "_entries", "_counters")

    def __init__(self, capacity: int, counters=None) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.capacity = capacity
        #: Bumped on every invalidation; exposed so tests and benchmarks
        #: can assert that a swap really retired the cached generation.
        self.generation = 0
        self._entries: OrderedDict[int, int] = OrderedDict()
        self._counters = counters

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, header: int) -> int | None:
        """The cached atom id for ``header``, refreshing its recency."""
        entries = self._entries
        atom_id = entries.get(header)
        counters = self._counters
        if atom_id is None:
            if counters is not None:
                counters.cache_misses += 1
            return None
        entries.move_to_end(header)
        if counters is not None:
            counters.cache_hits += 1
        return atom_id

    def put(self, header: int, atom_id: int) -> None:
        """Remember ``header``'s atom id, evicting the LRU entry if full."""
        entries = self._entries
        if header in entries:
            entries[header] = atom_id
            entries.move_to_end(header)
            return
        if len(entries) >= self.capacity:
            entries.popitem(last=False)
            if self._counters is not None:
                self._counters.cache_evictions += 1
        entries[header] = atom_id

    def invalidate(self) -> None:
        """Retire the whole generation: clear the map, bump the counter."""
        self.generation += 1
        self._entries.clear()
        if self._counters is not None:
            self._counters.cache_invalidations += 1

    def stats(self) -> dict:
        """Instantaneous gauges (the cumulative counters live in obs)."""
        return {
            "capacity": self.capacity,
            "entries": len(self._entries),
            "generation": self.generation,
        }

    def __repr__(self) -> str:
        return (
            f"ResultCache({len(self._entries)}/{self.capacity} entries, "
            f"generation {self.generation})"
        )
