"""Length-prefixed binary framing for the serve tier.

The newline-JSON endpoint (:mod:`repro.serve.tcp`) is friendly to
humans and ``nc``, but every request pays JSON encode/decode and one
syscall-sized line per query.  The shard router needs something a load
balancer (and the router itself) can push *batches* through: this
module defines a tiny length-prefixed frame format with multi-query
classify frames, so one round trip carries hundreds of headers and the
byte layout is exactly the kernel's word-packed form -- under numpy a
received batch is classified with zero per-header Python work.

Wire format (all integers little-endian)::

    frame   := MAGIC(0xAA) | u32 length | u8 type | payload
    length  := len(payload)   (the type byte is not counted)

The leading magic byte makes frames distinguishable from newline-JSON
on the same port (a JSON request starts with ``{`` or whitespace,
never ``0xAA``), which is how the TCP front end speaks both protocols
per-connection.  Frame types:

===============  ====  ======================================================
``PING``         0x01  empty; answered with ``PONG``
``CLASSIFY``     0x02  ``u32 count | u8 width | count*width u64`` headers
``SHARD_CLASSIFY``  0x03  ``u32 generation | u32 count | u8 width |
                       count u32`` frontiers ``| count*width u64`` headers
``METRICS``      0x04  empty; answered with ``METRICS_RESULT`` (JSON)
``DIFF``         0x05  UTF-8 JSON request; answered with ``DIFF_RESULT``
``WHATIF``       0x06  UTF-8 JSON request; answered with ``WHATIF_RESULT``
``PONG``         0x81  empty
``RESULT``       0x82  ``u32 count | count i64`` atom ids
``SHARD_RESULT`` 0x83  ``u32 generation | u32 count | count i64`` atom ids
``METRICS_RESULT``  0x84  UTF-8 JSON object
``DIFF_RESULT``  0x85  UTF-8 JSON object (the generation-diff report)
``WHATIF_RESULT``  0x86  UTF-8 JSON object (the what-if report)
``ERROR``        0x7F  UTF-8 message
===============  ====  ======================================================

``width`` is the number of u64 words per header
(:func:`repro.core.kernel.words_per_header`); headers are the kernel's
packed form, so ``<=64``-variable layouts ship one word per header.
``SHARD_CLASSIFY`` carries the generation id the router routed under:
replicas answer strictly from that generation (they hold both the old
and the new one between PREPARE and COMMIT of a handoff), which is the
mechanism that makes a batch's answers never mix generations.
"""

from __future__ import annotations

import struct
import sys
from array import array

from .. import config

try:  # pragma: no cover - exercised via the CI matrix
    if config.numpy_disabled():
        _np = None
    else:
        import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

__all__ = [
    "FRAME_MAGIC",
    "MAX_FRAME_BYTES",
    "PING",
    "PONG",
    "CLASSIFY",
    "SHARD_CLASSIFY",
    "METRICS",
    "DIFF",
    "WHATIF",
    "RESULT",
    "SHARD_RESULT",
    "METRICS_RESULT",
    "DIFF_RESULT",
    "WHATIF_RESULT",
    "ERROR",
    "FrameError",
    "RemoteError",
    "pack_frame",
    "read_frame",
    "read_rest_of_frame",
    "encode_classify",
    "decode_classify",
    "encode_shard_classify",
    "decode_shard_classify",
    "encode_result",
    "decode_result",
    "encode_shard_result",
    "decode_shard_result",
]

FRAME_MAGIC = 0xAA

#: A classify frame of 64k single-word headers is ~512 KiB; 8 MiB
#: leaves generous headroom without letting a bad length prefix commit
#: the reader to unbounded buffering.
MAX_FRAME_BYTES = 8 * 1024 * 1024

PING = 0x01
CLASSIFY = 0x02
SHARD_CLASSIFY = 0x03
METRICS = 0x04
DIFF = 0x05
WHATIF = 0x06
PONG = 0x81
RESULT = 0x82
SHARD_RESULT = 0x83
METRICS_RESULT = 0x84
DIFF_RESULT = 0x85
WHATIF_RESULT = 0x86
ERROR = 0x7F

_HEADER = struct.Struct("<BIB")
_HEADER_REST = struct.Struct("<IB")


class FrameError(Exception):
    """Malformed frame on the wire (bad magic, length, or payload)."""


class RemoteError(Exception):
    """The peer answered an ``ERROR`` frame."""


def pack_frame(ftype: int, payload: bytes = b"") -> bytes:
    if len(payload) > MAX_FRAME_BYTES:
        raise FrameError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )
    return _HEADER.pack(FRAME_MAGIC, len(payload), ftype) + payload


async def read_frame(reader, *, max_bytes: int = MAX_FRAME_BYTES):
    """Read one ``(type, payload)`` frame from an asyncio stream.

    Raises :class:`FrameError` on a bad magic byte or oversized length
    (the stream is desynchronized -- callers should close), and
    ``asyncio.IncompleteReadError`` on EOF.
    """
    header = await reader.readexactly(_HEADER.size)
    magic, length, ftype = _HEADER.unpack(header)
    if magic != FRAME_MAGIC:
        raise FrameError(f"bad frame magic {magic:#04x}")
    if length > max_bytes:
        raise FrameError(
            f"frame of {length} bytes exceeds the {max_bytes}-byte limit"
        )
    payload = await reader.readexactly(length) if length else b""
    return ftype, payload


async def read_rest_of_frame(reader, *, max_bytes: int = MAX_FRAME_BYTES):
    """Like :func:`read_frame` when the magic byte was already consumed.

    Servers speaking both protocols on one port peek the first byte of
    a connection to pick framed vs newline-JSON; this reads the rest of
    that first frame.
    """
    rest = await reader.readexactly(_HEADER_REST.size)
    length, ftype = _HEADER_REST.unpack(rest)
    if length > max_bytes:
        raise FrameError(
            f"frame of {length} bytes exceeds the {max_bytes}-byte limit"
        )
    payload = await reader.readexactly(length) if length else b""
    return ftype, payload


# ----------------------------------------------------------------------
# Integer-vector codecs (numpy when available, array module otherwise)
# ----------------------------------------------------------------------


def _ints_to_bytes(values, typecode: str, np_dtype) -> bytes:
    if _np is not None:
        return _np.ascontiguousarray(
            _np.asarray(values, dtype=np_dtype)
        ).tobytes()
    arr = values if isinstance(values, array) else array(typecode, values)
    if sys.byteorder == "big":  # pragma: no cover - LE everywhere we run
        arr = array(typecode, arr)
        arr.byteswap()
    return arr.tobytes()


def _bytes_to_ints(buf, typecode: str, np_dtype):
    if _np is not None:
        return _np.frombuffer(buf, dtype=np_dtype)
    arr = array(typecode)
    arr.frombytes(bytes(buf))
    if sys.byteorder == "big":  # pragma: no cover
        arr.byteswap()
    return arr


def _encode_headers(headers, width: int) -> tuple[int, bytes]:
    """``(count, words-bytes)`` for a header batch.

    Accepts the kernel's packed numpy forms zero-copy (``(n,)`` uint64
    for one-word layouts, ``(n, width)`` for wider) or plain int
    sequences (packed via ``to_bytes`` for wide layouts).
    """
    if _np is not None and isinstance(headers, _np.ndarray):
        arr = _np.ascontiguousarray(headers, dtype=_np.uint64)
        count = arr.shape[0]
        if arr.size != count * width:
            raise FrameError(
                f"header array shape {headers.shape} does not match "
                f"width {width}"
            )
        return count, arr.tobytes()
    count = len(headers)
    if width == 1:
        return count, _ints_to_bytes(headers, "Q", _np and _np.uint64)
    data = b"".join(int(h).to_bytes(8 * width, "little") for h in headers)
    return count, data


def _decode_headers(buf, count: int, width: int):
    """Words back into the kernel's batch form.

    Under numpy: a ``(count,)`` or ``(count, width)`` uint64 view of the
    payload (zero-copy) -- exactly what ``classify_batch_array`` wants.
    Without numpy: a list of plain int headers.
    """
    if len(buf) != 8 * count * width:
        raise FrameError(
            f"classify payload of {len(buf)} bytes does not hold "
            f"{count} x {width} words"
        )
    if _np is not None:
        words = _np.frombuffer(buf, dtype=_np.uint64)
        return words if width == 1 else words.reshape(count, width)
    words = _bytes_to_ints(buf, "Q", None)
    if width == 1:
        return list(words)
    return [
        sum(words[i * width + w] << (64 * w) for w in range(width))
        for i in range(count)
    ]


_CLASSIFY_HEAD = struct.Struct("<IB")
_SHARD_HEAD = struct.Struct("<IIB")
_COUNT = struct.Struct("<I")
_GEN_COUNT = struct.Struct("<II")


def encode_classify(headers, *, width: int = 1) -> bytes:
    count, data = _encode_headers(headers, width)
    return _CLASSIFY_HEAD.pack(count, width) + data


def decode_classify(payload: bytes):
    """``(headers, width)`` from a ``CLASSIFY`` payload."""
    if len(payload) < _CLASSIFY_HEAD.size:
        raise FrameError("truncated CLASSIFY payload")
    count, width = _CLASSIFY_HEAD.unpack_from(payload)
    if not width:
        raise FrameError("CLASSIFY width must be >= 1")
    return _decode_headers(payload[_CLASSIFY_HEAD.size :], count, width), width


def encode_shard_classify(
    generation: int, frontiers, headers, *, width: int = 1
) -> bytes:
    count, data = _encode_headers(headers, width)
    if len(frontiers) != count:
        raise FrameError(
            f"{len(frontiers)} frontiers for {count} headers"
        )
    front = _ints_to_bytes(frontiers, "I", _np and _np.uint32)
    return _SHARD_HEAD.pack(generation, count, width) + front + data


def decode_shard_classify(payload: bytes):
    """``(generation, frontiers, headers, width)`` from a payload."""
    if len(payload) < _SHARD_HEAD.size:
        raise FrameError("truncated SHARD_CLASSIFY payload")
    generation, count, width = _SHARD_HEAD.unpack_from(payload)
    if not width:
        raise FrameError("SHARD_CLASSIFY width must be >= 1")
    base = _SHARD_HEAD.size
    split = base + 4 * count
    frontiers = _bytes_to_ints(payload[base:split], "I", _np and _np.uint32)
    headers = _decode_headers(payload[split:], count, width)
    return generation, frontiers, headers, width


def encode_result(atoms) -> bytes:
    data = _ints_to_bytes(atoms, "q", _np and _np.int64)
    return _COUNT.pack(len(data) // 8) + data


def decode_result(payload: bytes):
    """Atom ids from a ``RESULT`` payload (numpy int64 view or array)."""
    if len(payload) < _COUNT.size:
        raise FrameError("truncated RESULT payload")
    (count,) = _COUNT.unpack_from(payload)
    data = payload[_COUNT.size :]
    if len(data) != 8 * count:
        raise FrameError(
            f"RESULT payload of {len(data)} bytes does not hold "
            f"{count} atoms"
        )
    return _bytes_to_ints(data, "q", _np and _np.int64)


def encode_shard_result(generation: int, atoms) -> bytes:
    data = _ints_to_bytes(atoms, "q", _np and _np.int64)
    return _GEN_COUNT.pack(generation, len(data) // 8) + data


def decode_shard_result(payload: bytes):
    """``(generation, atoms)`` from a ``SHARD_RESULT`` payload."""
    if len(payload) < _GEN_COUNT.size:
        raise FrameError("truncated SHARD_RESULT payload")
    generation, count = _GEN_COUNT.unpack_from(payload)
    data = payload[_GEN_COUNT.size :]
    if len(data) != 8 * count:
        raise FrameError(
            f"SHARD_RESULT payload of {len(data)} bytes does not hold "
            f"{count} atoms"
        )
    return generation, _bytes_to_ints(data, "q", _np and _np.int64)
